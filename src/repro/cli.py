"""Terminal chat front-end (the offline stand-in for the Gradio UI).

Run ``python -m repro.cli`` for an interactive session, or pipe a
script::

    printf '/demo social\\nWrite a brief report for G\\n/quit\\n' \\
        | python -m repro.cli

Commands (everything else is a question for ChatGraph):

=============================  =========================================
``/help``                      show this command list
``/upload <path>``             load a graph (.json / .graphml / .edges)
``/demo social|molecule|kg``   load a built-in demo graph
``/suggest``                   suggested questions for the upload
``/show [adj|degrees|comms]``  render the uploaded graph as text
``/manual`` / ``/auto``        require / skip chain confirmation
``/chain``                     show the pending chain
``/edit remove <i>``           edit the pending chain
``/edit append <api>``
``/edit replace <i> <api>``
``/confirm`` / ``/reject``     execute or discard the pending chain
``/apis``                      list the API catalog
``/config``                    show the active configuration
``/quit``                      exit
=============================  =========================================
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO

from . import ChatGraph, ChatSession
from .errors import ChatGraphError
from .graphs import from_dict, read_edgelist, read_graphml
from .graphs.generators import (
    knowledge_graph,
    social_network,
)
from .chem import parse_smiles


def load_graph(path: str):
    """Load a graph by file extension (.json, .graphml, .edges, .smi)."""
    file_path = Path(path)
    if not file_path.exists():
        raise ChatGraphError(f"no such file: {path}")
    suffix = file_path.suffix.lower()
    if suffix == ".json":
        return from_dict(json.loads(file_path.read_text()))
    if suffix == ".graphml":
        return read_graphml(file_path)
    if suffix in (".smi", ".smiles"):
        smiles = file_path.read_text().strip().splitlines()[0]
        return parse_smiles(smiles, name=file_path.stem).to_graph()
    return read_edgelist(file_path)


def demo_graph(kind: str):
    """Built-in demo graphs for the /demo command."""
    if kind in ("social", "sn"):
        return social_network(50, 3, seed=7)
    if kind in ("molecule", "mol"):
        return parse_smiles("CC(=O)Oc1ccccc1C(=O)O",
                            name="aspirin").to_graph()
    if kind in ("kg", "knowledge"):
        return knowledge_graph(40, 150, seed=7)
    raise ChatGraphError(f"unknown demo graph {kind!r} "
                         "(social | molecule | kg)")


class ChatCli:
    """Line-oriented REPL over a :class:`~repro.core.session.ChatSession`."""

    def __init__(self, chatgraph: ChatGraph, out: IO[str] = sys.stdout,
                 auto_confirm: bool = True) -> None:
        self.session = ChatSession(chatgraph)
        self.out = out
        self.auto_confirm = auto_confirm
        self.running = True

    def say(self, text: str = "") -> None:
        print(text, file=self.out)

    # ------------------------------------------------------------------
    def handle(self, line: str) -> None:
        """Process one input line (command or question)."""
        line = line.strip()
        if not line:
            return
        if line.startswith("/"):
            self._command(line)
        else:
            self._question(line)

    def _command(self, line: str) -> None:
        parts = line.split()
        command, args = parts[0].lower(), parts[1:]
        try:
            if command == "/help":
                self.say(__doc__ or "")
            elif command == "/quit":
                self.running = False
                self.say("bye")
            elif command == "/upload":
                if not args:
                    raise ChatGraphError("/upload needs a path")
                graph = load_graph(args[0])
                self.session.upload_graph(graph)
                self.say(f"uploaded {graph!r}")
            elif command == "/demo":
                graph = demo_graph(args[0] if args else "social")
                self.session.upload_graph(graph)
                self.say(f"loaded demo graph {graph!r}")
            elif command == "/suggest":
                for question in self.session.suggestions():
                    self.say(f"  - {question}")
            elif command == "/show":
                self._show(args[0] if args else "summary")
            elif command == "/manual":
                self.auto_confirm = False
                self.say("chains now require /confirm")
            elif command == "/auto":
                self.auto_confirm = True
                self.say("chains auto-execute")
            elif command == "/chain":
                self.say(self.session.pending_chain.render())
            elif command == "/edit":
                self._edit(args)
            elif command == "/confirm":
                response = self.session.confirm()
                self.say(response.answer)
            elif command == "/reject":
                self.session.reject()
                self.say("chain discarded")
            elif command == "/apis":
                for spec in self.session.chatgraph.registry:
                    self.say(f"  {spec.name:<24} [{spec.category.value}] "
                             f"{spec.description}")
            elif command == "/config":
                config = self.session.chatgraph.config.to_dict()
                self.say(json.dumps(config, indent=1))
            else:
                self.say(f"unknown command {command}; try /help")
        except ChatGraphError as exc:
            self.say(f"error: {exc}")

    def _show(self, what: str) -> None:
        from . import viz
        graph = self.session.graph
        if graph is None:
            raise ChatGraphError("upload a graph first (/upload or /demo)")
        if what in ("adj", "adjacency"):
            self.say(viz.render_adjacency(graph))
        elif what in ("degrees", "hist"):
            self.say(viz.render_degree_histogram(graph))
        elif what in ("comms", "communities"):
            self.say(viz.render_communities(graph))
        else:
            self.say(viz.render_graph_summary_card(graph))

    def _edit(self, args: list[str]) -> None:
        if not args:
            raise ChatGraphError(
                "/edit remove <i> | append <api> | replace <i> <api>")
        action = args[0]
        if action == "remove" and len(args) == 2:
            self.session.edit_chain(remove=int(args[1]))
        elif action == "append" and len(args) == 2:
            self.session.edit_chain(append=args[1])
        elif action == "replace" and len(args) == 3:
            self.session.edit_chain(replace=(int(args[1]), args[2]))
        else:
            raise ChatGraphError(f"bad /edit usage: {' '.join(args)}")
        self.say(f"chain: {self.session.pending_chain.render()}")

    def _question(self, text: str) -> None:
        try:
            proposal = self.session.propose(text)
        except ChatGraphError as exc:
            self.say(f"error: {exc}")
            return
        self.say(f"[chain] {proposal.chain.render()}")
        if self.auto_confirm:
            response = self.session.confirm()
            self.say(response.answer)
        else:
            self.say("(confirm with /confirm, edit with /edit, "
                     "discard with /reject)")

    # ------------------------------------------------------------------
    def repl(self, stream: IO[str] = sys.stdin,
             interactive: bool | None = None) -> None:
        """Read lines until EOF or /quit."""
        if interactive is None:
            interactive = stream.isatty()
        while self.running:
            if interactive:
                self.out.write("chatgraph> ")
                self.out.flush()
            line = stream.readline()
            if not line:
                break
            self.handle(line)


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"{value!r} must be positive")
    return parsed


def _worker_counts(value: str) -> tuple[int, ...]:
    counts = tuple(_positive_int(part)
                   for part in value.split(",") if part.strip())
    if not counts:
        raise argparse.ArgumentTypeError(
            f"{value!r} has no worker counts")
    return counts


def serve_bench_main(argv: list[str]) -> int:
    """``python -m repro.cli serve-bench``: the serving benchmark."""
    parser = argparse.ArgumentParser(
        prog="repro.cli serve-bench",
        description="Throughput/latency benchmark of the repro.serve "
                    "runtime (worker scaling + cache ablation)")
    parser.add_argument("--requests", type=_positive_int, default=48,
                        help="workload size per configuration")
    parser.add_argument("--workers", type=_worker_counts,
                        default=(1, 4, 8),
                        help="comma-separated worker counts (default "
                             "1,4,8)")
    parser.add_argument("--corpus", type=int, default=300,
                        help="finetuning corpus size (default 300)")
    parser.add_argument("--backend-latency-ms", type=float, default=10.0,
                        help="emulated LLM-backend round trip per "
                             "request (default 10ms)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--stats", action="store_true",
                        help="also dump the final server.stats() "
                             "snapshot as JSON")
    args = parser.parse_args(argv)

    from .serve.bench import run_serve_benchmark
    worker_counts = args.workers
    n_requests = 12 if args.quick else args.requests
    print("loading ChatGraph (finetuning the simulated backbone)...",
          file=sys.stderr)
    chatgraph = ChatGraph.pretrained(corpus_size=args.corpus,
                                     seed=args.seed)
    report = run_serve_benchmark(
        chatgraph, n_requests=n_requests, worker_counts=worker_counts,
        backend_latency_seconds=args.backend_latency_ms / 1000.0)
    for line in report["lines"]:
        print(line)
    if args.stats:
        print(json.dumps(report["snapshot"], indent=1, default=str))
    return 0


def bench_perf_main(argv: list[str]) -> int:
    """``python -m repro.cli bench-perf``: the scalar-vs-batched gate.

    Measures the batched decode kernels, the vectorized ANN search,
    the fully batched pipeline and the micro-batched server against
    their scalar references on the seeded E13-style workload, verifies
    the batched paths produce identical chains, writes the report JSON
    (``BENCH_PR7.json`` by default), and exits non-zero when any
    speedup gate (composite kernels, end-to-end pipeline, served-path
    floor) or the chain-equality check fails.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli bench-perf",
        description="Perf gate: scalar vs batched inference hot path")
    parser.add_argument("--requests", type=_positive_int, default=64,
                        help="workload size (default 64)")
    parser.add_argument("--batch-size", type=_positive_int, default=16,
                        help="micro-batch size (default 16)")
    parser.add_argument("--repeats", type=_positive_int, default=5,
                        help="timing passes per path; the fastest "
                             "pass is reported (default 5)")
    parser.add_argument("--corpus", type=int, default=300,
                        help="finetuning corpus size (default 300)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required decode+retrieval composite "
                             "speedup (default 3.0)")
    parser.add_argument("--pipeline-min-speedup", type=float,
                        default=2.0,
                        help="required end-to-end pipeline speedup at "
                             "the batch size (default 2.0)")
    parser.add_argument("--serve-min-speedup", type=float, default=1.0,
                        help="required served-path speedup with micro-"
                             "batching on (default 1.0: must not "
                             "regress; ignored with --no-serve)")
    parser.add_argument("--out", default="BENCH_PR7.json",
                        help="report path (default BENCH_PR7.json)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small workload + relaxed runtime for CI "
                             "smoke runs (gate still applies)")
    parser.add_argument("--no-serve", action="store_true",
                        help="skip the end-to-end server comparison")
    args = parser.parse_args(argv)

    from .serve.perf import run_perf_benchmark

    n_requests = 24 if args.quick else args.requests
    repeats = 2 if args.quick else args.repeats
    print("loading ChatGraph (finetuning the simulated backbone)...",
          file=sys.stderr)
    chatgraph = ChatGraph.pretrained(corpus_size=args.corpus,
                                     seed=args.seed)
    report = run_perf_benchmark(
        chatgraph, n_requests=n_requests, batch_size=args.batch_size,
        repeats=repeats, min_speedup=args.min_speedup,
        pipeline_min_speedup=args.pipeline_min_speedup,
        serve_min_speedup=args.serve_min_speedup,
        include_serve=not args.no_serve)

    from .benchlib import write_report
    write_report(args.out, report)
    print(f"report -> {args.out}", file=sys.stderr)

    decode, ann = report["decode"], report["ann"]
    comp, pipe = report["composite"], report["pipeline"]
    print(f"decode   : {decode['speedup']:5.2f}x  "
          f"({decode['scalar_chains_per_s']:8.1f} -> "
          f"{decode['batched_chains_per_s']:8.1f} chains/s)")
    print(f"ann      : {ann['speedup']:5.2f}x  "
          f"({ann['scalar_qps']:8.1f} -> {ann['batched_qps']:8.1f} qps)")
    print(f"composite: {comp['speedup']:5.2f}x  "
          f"({comp['scalar']['throughput_rps']:7.1f} -> "
          f"{comp['batched']['throughput_rps']:7.1f} req/s, "
          f"p50 {comp['scalar']['p50_ms']:.2f} -> "
          f"{comp['batched']['p50_ms']:.2f} ms)  [gated]")
    print(f"pipeline : {pipe['speedup']:5.2f}x  "
          f"({pipe['scalar']['throughput_rps']:7.1f} -> "
          f"{pipe['batched']['throughput_rps']:7.1f} req/s, "
          f"p50 {pipe['scalar']['p50_ms']:.1f} -> "
          f"{pipe['batched']['p50_ms']:.1f} ms)  [gated]")
    if "serve" in report:
        serve = report["serve"]
        print(f"serve    : {serve['speedup']:5.2f}x  "
              f"({serve['scalar']['throughput_rps']:7.1f} -> "
              f"{serve['microbatched']['throughput_rps']:7.1f} req/s)"
              f"  [gated]")
    print("stage costs (scalar-cost ranked, wall ms over the "
          "workload):")
    for row in report["stage_costs"]["stages"]:
        print(f"  {row['stage']:<13} "
              f"{row['scalar_wall_seconds'] * 1000:8.2f} -> "
              f"{row['batched_wall_seconds'] * 1000:8.2f} ms "
              f"({row['speedup']:5.2f}x)")
    gate = report["gate"]
    print(f"chains identical: {gate['chains_equal']}")
    print(f"gate (composite >= {gate['min_speedup']}x, pipeline >= "
          f"{gate['pipeline_min_speedup']}x, serve >= "
          f"{gate['serve_min_speedup']}x): "
          + ("PASSED" if gate["passed"] else "FAILED"))
    return 0 if gate["passed"] else 1


def chaos_main(argv: list[str]) -> int:
    """``python -m repro.cli chaos``: seeded chaos run of the serve
    engine.

    Wraps a deterministic sample of registry APIs with injected
    failures (each fails its first N calls, then recovers), serves a
    workload through :class:`~repro.serve.engine.ChatGraphServer` with
    step timeouts + retries + circuit breakers enabled, and verifies
    that every request resolves and the retry layer absorbed the
    injected faults.  Exit code 0 = the invariants held.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli chaos",
        description="Seeded fault-injection (chaos) run of the "
                    "repro.serve runtime")
    parser.add_argument("--requests", type=_positive_int, default=24,
                        help="number of ask requests (default 24)")
    parser.add_argument("--workers", type=_positive_int, default=2)
    parser.add_argument("--corpus", type=int, default=200,
                        help="finetuning corpus size (default 200)")
    parser.add_argument("--faulty-apis", type=_positive_int, default=6,
                        help="APIs to fault (seeded sample, default 6)")
    parser.add_argument("--fail-times", type=_positive_int, default=2,
                        help="injected failures per faulty API "
                             "(default 2)")
    parser.add_argument("--retries", type=_positive_int, default=3,
                        help="step retry budget (default 3)")
    parser.add_argument("--timeout-ms", type=float, default=500.0,
                        help="per-step timeout (default 500ms)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    args = parser.parse_args(argv)

    from .finetune.dataset import CorpusSpec
    from .serve import ChatGraphServer, ServeConfig, ServeRequest
    from .testing.faults import chaos_registry
    from .apis.registry import default_registry
    from .graphs.generators import knowledge_graph, social_network

    n_requests = 8 if args.quick else args.requests
    registry, injector, faults = chaos_registry(
        default_registry(), seed=args.seed, n_faulty=args.faulty_apis,
        fail_times=args.fail_times)
    print(f"faulted APIs (fail first {args.fail_times} calls): "
          f"{', '.join(sorted(faults))}", file=sys.stderr)

    print("loading ChatGraph (finetuning the simulated backbone)...",
          file=sys.stderr)
    chatgraph = ChatGraph(registry=registry)
    chatgraph.finetune(CorpusSpec(n_examples=args.corpus, seed=args.seed))

    config = ServeConfig(
        workers=args.workers,
        step_timeout_seconds=args.timeout_ms / 1000.0,
        step_max_retries=args.retries,
        retry_backoff_seconds=0.005,
        seed=args.seed)
    prompts = ("write a brief report for G", "count the nodes",
               "find communities", "compute the graph density")
    graphs = (social_network(30, 3, seed=args.seed),
              knowledge_graph(20, 60, seed=args.seed))
    failures = 0
    degraded = 0
    with ChatGraphServer(chatgraph, config) as server:
        pending = [server.submit(ServeRequest(
            op="ask", text=prompts[i % len(prompts)],
            graph=graphs[i % len(graphs)], client_id=f"chaos-{i % 4}"))
            for i in range(n_requests)]
        for item in pending:
            response = item.result(timeout=120.0)
            if not response.ok:
                failures += 1
            record = getattr(response.value, "record", None)
            if record is not None and record.is_degraded:
                degraded += 1
        snapshot = server.stats()

    counters = snapshot["counters"]
    injected = sum(injector.stats()["injected_failures"].values())
    retried = counters.get("step_retried", 0)
    print(f"requests: {n_requests}  unresolved/errored: {failures}  "
          f"degraded: {degraded}")
    print(f"injected failures: {injected}  step_retried: {retried}  "
          f"step_timed_out: {counters.get('step_timed_out', 0)}  "
          f"breaker_opened: {counters.get('breaker_opened', 0)}")
    print(f"breakers: {json.dumps(snapshot['breakers'], indent=1)}")
    ok = failures == 0 and injected > 0 and retried >= injected - \
        counters.get("step_failed", 0)
    print("chaos run: " + ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def bench_slo_main(argv: list[str]) -> int:
    """``python -m repro.cli bench-slo``: soak scenarios gated on SLOs.

    Runs the named :mod:`repro.loadgen` scenarios (default: all of
    steady / diurnal / spike) under the fake-clock discipline, writes
    the combined report to ``--out`` (JSON, one block per scenario with
    its SLO verdict and schedule fingerprint), and exits non-zero when
    any gate fails.  Under a fixed ``--seed`` the generated request
    schedule is byte-identical across runs (``--dump-schedule DIR``
    writes the canonical JSONL to prove it).
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli bench-slo",
        description="Production traffic simulation with SLO gates "
                    "over the repro.serve runtime")
    parser.add_argument("--scenario", default="all",
                        help="steady | diurnal | spike | smoke | all "
                             "(default all)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized runs (shorter durations)")
    parser.add_argument("--corpus", type=int, default=200,
                        help="finetuning corpus size (default 200)")
    parser.add_argument("--real-clock", action="store_true",
                        help="replay against the real clock instead of "
                             "the virtual one (slow: sleeps think "
                             "times)")
    parser.add_argument("--out", default="BENCH_PR8.json",
                        help="combined report path "
                             "(default BENCH_PR8.json)")
    parser.add_argument("--dump-schedule", metavar="DIR",
                        help="also write each scenario's canonical "
                             "schedule JSONL into DIR")
    args = parser.parse_args(argv)

    from .loadgen import SCENARIOS, get_scenario, run_scenario
    from .loadgen.personas import default_pool
    from .loadgen.schedule import build_schedule

    names = (list(SCENARIOS) if args.scenario == "all"
             else [args.scenario])
    scenarios = [get_scenario(name, quick=args.quick) for name in names]

    report: dict = {"bench": "bench-slo", "seed": args.seed,
                    "quick": args.quick,
                    "fake_clock": not args.real_clock,
                    "scenarios": {}}
    passed = True
    for scenario in scenarios:
        if args.dump_schedule:
            pool = default_pool()
            catalog_names = tuple(f"demo-{key}"
                                  for key in scenario.catalog_graphs)
            schedule = build_schedule(
                scenario.arrival, scenario.duration,
                personas=scenario.personas, seed=args.seed, pool=pool,
                catalog_names=catalog_names)
            out_dir = Path(args.dump_schedule)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"schedule-{scenario.name}.jsonl"
            path.write_text(schedule.to_jsonl(), encoding="utf-8")
            print(f"schedule ({len(schedule)} requests, "
                  f"sha256 {schedule.sha256()[:16]}...) -> {path}",
                  file=sys.stderr)
        print(f"running scenario {scenario.name!r} "
              f"({'quick, ' if args.quick else ''}"
              f"{'real' if args.real_clock else 'fake'} clock, "
              f"seed {args.seed})...", file=sys.stderr)
        result = run_scenario(scenario, seed=args.seed,
                              fake_clock=not args.real_clock,
                              corpus_size=args.corpus)
        report["scenarios"][scenario.name] = result
        verdict = result["slo"]
        passed = passed and verdict["passed"]
        overall = result["overall"]
        print(f"{scenario.name}: {overall['submitted']} submitted, "
              f"{overall['ok']} ok, {overall['rejected']} rejected, "
              f"{overall['errors']} errors, "
              f"p95 {overall['latency']['p95'] * 1000:.1f}ms  "
              f"[schedule {result['schedule_sha256'][:16]}...]")
        for gate in verdict["gates"]:
            status = "PASS" if gate["passed"] else "FAIL"
            print(f"  {status}  {gate['gate']}")
        if not result["reconciliation"]["exact"]:
            passed = False
            print(f"  FAIL  counter reconciliation: "
                  f"{result['reconciliation']}")
    report["passed"] = passed
    from .benchlib import write_report
    write_report(args.out, report, sort_keys=True)
    print(f"report -> {args.out}", file=sys.stderr)
    print("bench-slo: " + ("OK" if passed else "FAILED"))
    return 0 if passed else 1


def bench_shard_main(argv: list[str]) -> int:
    """``python -m repro.cli bench-shard``: sharded serving gates.

    Runs the four gate families of :mod:`repro.shard.bench` — the
    scaling curve (throughput vs shard count, with the 8-shard gate
    armed automatically on a >= 8-core host), the parity gate
    (byte-identical responses between the sharded and single-process
    servers), the kill-a-shard spike soak, and the live add/remove
    shard migration soak — writes the combined report to ``--out``
    (default ``BENCH_PR9.json``), and exits non-zero when any gate
    fails.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli bench-shard",
        description="Sharded multi-process serving benchmark: scaling "
                    "curve, byte-parity gate, kill-a-shard spike soak")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (2-shard curve, shorter "
                             "soak)")
    parser.add_argument("--corpus", type=int, default=200,
                        help="finetuning corpus size (default 200)")
    parser.add_argument("--skip-soak", action="store_true",
                        help="skip the kill-a-shard spike soak")
    parser.add_argument("--out", default="BENCH_PR9.json",
                        help="report path (default BENCH_PR9.json)")
    args = parser.parse_args(argv)

    from .shard.bench import run_shard_benchmark

    report = run_shard_benchmark(seed=args.seed, quick=args.quick,
                                 corpus_size=args.corpus,
                                 skip_soak=args.skip_soak)
    from .benchlib import write_report
    write_report(args.out, report, sort_keys=True)
    print(f"report -> {args.out}", file=sys.stderr)
    print("bench-shard: " + ("OK" if report["passed"] else "FAILED"))
    return 0 if report["passed"] else 1


def trace_main(argv: list[str]) -> int:
    """``python -m repro.cli trace``: record or replay pipeline traces.

    Two modes:

    * ``--input span_log.jsonl`` replays a recorded JSON-lines span
      log as a flame-style summary (``--check`` verifies structural
      integrity);
    * ``--demo`` serves the canonical seeded workload through a
      tracing :class:`~repro.serve.engine.ChatGraphServer`, renders
      the trace, optionally writes the span log (``--out``, with
      ``--canonical`` for the byte-stable form) and the metrics
      snapshot (``--metrics-out``), and with ``--check`` asserts the
      span log parses and covers every executed pipeline stage and
      API step.  Exit code 0 = all checks held.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli trace",
        description="Record a seeded end-to-end trace, or replay a "
                    "span log as a flame-style summary")
    parser.add_argument("--input", action="append",
                        help="replay this JSON-lines span log; repeat to "
                             "merge per-shard logs into one view")
    parser.add_argument("--demo", action="store_true",
                        help="run the canonical seeded workload with "
                             "tracing enabled")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--corpus", type=int, default=200,
                        help="finetuning corpus size (default 200)")
    parser.add_argument("--workers", type=_positive_int, default=1)
    parser.add_argument("--canonical", action="store_true",
                        help="export the canonical (timing-free, "
                             "byte-stable) span log form")
    parser.add_argument("--out", help="write the span log here")
    parser.add_argument("--metrics-out",
                        help="write the metrics snapshot (markdown) here")
    parser.add_argument("--check", action="store_true",
                        help="verify span-log integrity and coverage")
    args = parser.parse_args(argv)

    from collections import Counter

    from .obs import (
        check_trace,
        merge_traces,
        read_trace,
        render_flame,
        render_metrics_markdown,
        write_trace,
    )

    if args.input:
        if len(args.input) == 1:
            spans = read_trace(args.input[0])
        else:
            spans = merge_traces(*(read_trace(path)
                                   for path in args.input))
            print(f"merged {len(args.input)} span logs "
                  f"({len(spans)} spans)", file=sys.stderr)
        print(render_flame(spans))
        if args.out:
            write_trace(args.out, spans, canonical=args.canonical)
            print(f"span log -> {args.out}", file=sys.stderr)
        if args.check:
            problems = check_trace(spans)
            for problem in problems:
                print(f"problem: {problem}", file=sys.stderr)
            print("trace check: " + ("OK" if not problems else "FAILED"))
            return 0 if not problems else 1
        return 0
    if not args.demo:
        parser.error("pass --input PATH or --demo")

    from .config import ObsConfig, ServeConfig
    from .serve import ChatGraphServer
    from .testing.workloads import canonical_workload

    print("loading ChatGraph (finetuning the simulated backbone)...",
          file=sys.stderr)
    chatgraph = ChatGraph.pretrained(corpus_size=args.corpus,
                                     seed=args.seed)
    config = ServeConfig(workers=args.workers, seed=args.seed,
                         obs=ObsConfig(enable_tracing=True))
    responses = []
    with ChatGraphServer(chatgraph, config) as server:
        for slug, text, graph in canonical_workload():
            responses.append((slug, server.ask(text, graph=graph)))
        spans = server.tracer.finished_spans()
        snapshot = server.metrics_snapshot()

    print(render_flame(spans))
    if args.out:
        write_trace(args.out, spans, canonical=args.canonical)
        print(f"span log -> {args.out}", file=sys.stderr)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            render_metrics_markdown(snapshot), encoding="utf-8")
        print(f"metrics snapshot -> {args.metrics_out}", file=sys.stderr)

    ok = all(response.ok for _, response in responses)
    if args.check:
        problems = check_trace([span.to_dict() for span in spans])
        executed = Counter(
            step.api_name
            for _, response in responses
            for step in response.value.record.steps)
        covered = Counter(span.attrs.get("api") for span in spans
                          if span.kind == "step")
        if executed != covered:
            problems.append(
                f"step span coverage mismatch: executed {dict(executed)} "
                f"vs spans {dict(covered)}")
        n_stages = sum(1 for span in spans if span.kind == "stage")
        if n_stages != 5 * len(responses):
            problems.append(f"expected {5 * len(responses)} stage spans, "
                            f"got {n_stages}")
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        ok = ok and not problems
        print("trace smoke: " + ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.cli``.

    ``python -m repro.cli`` starts the chat REPL;
    ``python -m repro.cli serve-bench [...]`` runs the serving
    benchmark (see :mod:`repro.serve.bench`);
    ``python -m repro.cli bench-perf [...]`` runs the scalar-vs-batched
    perf gate (see :mod:`repro.serve.perf`);
    ``python -m repro.cli chaos [...]`` runs the seeded
    fault-injection check of the serve engine;
    ``python -m repro.cli bench-slo [...]`` runs soak scenarios with
    SLO gates (see :mod:`repro.loadgen`);
    ``python -m repro.cli bench-shard [...]`` runs the sharded-serving
    scaling/parity/chaos gates (see :mod:`repro.shard.bench`);
    ``python -m repro.cli trace [...]`` records a seeded traced run or
    replays a span log (see :mod:`repro.obs`);
    ``python -m repro.cli store [...]`` manages a durable graph
    catalog (see :mod:`repro.store`).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve-bench":
        return serve_bench_main(argv[1:])
    if argv and argv[0] == "bench-perf":
        return bench_perf_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "bench-slo":
        return bench_slo_main(argv[1:])
    if argv and argv[0] == "bench-shard":
        return bench_shard_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "store":
        from .store.cli import store_main
        return store_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="ChatGraph terminal chat")
    parser.add_argument("--graph", help="graph file to upload at start")
    parser.add_argument("--corpus", type=int, default=400,
                        help="finetuning corpus size (default 400)")
    parser.add_argument("--manual", action="store_true",
                        help="require /confirm before executing chains")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    print("loading ChatGraph (finetuning the simulated backbone)...",
          file=sys.stderr)
    chatgraph = ChatGraph.pretrained(corpus_size=args.corpus,
                                     seed=args.seed)
    cli = ChatCli(chatgraph, auto_confirm=not args.manual)
    if args.graph:
        cli.handle(f"/upload {args.graph}")
    cli.say("ChatGraph ready. Type a question, or /help.")
    cli.repl()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
