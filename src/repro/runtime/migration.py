"""Pure planning for shard-aware session migration on ring change.

When the shard fleet changes shape — a shard added for capacity, or
removed for maintenance — every pinned session key has a *ring-
preferred* home under the new ring that may differ from where it lives
today.  :func:`plan_migration` computes the minimal move set: which
keys stay (their current shard is still the first live preference),
which must move (and exactly where to), and which are stranded (no
live shard can take them — only possible when the fleet is entirely
dead).

The planner is deliberately pure — rings and placements in, a
:class:`MigrationPlan` out, no I/O, no clocks — so the hypothesis
suite in ``tests/test_shard_migration.py`` can drive it with thousands
of generated fleets and assert the invariants directly:

* every input key appears exactly once across moves/unchanged/stranded;
* every move's target is the key's first *live* preference on the new
  ring, is live, and differs from its source;
* removing one shard only moves the keys it held (stability);
* adding one shard only creates moves *onto* the new shard.

The :class:`~repro.runtime.shard.ShardBackend` executes a plan with
adopt/evict RPCs while the router is paused; the plan itself never
changes once computed, which is what makes "zero lost requests, no
request served twice" checkable as a ledger reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["MigrationPlan", "SessionMove", "plan_migration"]


@dataclass(frozen=True)
class SessionMove:
    """One pinned key relocating between shards."""

    key: str
    from_shard: int
    to_shard: int


@dataclass(frozen=True)
class MigrationPlan:
    """The full outcome of planning one ring change.

    ``moves`` relocate, ``unchanged`` stay put, ``stranded`` keys have
    no live home on the new ring (their state can only be dropped).
    """

    moves: tuple[SessionMove, ...]
    unchanged: tuple[str, ...]
    stranded: tuple[str, ...]

    @property
    def keys(self) -> frozenset[str]:
        return frozenset(
            [move.key for move in self.moves]
            + list(self.unchanged) + list(self.stranded))


def _first_live(new_ring, key: str, live: frozenset[int]) -> int | None:
    for shard in new_ring.preference(key):
        if shard in live:
            return shard
    return None


def plan_migration(old_ring, new_ring,
                   placements: Mapping[str, int],
                   live: Iterable[int] | None = None) -> MigrationPlan:
    """Plan moves for pinned keys across a ring change.

    ``placements`` maps each pinned routing key (session keys
    ``s:{id}``, graph-affinity keys ``g:{name}``) to the shard index
    currently holding its state.  ``live`` restricts targets to shards
    actually alive on the new ring; it defaults to the new ring's full
    membership.  ``old_ring`` is accepted for symmetry and future
    delta-based planners but the plan depends only on where keys *are*
    (``placements``) and where they *belong* (``new_ring``).
    """
    del old_ring  # placement map already encodes the old world
    live_set = frozenset(live if live is not None else new_ring.shards)
    moves: list[SessionMove] = []
    unchanged: list[str] = []
    stranded: list[str] = []
    for key in sorted(placements):
        current = placements[key]
        target = _first_live(new_ring, key, live_set)
        if target is None:
            stranded.append(key)
        elif target == current:
            unchanged.append(key)
        else:
            moves.append(SessionMove(key=key, from_shard=current,
                                     to_shard=target))
    return MigrationPlan(moves=tuple(moves), unchanged=tuple(unchanged),
                         stranded=tuple(stranded))
