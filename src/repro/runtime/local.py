"""The in-process execution backend: a worker pool over one ChatGraph.

``LocalBackend`` is the request-plane half of what used to be the
monolithic serve engine: N worker threads consuming the lifecycle's
admission queue, an optional micro-batcher coalescing stateless
requests through the batched pipeline stages, the session store, the
pipeline caches, the durable-catalog binding, and the robustness
installation (policy + breakers) on the shared
:class:`~repro.core.chatgraph.ChatGraph`.

Admission and reply bookkeeping live in the
:class:`~repro.runtime.lifecycle.RequestLifecycle`; this module only
decides *how* a request is served — scalar or batched, which worker,
which session — and hands every outcome to ``lifecycle.reply``.
"""

from __future__ import annotations

import queue as stdlib_queue
import threading
import time
from typing import Any

from ..apis.executor import ExecutionPolicy, StepPolicy
from ..core.chatgraph import ChatGraph, ChatResponse
from ..core.pipeline import PipelineResult
from ..core.reports import render_answer
from ..errors import ChatGraphError, ServeError
from ..graphs.graph import Graph
from ..llm.prompts import Prompt
from ..serve.cache import PipelineCaches
from ..serve.engine import PendingRequest, ServeRequest, ServeResponse
from ..serve.sessions import SessionStore
from .lifecycle import ExecutionBackend, ReplyTiming, RequestLifecycle

__all__ = ["LocalBackend"]


class LocalBackend(ExecutionBackend):
    """Worker threads + micro-batching over one shared ChatGraph.

    The underlying pipeline is read-only at inference time, so one
    model serves every worker; per-request state (contexts, monitors,
    executors) is never shared.
    """

    def __init__(self, chatgraph: ChatGraph,
                 catalog: Any = None) -> None:
        self.chatgraph = chatgraph
        self.catalog = catalog
        self._workers: list[threading.Thread] = []
        # optional micro-batch finisher lane: workers hand the per-item
        # tail of a served batch here and return to collecting/decoding
        # the next one (ServeConfig.microbatch_overlap_execute)
        self._finish_queue: Any = None
        self._finish_thread: threading.Thread | None = None
        self._saved_tracer: Any = None
        self._saved_robustness: tuple[Any, Any] | None = None

    def bind(self, lifecycle: RequestLifecycle) -> None:
        super().bind(lifecycle)
        config = lifecycle.config
        self.caches: PipelineCaches | None = None
        if config.enable_caches:
            self.caches = PipelineCaches.with_sizes(
                embedding=config.embedding_cache_size,
                retrieval=config.retrieval_cache_size,
                sequence=config.sequence_cache_size)
        self.chatgraph.enable_caches(self.caches)
        #: Per-stage histogram names, derived from the pipeline's stage
        #: graph (the single stage definition) rather than a mirror.
        self.pipeline_stages = tuple(
            self.chatgraph.pipeline.graph.observed_stage_names)
        self.sessions = SessionStore(
            self.chatgraph, ttl_seconds=config.session_ttl_seconds,
            max_sessions=config.max_sessions, clock=lifecycle.clock)
        #: Optional request coalescer; enabled by
        #: ``ServeConfig.microbatch_size > 0``.  The batcher stays on
        #: real time even under an injected clock: its deadline is
        #: awaited by polling workers, and a virtual clock only
        #: advances between submissions, so a partial batch's
        #: coalescing window could never expire.
        self.batcher = None
        if config.microbatch_size > 0:
            self.batcher = lifecycle.make_batcher(
                config.microbatch_size,
                config.microbatch_deadline_seconds)
        # durable graph catalog: passed in, or built from the config's
        # store_root; sessions pin (name, epoch) refs into it and its
        # compactions evict sessions left on pruned epochs
        if self.catalog is None and config.store_root:
            from ..store.catalog import GraphCatalog
            self.catalog = GraphCatalog(
                config.store_root,
                snapshot_every=config.store_snapshot_every,
                metrics=lifecycle.metrics, tracer=lifecycle.tracer)
        if self.catalog is not None:
            self.chatgraph.use_catalog(self.catalog)
        # robustness defaults the executor applies to each chain step
        self.policy = ExecutionPolicy(
            default=StepPolicy(
                timeout_seconds=(config.step_timeout_seconds or None),
                max_retries=config.step_max_retries,
                backoff_base_seconds=config.retry_backoff_seconds,
                critical=False),
            seed=config.seed)
        if (self.batcher is not None
                and config.microbatch_overlap_execute):
            self._finish_queue = stdlib_queue.SimpleQueue()

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def boot(self) -> None:
        lifecycle = self.lifecycle
        # recovery events (step_retried / step_timed_out /
        # breaker_opened) flow through the executor's listener pipeline
        # into the server counters while this server runs
        if lifecycle.stats.on_execution_event not in \
                self.chatgraph.executor.listeners():
            self.chatgraph.executor.add_listener(
                lifecycle.stats.on_execution_event)
        if lifecycle.metrics.on_execution_event not in \
                self.chatgraph.executor.listeners():
            self.chatgraph.executor.add_listener(
                lifecycle.metrics.on_execution_event)
        # install this server's tracer for the duration of the run
        if lifecycle.tracer is not None:
            self._saved_tracer = self.chatgraph.tracer
            self.chatgraph.set_tracer(lifecycle.tracer)
        # install this server's robustness settings for the duration of
        # the run; stop() restores whatever the caller had configured
        self._saved_robustness = (self.chatgraph.robustness_policy,
                                  self.chatgraph.breakers)
        self.chatgraph.set_robustness(policy=self.policy,
                                      breakers=lifecycle.breakers)
        # compactions of the durable store evict sessions whose pinned
        # epoch was pruned, for as long as this server runs
        if self.catalog is not None:
            self.catalog.add_compact_listener(
                self.sessions.evict_compacted)
        if lifecycle.config.warm_caches:
            lifecycle.stats.incr("cache_warmed_entries",
                                 self.warm_caches())

    def launch(self) -> None:
        self._workers = []
        for index in range(self.lifecycle.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(f"worker-{index}",),
                name=f"chatgraph-serve-{index}", daemon=True)
            thread.start()
            self._workers.append(thread)
        if self._finish_queue is not None:
            self._finish_thread = threading.Thread(
                target=self._finish_lane_loop,
                name="chatgraph-serve-finish", daemon=True)
            self._finish_thread.start()

    def shutdown(self, drain: bool, deadline: float) -> None:
        for thread in self._workers:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._workers = []
        if self._finish_thread is not None:
            # workers are gone, so no new jobs can arrive: the sentinel
            # lands behind every queued tail and the lane drains fully
            self._finish_queue.put(None)
            self._finish_thread.join(
                max(0.0, deadline - time.monotonic()))
            self._finish_thread = None

    def finalize(self, deadline: float) -> None:
        lifecycle = self.lifecycle
        for listener in (lifecycle.stats.on_execution_event,
                         lifecycle.metrics.on_execution_event):
            try:
                self.chatgraph.executor.remove_listener(listener)
            except ValueError:
                pass
        if lifecycle.tracer is not None:
            self.chatgraph.set_tracer(self._saved_tracer)
            self._saved_tracer = None
        if self._saved_robustness is not None:
            self.chatgraph.set_robustness(*self._saved_robustness)
            self._saved_robustness = None
        if self.catalog is not None:
            self.catalog.remove_compact_listener(
                self.sessions.evict_compacted)

    def warm_caches(self) -> int:
        """Pre-populate pipeline caches from the catalog's named graphs.

        For every graph in the catalog, sequentializes it (sequence
        cache, keyed by graph fingerprint) and embeds its suggested
        questions through the retriever's query path (embedding cache),
        so the first real request against a named graph starts warm.
        Returns the number of cache entries added.  Warming only ever
        *inserts* deterministic content-keyed values, so served results
        are byte-identical with or without it.

        ``names`` restricts warming to specific graphs — the shard
        tier's migration path warms just the graphs whose ring
        ownership moved to this process.
        """
        return self.warm_named_caches(None)

    def warm_named_caches(self, names: Any = None) -> int:
        if self.caches is None or self.catalog is None:
            return 0
        from ..core.suggestions import suggested_questions

        pipeline = self.chatgraph.pipeline
        before = (len(self.caches.sequences)
                  + len(self.caches.embeddings))
        wanted = self.catalog.names() if names is None else names
        for name in wanted:
            try:
                view = self.catalog.view(name)
            except ChatGraphError:
                continue
            pipeline.sequentializer.sequentialize(view.graph)
            texts = suggested_questions(view.graph)
            if texts:
                pipeline.retriever._embed_queries(list(texts))
        return (len(self.caches.sequences)
                + len(self.caches.embeddings) - before)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def stats_sections(self) -> dict[str, Any]:
        return {
            "sessions": self.sessions.stats(),
            "caches": (self.caches.stats()
                       if self.caches is not None else {}),
            "pipeline_stages": list(self.pipeline_stages),
            "store": (self.catalog.stats()
                      if self.catalog is not None else {}),
            # uniform surface with the shard backend: a single-process
            # server simply has no shards
            "shards": {"count": 0, "alive": 0, "per_shard": {}},
        }

    def merged_metrics(self, base: dict[str, Any]) -> dict[str, Any]:
        lifecycle = self.lifecycle
        metrics = lifecycle.metrics
        metrics.set_gauge("queue_size", len(lifecycle.queue))
        metrics.set_gauge("sessions_live", base["sessions"]["active"])
        metrics.set_gauge("workers", lifecycle.config.workers)
        if self.caches is not None:
            for name, stats in base["caches"].items():
                metrics.set_gauge(f"cache_{name}_hit_rate",
                                  stats.get("hit_rate", 0.0))
        if lifecycle.breakers is not None:
            metrics.set_gauge("breakers_open",
                              len(lifecycle.breakers.open_names()))
        return metrics.snapshot()

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self, worker: str) -> None:
        queue = self.lifecycle.queue
        while True:
            item = queue.get(timeout=0.05)
            if item is None:
                if queue.closed and len(queue) == 0:
                    return
                continue
            if self.batcher is None:
                self._serve_item(item, worker)
                continue
            batch, passthrough = self.batcher.collect(queue, item)
            if len(batch) == 1:
                self._serve_item(batch[0], worker)
            elif batch:
                self._serve_batch(batch, worker)
            for single in passthrough:
                self._serve_item(single, worker)

    def _serve_item(self, item: PendingRequest, worker: str) -> None:
        """Serve one request on the scalar path and resolve its handle."""
        lifecycle = self.lifecycle
        queued = time.perf_counter() - item.enqueued_at
        start = time.perf_counter()
        try:
            response = self._handle(item, worker)
            response.ok = not response.error
        except Exception as exc:  # noqa: BLE001 - keep workers alive
            response = ServeResponse(
                request_id=item.request_id, op=item.request.op,
                ok=False, error=str(exc),
                error_type=type(exc).__name__, worker=worker)
        service = time.perf_counter() - start
        lifecycle.record_service_time(service)
        lifecycle.reply(item, response,
                        ReplyTiming(queued=queued, service=service))

    def _serve_batch(self, batch: list[PendingRequest],
                     worker: str) -> None:
        """Serve a coalesced batch through the shared pipeline stages."""
        metrics = self.lifecycle.metrics
        now = time.perf_counter()
        queued_per = [now - item.enqueued_at for item in batch]
        for item in batch:
            # the coalescing wait the batcher added on top of admission
            # queueing (stamped per item at flush time) — not the full
            # queue delay, which the ``queued`` histogram already holds
            metrics.observe("microbatch_queue_delay",
                            item.batch_wait_seconds)
        metrics.observe("microbatch_size", float(len(batch)))
        start = time.perf_counter()
        try:
            seeds, outcomes = self._propose_batch(batch)
        except Exception as exc:  # noqa: BLE001 - keep workers alive
            seeds = [item.request.content_seed(self.lifecycle.config.seed)
                     for item in batch]
            outcomes = [exc] * len(batch)
        if self._finish_queue is not None:
            # overlap: hand the per-item tail (chain execution for ask,
            # stats, resolution) to the finisher lane so this worker
            # immediately returns to collecting and decoding the next
            # micro-batch
            self._finish_queue.put(
                (batch, worker, seeds, outcomes, queued_per, start))
        else:
            self._finish_batch(batch, worker, seeds, outcomes,
                               queued_per, start)

    def _handle(self, item: PendingRequest, worker: str) -> ServeResponse:
        request = item.request
        tracer = self.lifecycle.tracer
        seed = request.content_seed(self.lifecycle.config.seed)
        response = ServeResponse(request_id=item.request_id, op=request.op,
                                 ok=True, worker=worker, seed=seed)
        if tracer is None:
            self._dispatch(request, seed, response)
            return response
        # the request's root span is keyed by the content seed (not the
        # arrival-order request id), so seeded workloads produce the
        # same span identity no matter which worker serves them; the
        # submitting thread's span (if any) becomes the parent
        with tracer.span(f"request:{request.op}", kind="request",
                         key=f"{seed:016x}",
                         parent=item.parent_span_id,
                         op=request.op,
                         client=request.client_id) as span:
            self._dispatch(request, seed, response)
            span.set(ok=not response.error)
        return response

    def _dispatch(self, request: ServeRequest, seed: int,
                  response: ServeResponse) -> None:
        if request.op == "propose":
            response.value = self._serve_propose(request, seed)
        elif request.op == "execute":
            response.value = self._serve_execute(request, seed)
        else:
            response.value = self._serve_ask(request, seed)

    def _backend_pause(self) -> None:
        """Emulate the remote-LLM round trip (see ServeConfig)."""
        if self.lifecycle.config.backend_latency_seconds > 0:
            time.sleep(self.lifecycle.config.backend_latency_seconds)

    def _record_pipeline(self, result: PipelineResult) -> None:
        # per-stage latency histogram names come from the stage graph
        # (via the result's timings) — never from a hand-written list
        stats = self.lifecycle.stats
        for stage, seconds in result.timings.items():
            stats.observe(stage, seconds)
        if result.used_fallback:
            stats.incr("fallback_chains")

    def _resolve_view(self, request: ServeRequest) -> Any:
        """The catalog view for ``request.graph_name`` (or None)."""
        if request.graph_name is None:
            return None
        if self.catalog is None:
            raise ServeError(
                f"request names graph {request.graph_name!r} but the "
                "server has no graph catalog (set ServeConfig."
                "store_root or pass catalog=)")
        return self.catalog.view(request.graph_name)

    def _resolve_graph(self, request: ServeRequest) -> Graph | None:
        view = self._resolve_view(request)
        return request.graph if view is None else view.graph

    def _serve_propose(self, request: ServeRequest,
                       seed: int) -> PipelineResult:
        self._backend_pause()
        attachments = dict(request.attachments)
        attachments.setdefault("request_seed", seed)
        result = self.chatgraph.propose(request.text,
                                        self._resolve_graph(request),
                                        **attachments)
        self._record_pipeline(result)
        return result

    def _serve_execute(self, request: ServeRequest,
                       seed: int) -> ChatResponse:
        assert request.pipeline_result is not None
        stats = self.lifecycle.stats
        start = time.perf_counter()
        record, monitor = self.chatgraph.execute(
            request.pipeline_result, chain=request.chain)
        stats.observe("execute", time.perf_counter() - start)
        if record.is_degraded:
            stats.incr("degraded_responses")
        return ChatResponse(
            prompt=request.pipeline_result.prompt,
            pipeline=request.pipeline_result,
            record=record,
            answer=render_answer(record),
            monitor=monitor,
            seconds=record.total_seconds,
        )

    def _serve_ask(self, request: ServeRequest, seed: int) -> ChatResponse:
        self._backend_pause()
        stats = self.lifecycle.stats
        if request.session_id is not None:
            view = self._resolve_view(request)
            entry = self.sessions.get_or_create(request.session_id)
            with entry.lock:
                if view is not None:
                    entry.session.upload_graph(view.graph,
                                               **request.attachments)
                    entry.graph_ref = (view.name, view.epoch)
                elif request.graph is not None:
                    entry.session.upload_graph(request.graph,
                                               **request.attachments)
                chat_response = entry.session.send(request.text)
        else:
            attachments = dict(request.attachments)
            attachments.setdefault("request_seed", seed)
            chat_response = self.chatgraph.ask(request.text,
                                               self._resolve_graph(request),
                                               **attachments)
        self._record_pipeline(chat_response.pipeline)
        if chat_response.record is not None:
            stats.observe("execute", chat_response.record.total_seconds)
            if chat_response.record.is_degraded:
                stats.incr("degraded_responses")
        return chat_response

    # ------------------------------------------------------------------
    # micro-batched serving
    # ------------------------------------------------------------------
    def _propose_batch(self, batch: list[PendingRequest]
                       ) -> tuple[list[int], list[Any]]:
        """Phase 1 of a micro-batch: one shared batched pipeline pass.

        The emulated backend round trip is paid once for the whole
        batch — that amortization is the point of micro-batching a
        remote-LLM-shaped workload.  Returns ``(seeds, outcomes)``
        where each outcome is the item's :class:`PipelineResult` or the
        exception that failed it: a bad graph name or a mid-batch stage
        failure degrades that one response, never its batchmates
        (matching what the scalar path would do to each request alone).
        """
        tracer = self.lifecycle.tracer
        seeds = [item.request.content_seed(self.lifecycle.config.seed)
                 for item in batch]
        outcomes: list[Any] = [None] * len(batch)
        prompts: list[Prompt] = []
        live: list[int] = []
        for index, (item, seed) in enumerate(zip(batch, seeds)):
            try:
                graph = self._resolve_graph(item.request)
            except Exception as exc:  # noqa: BLE001 - this item only
                outcomes[index] = exc
                continue
            attachments = dict(item.request.attachments)
            attachments.setdefault("request_seed", seed)
            prompts.append(Prompt(text=item.request.text, graph=graph,
                                  attachments=attachments))
            live.append(index)
        self._backend_pause()
        if prompts:
            if tracer is None:
                results = self.chatgraph.propose_batch(
                    prompts, return_exceptions=True)
            else:
                with tracer.span("microbatch", kind="batch",
                                 key=f"{seeds[live[0]]:016x}",
                                 batch_size=len(batch)):
                    results = self.chatgraph.propose_batch(
                        prompts, return_exceptions=True)
            for index, result in zip(live, results):
                outcomes[index] = result
        return seeds, outcomes

    def _finish_batch(self, batch: list[PendingRequest], worker: str,
                      seeds: list[int], outcomes: list[Any],
                      queued_per: list[float], start: float) -> None:
        """Phase 2 of a micro-batch: per-item tails and resolution.

        ``ask`` requests execute their chains one by one here
        (execution carries per-request state and does not batch);
        failed outcomes from phase 1 become per-item error responses.
        Runs on the worker, or on the finisher lane when execution
        overlap is enabled.
        """
        lifecycle = self.lifecycle
        tracer = lifecycle.tracer
        responses: list[ServeResponse] = []
        for item, seed, outcome in zip(batch, seeds, outcomes):
            response = ServeResponse(request_id=item.request_id,
                                     op=item.request.op, ok=True,
                                     worker=worker, seed=seed)
            responses.append(response)
            if isinstance(outcome, BaseException):
                response.error = str(outcome)
                response.error_type = type(outcome).__name__
            elif tracer is None:
                self._finish_batch_item(item, outcome, response)
            else:
                with tracer.span(f"request:{item.request.op}",
                                 kind="request", key=f"{seed:016x}",
                                 parent=item.parent_span_id,
                                 op=item.request.op,
                                 client=item.request.client_id,
                                 batch_size=len(batch)) as span:
                    self._finish_batch_item(item, outcome, response)
                    span.set(ok=not response.error)
        service = time.perf_counter() - start
        # the whole batch shares one service interval; the EMA feeding
        # backpressure retry hints gets the per-request amortized cost
        lifecycle.record_service_time(service / len(batch))
        for item, queued, response in zip(batch, queued_per, responses):
            response.ok = not response.error
            lifecycle.reply(item, response,
                            ReplyTiming(queued=queued, service=service,
                                        batched=True))

    def _finish_lane_loop(self) -> None:
        """Drain queued batch tails; ``None`` is the shutdown sentinel.

        Whatever happens, every item of a popped job resolves — a
        caller blocked in ``PendingRequest.result`` must never be
        stranded by a finisher bug.
        """
        while True:
            job = self._finish_queue.get()
            if job is None:
                return
            batch = job[0]
            try:
                self._finish_batch(*job)
            except Exception as exc:  # noqa: BLE001 - resolve anyway
                for item in batch:
                    if not item.done():
                        self.lifecycle.reply(item, ServeResponse(
                            request_id=item.request_id,
                            op=item.request.op, ok=False,
                            error=str(exc),
                            error_type=type(exc).__name__),
                            ReplyTiming())
            del batch, job

    def _finish_batch_item(self, item: PendingRequest,
                           result: PipelineResult,
                           response: ServeResponse) -> None:
        """Per-request tail of a batch: record stats, execute for ask."""
        stats = self.lifecycle.stats
        self._record_pipeline(result)
        if item.request.op == "propose":
            response.value = result
            return
        try:
            record, monitor = self.chatgraph.execute(result)
        except Exception as exc:  # noqa: BLE001 - fail only this item
            response.error = str(exc)
            response.error_type = type(exc).__name__
            return
        stats.observe("execute", record.total_seconds)
        if record.is_degraded:
            stats.incr("degraded_responses")
        response.value = ChatResponse(
            prompt=result.prompt,
            pipeline=result,
            record=record,
            answer=render_answer(record),
            monitor=monitor,
            seconds=record.total_seconds,
        )
