"""The sharded execution backend: routing, scatter/gather, migration.

:class:`ShardBackend` runs the request plane's middle — route →
coalesce → dispatch → gather — over N shard worker *processes* (see
:mod:`repro.shard.worker`), behind the same
:class:`~repro.runtime.lifecycle.RequestLifecycle` the in-process
backend uses.  The pieces:

* **routing** — a consistent-hash :class:`~repro.shard.ring.HashRing`
  on the session / graph-name / query key keeps each session and each
  graph's cache locality on one shard.  Graphs named in
  ``ServeConfig.shard_hot_graphs`` are *hot*: any of their first
  ``shard_replicas`` ring shards may serve a stateless read, picked by
  least outstanding work.
* **scatter/gather** — a per-shard dispatcher coalesces routed
  requests into scatter frames (a lifecycle-built coalescer with an
  accept-all predicate) and pipelines up to ``shard_inflight`` frames
  per shard; a per-shard reader gathers replies and resolves each
  caller's :class:`~repro.serve.engine.PendingRequest` individually
  through ``lifecycle.reply``.
* **failure** — missed heartbeats or a dropped pipe mark the shard
  dead: its ``shard:<i>`` circuit trips, every orphaned in-flight and
  queued request fails over along its ring preference, and (by
  default) a background restart replaces the process.
* **migration** — :meth:`add_shard` / :meth:`remove_shard` reshape the
  fleet live: the router pauses, outstanding work quiesces to zero,
  pinned sessions move to their new ring-preferred shards via
  adopt/evict RPCs (planned by
  :func:`~repro.runtime.migration.plan_migration`), named-graph
  affinity pre-warms the caches of new owners, and the ring swaps
  atomically before routing resumes — zero requests lost, none served
  twice.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from typing import Any

from ..errors import BackpressureError, ChatGraphError, ServeError
from ..obs.export import merge_traces
from ..obs.metrics import merge_metrics_dumps
from ..serve.engine import PendingRequest, ServeRequest, ServeResponse
from ..shard.protocol import (
    read_frame,
    request_to_wire,
    response_from_wire,
    write_frame,
)
from ..shard.ring import HashRing
from ..shard.worker import serve_config_to_wire
from .lifecycle import ExecutionBackend, ReplyTiming, RequestLifecycle

__all__ = ["SPAWN_TIMEOUT_SECONDS", "STATS_TIMEOUT_SECONDS",
           "ShardBackend", "_ShardHandle"]

#: Ceiling on one worker-process model build + server start.
SPAWN_TIMEOUT_SECONDS = 180.0
#: Ceiling on one stats round trip to a live shard.
STATS_TIMEOUT_SECONDS = 15.0


class _ShardHandle:
    """Coordinator-side state of one shard worker process."""

    def __init__(self, index: int, dispatch_depth: int,
                 inflight_limit: int,
                 lifecycle: RequestLifecycle) -> None:
        self.index = index
        self.name = f"shard:{index}"
        self.lock = threading.Lock()
        self.proc: subprocess.Popen | None = None
        self.pid = 0
        self.alive = False
        #: A retired handle left the fleet through a migration: its
        #: exit is coordinated (like shutdown), so the death path skips
        #: counters, breaker trips, failover and restart for it.
        self.retired = False
        #: Bumped on every death; readers/writers born under an older
        #: generation see the mismatch and stand down, which makes the
        #: death path idempotent against racing EOF + heartbeat timeout.
        self.generation = 0
        self.write_lock = threading.Lock()
        #: Requests routed here, waiting for a scatter slot.  A bounded
        #: staging queue (sized past the router's outstanding limit at
        #: build time) so the dispatcher's coalescer can assemble
        #: scatter frames straight from it.  A later ``add_shard`` can
        #: grow the outstanding limit past this fixed depth; the router
        #: treats the resulting overflow as a spill and re-routes.
        self.dispatch = lifecycle.make_queue(dispatch_depth)
        self.inflight_limit = inflight_limit
        #: Pipelining throttle: one permit per un-replied scatter frame.
        self.sem = threading.BoundedSemaphore(inflight_limit)
        #: batch_id -> (generation, items, dispatched_at)
        self.inflight: dict[int, tuple[int, list[PendingRequest],
                                       float]] = {}
        #: Real-time stamp of the last frame seen from the process
        #: (heartbeats included).  Liveness is a property of the real
        #: process, so this stays on time.monotonic even when the
        #: serving clock is virtual.
        self.last_beat = 0.0
        #: Requests routed here and not yet resolved (replica routing
        #: picks the least-loaded by this number).
        self.pending_count = 0
        self.routed = 0
        self.deaths = 0
        self.restarts = 0
        self.startup_seconds = 0.0
        #: rpc_id -> [threading.Event, reply-frame-or-None]; one waiter
        #: map for every request/reply RPC on the control channel
        #: (stats polls, session collection, adopt/evict/warm).
        self.rpc_waiters: dict[int, list[Any]] = {}
        #: Last stats_reply payload (rendered for dead shards).
        self.last_stats: dict[str, Any] | None = None


class ShardBackend(ExecutionBackend):
    """Scatter/gather over worker processes, plus live fleet reshaping.

    ``model_wire`` is the value-only model recipe every worker applies
    (:meth:`repro.shard.coordinator.ShardModelSpec.to_wire`), which is
    what makes any shard's answer to a content-seeded request
    byte-identical to any other's.
    """

    #: Per-shard circuits must exist even when the config leaves the
    #: request-level breakers off.
    requires_breakers = True

    def __init__(self, model_wire: dict[str, Any]) -> None:
        self.model_wire = model_wire

    def bind(self, lifecycle: RequestLifecycle) -> None:
        super().bind(lifecycle)
        config = lifecycle.config
        self.config = config
        self.ring = HashRing(range(config.shards))
        scatter = max(1, config.shard_scatter_batch)
        #: Work admitted past the router but not yet resolved, fleet
        #: wide.  Capping it at full pipeline occupancy (every shard's
        #: every inflight slot holding a full scatter frame, plus one
        #: frame assembling per dispatcher) is what lets the admission
        #: queue fill and shed during spikes.  Recomputed on every ring
        #: change.
        self._outstanding_limit = (config.shards
                                   * (config.shard_inflight + 1)
                                   * scatter)
        self._outstanding = 0
        self._outstanding_cond = threading.Condition()
        dispatch_depth = self._outstanding_limit + scatter
        self.handles = [
            _ShardHandle(index, dispatch_depth, config.shard_inflight,
                         lifecycle)
            for index in range(config.shards)]
        self._hot = set(config.shard_hot_graphs)
        #: Cleared while a migration holds the fleet quiesced; the
        #: router parks (admission keeps queueing, bounded) until the
        #: ring swap completes.
        self._route_gate = threading.Event()
        self._route_gate.set()
        self._migration_lock = threading.Lock()
        self._router_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._id_lock = threading.Lock()
        self._next_batch = 0
        self._next_rpc = 0

    def _active_handles(self) -> list[_ShardHandle]:
        return [handle for handle in self.handles if not handle.retired]

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def check(self, request: ServeRequest) -> None:
        if request.op == "execute":
            raise ServeError(
                "op 'execute' is not shardable (PipelineResult holds "
                "live pipeline objects); use the in-process server for "
                "the propose/confirm/execute loop")

    def prepare(self, pending: PendingRequest) -> None:
        pending._tried = set()

    def boot(self) -> None:
        self._stopping = False
        errors: list[tuple[int, BaseException]] = []

        def spawn(handle: _ShardHandle) -> None:
            try:
                self._spawn_shard(handle)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((handle.index, exc))

        # model builds dominate startup, so boot every shard in
        # parallel: the fleet comes up in one model-build time, not N
        boots = [threading.Thread(target=spawn, args=(handle,),
                                  name=f"shard-boot-{handle.index}")
                 for handle in self.handles]
        for thread in boots:
            thread.start()
        for thread in boots:
            thread.join(SPAWN_TIMEOUT_SECONDS)
        if errors:
            self._kill_all()
            index, exc = errors[0]
            raise ServeError(
                f"shard {index} failed to start: {exc}") from exc

    def launch(self) -> None:
        self._router_thread = threading.Thread(
            target=self._router_loop, name="shard-router", daemon=True)
        self._threads = [self._router_thread]
        for handle in self.handles:
            self._threads.append(threading.Thread(
                target=self._dispatcher_loop, args=(handle,),
                name=f"shard-dispatch-{handle.index}", daemon=True))
        self._threads.append(threading.Thread(
            target=self._heartbeat_monitor, name="shard-heartbeats",
            daemon=True))
        for thread in self._threads:
            thread.start()

    def shutdown(self, drain: bool, deadline: float) -> None:
        # the router exits once the closed queue is empty *and* its last
        # pop finished routing, so joining it (rather than sampling the
        # queue length) closes the popped-but-not-yet-counted window
        if self._router_thread is not None:
            self._router_thread.join(
                max(0.1, deadline - time.monotonic()))
        if drain:
            while time.monotonic() < deadline:
                with self._outstanding_cond:
                    if self._outstanding == 0:
                        break
                time.sleep(0.01)
        self._stopping = True
        for handle in self.handles:
            handle.dispatch.close()
            with handle.lock:
                proc = handle.proc if handle.alive else None
            if proc is not None:
                try:
                    with handle.write_lock:
                        write_frame(proc.stdin, {"type": "shutdown"})
                except (OSError, ValueError, ChatGraphError):
                    pass
        for handle in self.handles:
            with handle.lock:
                proc = handle.proc
            if proc is None:
                continue
            try:
                proc.wait(max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()

    def finalize(self, deadline: float) -> None:
        with self._outstanding_cond:
            self._outstanding_cond.notify_all()
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        self._threads = []
        self._router_thread = None

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def _spawn_shard(self, handle: _ShardHandle) -> None:
        """Start one worker process and wait for its hello."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.shard.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=dict(os.environ))
        try:
            write_frame(proc.stdin, {
                "type": "init", "shard": handle.index,
                "model": self.model_wire,
                "serve": serve_config_to_wire(self.config)})
            hello = read_frame(proc.stdout)
        except (OSError, ValueError, ChatGraphError) as exc:
            proc.kill()
            raise ServeError(
                f"shard {handle.index} died during startup: {exc}"
            ) from exc
        if hello is None or hello.get("type") != "hello":
            proc.kill()
            raise ServeError(
                f"shard {handle.index} sent {hello!r} instead of hello")
        with handle.lock:
            handle.proc = proc
            handle.pid = int(hello.get("pid", proc.pid))
            handle.startup_seconds = float(
                hello.get("startup_seconds", 0.0))
            handle.alive = True
            handle.generation += 1
            handle.sem = threading.BoundedSemaphore(handle.inflight_limit)
            handle.last_beat = time.monotonic()
            generation = handle.generation
        reader = threading.Thread(
            target=self._reader_loop, args=(handle, generation, proc),
            name=f"shard-reader-{handle.index}-g{generation}",
            daemon=True)
        reader.start()

    def _kill_all(self) -> None:
        for handle in self.handles:
            with handle.lock:
                proc, handle.proc, handle.alive = handle.proc, None, False
            if proc is not None:
                proc.kill()

    def kill_shard(self, index: int) -> None:
        """Hard-kill one worker (chaos hook; SIGKILL, no goodbye).

        Recovery is the normal death path: the reader sees EOF, the
        breaker trips, orphans fail over, and (unless ``shard_restart``
        is off) a replacement process comes up in the background.
        """
        handle = self.handles[index]
        with handle.lock:
            proc = handle.proc
        if proc is not None:
            proc.kill()

    def _restart_shard(self, handle: _ShardHandle) -> None:
        try:
            self._spawn_shard(handle)
        except ChatGraphError:
            self.lifecycle.metrics.incr("shard_restart_failed")
            return
        handle.restarts += 1
        self.lifecycle.stats.incr("shard_restarts")
        self.lifecycle.metrics.incr("shard_restarts")
        # the replacement is a fresh process: its circuit starts closed
        self.lifecycle.breakers.reset_one(handle.name)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def routing_key(request: ServeRequest) -> str:
        """The consistent-hash key of one request.

        Sessions pin to their shard (dialog state lives there); named
        graphs pin to theirs (epoch-pinned views and warm caches);
        inline-graph one-shots key on graph name + text so repeats of
        the same question reuse the same shard's caches.
        """
        if request.session_id is not None:
            return f"s:{request.session_id}"
        if request.graph_name is not None:
            return f"g:{request.graph_name}"
        graph_name = request.graph.name if request.graph is not None \
            else ""
        return f"q:{graph_name}|{request.text}"

    def _live(self, index: int, tried: set[int]) -> bool:
        if index in tried:
            return False
        handle = self.handles[index]
        return handle.alive and handle.name not in \
            self.lifecycle.breakers.open_names()

    def _pick_shard(self, item: PendingRequest) -> _ShardHandle | None:
        request = item.request
        key = self.routing_key(request)
        tried: set[int] = item._tried
        if (request.graph_name in self._hot
                and request.session_id is None):
            # hot named graph: stateless reads spread over the replica
            # set (the first shard_replicas shards of the preference
            # walk), least loaded first
            replicas = [i for i in self.ring.preferred(
                key, self.config.shard_replicas)
                if self._live(i, tried)]
            if replicas:
                return self.handles[min(
                    replicas,
                    key=lambda i: self.handles[i].pending_count)]
        for index in self.ring.preference(key):
            if self._live(index, tried):
                return self.handles[index]
        # last resort: every preferred shard is dead or already tried —
        # any live shard beats failing the request (all state needed to
        # serve is rebuilt from the shared store / request content)
        for index in self.ring.shards:
            if self._live(index, tried):
                return self.handles[index]
        return None

    def _route(self, item: PendingRequest, failover: bool = False) -> None:
        if not failover:
            # count the item outstanding *before* picking a shard: every
            # path below either parks it on a dispatch queue or resolves
            # it (which decrements), so the counter can never leak
            with self._outstanding_cond:
                self._outstanding += 1
        handle = self._pick_shard(item)
        if handle is None:
            self._resolve_failure(
                item, ServeError("no live shard available"))
            return
        handle.routed += 1
        with self._outstanding_cond:
            handle.pending_count += 1
        try:
            handle.dispatch.put(item)
        except BackpressureError:
            # this handle's dispatch queue was sized under a smaller
            # fleet and a later add_shard grew the outstanding limit
            # past it: spill sideways along the ring instead of failing
            with self._outstanding_cond:
                handle.pending_count -= 1
            self.lifecycle.metrics.incr("shard_spills")
            item._tried.add(handle.index)
            self._route(item, failover=True)
        except ChatGraphError as exc:
            # a closed queue (shutdown, retirement): fail the item
            # cleanly rather than strand it
            with self._outstanding_cond:
                handle.pending_count -= 1
            self._resolve_failure(item, exc)

    def _router_loop(self) -> None:
        lifecycle = self.lifecycle
        while True:
            if not self._route_gate.is_set():
                # a migration holds the fleet quiesced; admitted work
                # waits (bounded) on the admission queue
                self._route_gate.wait(0.1)
                continue
            with self._outstanding_cond:
                while (lifecycle.running
                       and self._outstanding >= self._outstanding_limit):
                    self._outstanding_cond.wait(0.1)
            item = lifecycle.queue.get(timeout=0.05)
            if item is None:
                if lifecycle.queue.closed and len(lifecycle.queue) == 0:
                    return
                if not lifecycle.running:
                    return
                continue
            self._route(item)

    # ------------------------------------------------------------------
    # scatter
    # ------------------------------------------------------------------
    def _dispatcher_loop(self, handle: _ShardHandle) -> None:
        batcher = self.lifecycle.make_batcher(
            max(1, self.config.shard_scatter_batch),
            self.config.shard_scatter_deadline_seconds,
            batchable_fn=lambda item: True)
        while True:
            item = handle.dispatch.get(timeout=0.05)
            if item is None:
                if handle.dispatch.closed and len(handle.dispatch) == 0:
                    return
                continue
            batch, passthrough = batcher.collect(handle.dispatch, item)
            # accept-all predicate -> everything lands in the batch
            self._send_batch(handle, batch + passthrough)

    def _send_batch(self, handle: _ShardHandle,
                    items: list[PendingRequest]) -> None:
        if not items:
            return
        # bounded pipelining: block this shard's dispatcher (not the
        # router, not callers) until a frame slot frees; re-check
        # liveness each second so a death releases us via failover
        sem = handle.sem
        while not sem.acquire(timeout=1.0):
            if not handle.alive or handle.sem is not sem:
                # the shard died while we waited (its sem was replaced):
                # this batch was never inflight, so re-route it whole
                for item in items:
                    self._failover_item(item, handle.index)
                return
        with self._id_lock:
            self._next_batch += 1
            batch_id = self._next_batch
        wires = []
        for item in items:
            wires.append(request_to_wire(item.request, item.request_id,
                                         parent_span=item.parent_span_id))
        dispatched_at = time.perf_counter()
        for item in items:
            item.dispatched_at = dispatched_at
        # registration happens under the handle lock with a liveness
        # re-check: once the entry is in ``inflight``, a concurrent
        # death is guaranteed to see and fail it over
        with handle.lock:
            if not handle.alive or handle.sem is not sem:
                dead = True
            else:
                dead = False
                generation = handle.generation
                proc = handle.proc
                handle.inflight[batch_id] = (generation, items,
                                             dispatched_at)
        if dead:
            for item in items:
                self._failover_item(item, handle.index)
            return
        try:
            with handle.write_lock:
                write_frame(proc.stdin, {
                    "type": "batch", "batch_id": batch_id,
                    "items": wires})
        except (OSError, ValueError, ChatGraphError):
            self._on_shard_down(handle, generation)
            # the death path usually fails the batch over; if it raced
            # us and already ran, the entry is ours to clean up
            with handle.lock:
                entry = handle.inflight.pop(batch_id, None)
            if entry is not None:
                for item in entry[1]:
                    self._failover_item(item, handle.index)
            return
        self.lifecycle.metrics.observe("scatter_batch_size",
                                       float(len(items)))

    # ------------------------------------------------------------------
    # gather
    # ------------------------------------------------------------------
    def _reader_loop(self, handle: _ShardHandle, generation: int,
                     proc: subprocess.Popen) -> None:
        try:
            while True:
                with handle.lock:
                    if handle.generation != generation:
                        return  # superseded; the new reader owns the pipe
                try:
                    frame = read_frame(proc.stdout)
                except ChatGraphError:
                    return
                if frame is None:
                    return
                handle.last_beat = time.monotonic()
                kind = frame.get("type")
                if kind == "batch_reply":
                    self._gather(handle, generation, frame)
                elif kind in ("stats_reply", "sessions_reply",
                              "adopt_reply", "evict_reply",
                              "warm_reply"):
                    self._accept_rpc(handle, frame)
                # heartbeats only refresh last_beat
        finally:
            self._on_shard_down(handle, generation)

    def _gather(self, handle: _ShardHandle, generation: int,
                frame: dict[str, Any]) -> None:
        with handle.lock:
            entry = handle.inflight.pop(frame.get("batch_id"), None)
        if entry is None or entry[0] != generation:
            return
        __, items, dispatched_at = entry
        service = time.perf_counter() - dispatched_at
        replies = frame.get("replies") or []
        by_id = {wire.get("request_id"): wire for wire in replies}
        try:
            handle.sem.release()
        except ValueError:
            pass
        with self._outstanding_cond:
            handle.pending_count -= len(items)
        for item in items:
            wire = by_id.get(item.request_id)
            if wire is None:
                self._resolve_failure(item, ServeError(
                    f"shard {handle.index} dropped request "
                    f"{item.request_id} from its reply"))
                continue
            response = response_from_wire(wire)
            self._resolve_item(item, response, service)

    def _resolve_item(self, item: PendingRequest,
                      response: ServeResponse, service: float) -> None:
        """The gathered-reply resolution path."""
        lifecycle = self.lifecycle
        queued = item.dispatched_at - item.enqueued_at
        lifecycle.record_service_time(service)
        lifecycle.reply(item, response,
                        ReplyTiming(queued=queued, service=service))
        self._settle_outstanding()

    def _resolve_failure(self, item: PendingRequest,
                         exc: Exception) -> None:
        """Fail one *routed* request: it counts and settles outstanding.

        Never-routed requests (the shutdown drain of the admission
        queue) are the lifecycle's to resolve — silently, as neither
        failures nor latency samples.
        """
        self.lifecycle.reply(item, ServeResponse(
            request_id=item.request_id, op=item.request.op, ok=False,
            error=str(exc), error_type=type(exc).__name__),
            ReplyTiming())
        self._settle_outstanding()

    def _settle_outstanding(self) -> None:
        with self._outstanding_cond:
            self._outstanding -= 1
            self._outstanding_cond.notify_all()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _failover_item(self, item: PendingRequest, from_shard: int) -> None:
        """Re-route one orphaned request after its shard died."""
        item._tried.add(from_shard)
        with self._outstanding_cond:
            self.handles[from_shard].pending_count -= 1
        self.lifecycle.stats.incr("shard_failovers")
        self.lifecycle.metrics.incr("shard_failovers")
        self._route(item, failover=True)

    def _on_shard_down(self, handle: _ShardHandle,
                       generation: int) -> None:
        stopping = self._stopping or handle.retired
        with handle.lock:
            if handle.generation != generation or not handle.alive:
                return
            handle.alive = False
            proc, handle.proc = handle.proc, None
            # replace the semaphore so blocked dispatchers notice and
            # new sends against the next generation start with a full
            # pipeline budget
            handle.sem = threading.BoundedSemaphore(handle.inflight_limit)
            orphans: list[PendingRequest] = []
            for batch_id in [b for b, entry in handle.inflight.items()
                             if entry[0] == generation]:
                entry = handle.inflight.pop(batch_id, None)
                if entry is not None:
                    orphans.extend(entry[1])
            if not stopping:
                handle.deaths += 1
        if proc is not None:
            proc.kill()
        if not stopping:
            # a worker EOF-ing during coordinated shutdown (or a
            # migration retirement) is a clean exit, not a death: no
            # counters, no breaker, no restart
            self.lifecycle.stats.incr("shard_deaths")
            self.lifecycle.metrics.incr("shard_deaths")
            if self.lifecycle.breakers.trip(handle.name):
                # surface through the same counter the robustness
                # layer uses, so existing SLO gates see the trip
                self.lifecycle.stats.incr("breaker_opened")
        # queued-but-unsent work follows the inflight orphans
        orphans.extend(handle.dispatch.drain())
        for item in orphans:
            self._failover_item(item, handle.index)
        # fail any control-channel RPC blocked on this shard
        with handle.lock:
            waiters = list(handle.rpc_waiters.values())
            handle.rpc_waiters.clear()
        for waiter in waiters:
            waiter[0].set()
        if (self.config.shard_restart and not stopping
                and not self._stopping):
            threading.Thread(
                target=self._restart_shard, args=(handle,),
                name=f"shard-restart-{handle.index}",
                daemon=True).start()

    def _heartbeat_monitor(self) -> None:
        interval = self.config.shard_heartbeat_seconds
        timeout = self.config.shard_heartbeat_timeout_seconds
        while self.lifecycle.running:
            time.sleep(interval)
            now = time.monotonic()
            for handle in list(self.handles):
                with handle.lock:
                    alive = handle.alive
                    stale = now - handle.last_beat
                    generation = handle.generation
                    proc = handle.proc
                if alive and stale > timeout:
                    # the process is wedged (a clean exit would have
                    # EOF'd the reader first): kill it so the reader
                    # unblocks and runs the death path
                    self.lifecycle.metrics.incr("shard_heartbeat_timeouts")
                    if proc is not None:
                        proc.kill()
                    self._on_shard_down(handle, generation)

    # ------------------------------------------------------------------
    # control-channel RPCs
    # ------------------------------------------------------------------
    def _shard_rpc(self, handle: _ShardHandle, kind: str,
                   payload: dict[str, Any],
                   deadline: float) -> dict[str, Any] | None:
        """One request/reply round trip; None on a dead or late shard."""
        with self._id_lock:
            self._next_rpc += 1
            rpc_id = self._next_rpc
        waiter = [threading.Event(), None]
        with handle.lock:
            if not handle.alive:
                return None
            proc = handle.proc
            handle.rpc_waiters[rpc_id] = waiter
        frame = {"type": kind, "rpc_id": rpc_id, **payload}
        try:
            with handle.write_lock:
                write_frame(proc.stdin, frame)
        except (OSError, ValueError, ChatGraphError):
            with handle.lock:
                handle.rpc_waiters.pop(rpc_id, None)
            return None
        waiter[0].wait(max(0.0, deadline - time.monotonic()))
        with handle.lock:
            handle.rpc_waiters.pop(rpc_id, None)
        return waiter[1]

    def _accept_rpc(self, handle: _ShardHandle,
                    frame: dict[str, Any]) -> None:
        rpc_id = frame.get("rpc_id", frame.get("stats_id"))
        with handle.lock:
            waiter = handle.rpc_waiters.get(rpc_id)
        if waiter is not None:
            waiter[1] = frame
            waiter[0].set()

    def _poll_shards(self, include_spans: bool = False,
                     timeout: float = STATS_TIMEOUT_SECONDS
                     ) -> dict[int, dict[str, Any]]:
        """One stats round trip to every live shard (dead ones skip)."""
        waiting: list[tuple[_ShardHandle, int, list[Any]]] = []
        for handle in self.handles:
            with handle.lock:
                if not handle.alive:
                    continue
                proc = handle.proc
                with self._id_lock:
                    self._next_rpc += 1
                    rpc_id = self._next_rpc
                waiter = [threading.Event(), None]
                handle.rpc_waiters[rpc_id] = waiter
            try:
                with handle.write_lock:
                    write_frame(proc.stdin, {
                        "type": "stats", "stats_id": rpc_id,
                        "include_spans": bool(include_spans)})
            except (OSError, ValueError, ChatGraphError):
                with handle.lock:
                    handle.rpc_waiters.pop(rpc_id, None)
                continue
            waiting.append((handle, rpc_id, waiter))
        deadline = time.monotonic() + timeout
        replies: dict[int, dict[str, Any]] = {}
        for handle, rpc_id, waiter in waiting:
            waiter[0].wait(max(0.0, deadline - time.monotonic()))
            with handle.lock:
                handle.rpc_waiters.pop(rpc_id, None)
            if waiter[1] is not None:
                replies[handle.index] = waiter[1]
                handle.last_stats = waiter[1]
        return replies

    # ------------------------------------------------------------------
    # migration (live ring changes)
    # ------------------------------------------------------------------
    def add_shard(self) -> dict[str, Any]:
        """Grow the fleet by one shard, live, migrating pinned state.

        Spawns the worker *before* pausing the router (a model build
        takes seconds; the routing pause lasts only the quiesce), then
        runs the migration: sessions whose new ring preference is the
        joining shard are adopted by it, named-graph affinity pre-warms
        its caches, and the outstanding-work limit grows with the
        fleet.  Returns the migration report.
        """
        if not self.lifecycle.running:
            raise ServeError(
                "cannot reshape the fleet while the server is stopped")
        with self._migration_lock:
            config = self.config
            scatter = max(1, config.shard_scatter_batch)
            limit_after = ((len(self._active_handles()) + 1)
                           * (config.shard_inflight + 1) * scatter)
            handle = _ShardHandle(len(self.handles),
                                  limit_after + scatter,
                                  config.shard_inflight, self.lifecycle)
            self._spawn_shard(handle)
            self.handles.append(handle)
            thread = threading.Thread(
                target=self._dispatcher_loop, args=(handle,),
                name=f"shard-dispatch-{handle.index}", daemon=True)
            self._threads.append(thread)
            thread.start()
            new_ring = HashRing(
                h.index for h in self._active_handles())
            try:
                return self._migrate(new_ring, joining=handle,
                                     leaving=None)
            except BaseException:
                # the migration never swapped the ring: retire the
                # spawned worker so the fleet is exactly as before
                self._retire(handle,
                             time.monotonic() + 5.0)
                raise

    def remove_shard(self, index: int) -> dict[str, Any]:
        """Shrink the fleet by one shard, live, migrating pinned state.

        The leaving shard's sessions are adopted by their new ring-
        preferred survivors before it is retired (coordinated shutdown:
        no death counters, no breaker trip, no restart).  Returns the
        migration report.
        """
        if not self.lifecycle.running:
            raise ServeError(
                "cannot reshape the fleet while the server is stopped")
        with self._migration_lock:
            handle = self.handles[index]
            if handle.retired:
                raise ServeError(f"shard {index} is already retired")
            survivors = [h.index for h in self._active_handles()
                         if h.index != index]
            if not survivors:
                raise ServeError("cannot remove the last shard")
            new_ring = HashRing(survivors)
            return self._migrate(new_ring, joining=None, leaving=handle)

    def _migrate(self, new_ring: HashRing,
                 joining: _ShardHandle | None,
                 leaving: _ShardHandle | None) -> dict[str, Any]:
        old_ring = self.ring
        config = self.config
        deadline = (time.monotonic()
                    + config.shard_migration_timeout_seconds)
        self._route_gate.clear()
        try:
            self._quiesce(deadline)
            placements, graph_names, session_graphs = \
                self._collect_pins(old_ring, deadline)
            members = set(new_ring.shards)
            live = [h.index for h in self.handles
                    if h.alive and not h.retired and h.index in members]
            from .migration import plan_migration

            plan = plan_migration(old_ring, new_ring, placements,
                                  live=live)
            moved = self._apply_plan(plan, session_graphs, leaving,
                                     deadline)
            # the swap is atomic under the paused router: nothing is in
            # flight (quiesced) and nothing routes until the gate lifts
            self.ring = new_ring
            with self._outstanding_cond:
                self._outstanding_limit = (
                    len(new_ring.shards)
                    * (config.shard_inflight + 1)
                    * max(1, config.shard_scatter_batch))
                self._outstanding_cond.notify_all()
            warmed = self._warm_affinity(old_ring, new_ring,
                                         graph_names, deadline)
            if leaving is not None:
                self._retire(leaving, deadline)
            stats = self.lifecycle.stats
            stats.incr("shard_migrations")
            self.lifecycle.metrics.incr("shard_migrations")
            if moved:
                stats.incr("sessions_migrated", moved)
                self.lifecycle.metrics.incr("sessions_migrated", moved)
            return {
                "joining": None if joining is None else joining.index,
                "leaving": None if leaving is None else leaving.index,
                "ring": list(new_ring.shards),
                "planned_moves": len(plan.moves),
                "sessions_migrated": moved,
                "unchanged": len(plan.unchanged),
                "stranded": len(plan.stranded),
                "cache_entries_warmed": warmed,
            }
        finally:
            self._route_gate.set()

    def _quiesce(self, deadline: float) -> None:
        """Wait for every routed request to resolve (router is paused)."""
        with self._outstanding_cond:
            while self._outstanding > 0:
                if time.monotonic() >= deadline:
                    raise ServeError(
                        f"migration could not quiesce: "
                        f"{self._outstanding} requests still "
                        f"outstanding at the deadline")
                self._outstanding_cond.wait(0.05)

    def _collect_pins(self, old_ring: HashRing, deadline: float
                      ) -> tuple[dict[str, int], set[str],
                                 dict[str, tuple[str, str | None]]]:
        """Ask every live shard which sessions it holds.

        The coordinator never tracks session placement itself —
        failovers can strand a session off its ring home — so the
        fleet is the source of truth.  If a session somehow exists on
        two shards (failover residue), the copy on the old ring's
        preferred shard wins.
        """
        placements: dict[str, int] = {}
        session_graphs: dict[str, tuple[str, str | None]] = {}
        graph_names = set(self.config.shard_hot_graphs)
        for handle in self._active_handles():
            if not handle.alive:
                continue
            reply = self._shard_rpc(handle, "sessions", {}, deadline)
            if reply is None:
                continue
            for entry in reply.get("sessions") or []:
                session_id = entry.get("session_id")
                if session_id is None:
                    continue
                key = f"s:{session_id}"
                name = entry.get("graph_name")
                if name:
                    graph_names.add(name)
                if key in placements:
                    walk = {shard: rank for rank, shard in
                            enumerate(old_ring.preference(key))}
                    if walk.get(handle.index, len(walk)) >= \
                            walk.get(placements[key], len(walk)):
                        continue
                placements[key] = handle.index
                session_graphs[key] = (session_id, name)
        return placements, graph_names, session_graphs

    def _apply_plan(self, plan: Any,
                    session_graphs: dict[str, tuple[str, str | None]],
                    leaving: _ShardHandle | None,
                    deadline: float) -> int:
        """Adopt sessions at their new homes, then evict the old copies.

        Adopt-before-evict means a crash mid-migration leaves a session
        present on *both* shards (harmless duplicate, resolved by the
        next ring-change's preference rule) rather than on neither.  A
        leaving shard skips eviction — retirement drops everything.
        """
        by_target: dict[int, list[Any]] = {}
        for move in plan.moves:
            by_target.setdefault(move.to_shard, []).append(move)
        moved = 0
        adopted: set[str] = set()
        for target, moves in sorted(by_target.items()):
            payload = {"sessions": [
                {"session_id": session_graphs[move.key][0],
                 "graph_name": session_graphs[move.key][1]}
                for move in moves]}
            reply = self._shard_rpc(self.handles[target], "adopt",
                                    payload, deadline)
            if reply is None:
                # target died mid-migration: leave those sessions where
                # they are; the death path's failover keeps serving them
                continue
            moved += int(reply.get("adopted", 0))
            adopted.update(move.key for move in moves)
        by_source: dict[int, list[Any]] = {}
        for move in plan.moves:
            if move.key not in adopted:
                continue
            if leaving is not None and move.from_shard == leaving.index:
                continue
            by_source.setdefault(move.from_shard, []).append(move)
        for source, moves in sorted(by_source.items()):
            self._shard_rpc(self.handles[source], "evict", {
                "session_ids": [session_graphs[move.key][0]
                                for move in moves]}, deadline)
        return moved

    def _warm_affinity(self, old_ring: HashRing, new_ring: HashRing,
                       graph_names: set[str], deadline: float) -> int:
        """Pre-warm caches on each graph's *new* owners.

        A graph's owners are its first ring shard (hot graphs: the
        first ``shard_replicas``); shards that just gained ownership
        warm that graph's sequence/embedding caches from the shared
        store before routing resumes, so moved traffic does not pay a
        cold-cache penalty.
        """
        replicas = max(1, self.config.shard_replicas)
        by_shard: dict[int, list[str]] = {}
        for name in sorted(graph_names):
            key = f"g:{name}"
            count = replicas if name in self._hot else 1
            old_owners = set(old_ring.preferred(key, count))
            for index in new_ring.preferred(key, count):
                if index not in old_owners:
                    by_shard.setdefault(index, []).append(name)
        warmed = 0
        for index, names in sorted(by_shard.items()):
            reply = self._shard_rpc(self.handles[index], "warm",
                                    {"names": names}, deadline)
            if reply is not None:
                warmed += int(reply.get("warmed", 0))
        return warmed

    def _retire(self, handle: _ShardHandle, deadline: float) -> None:
        """Coordinated exit of one shard: like shutdown, scoped to it."""
        handle.retired = True
        handle.dispatch.close()
        with handle.lock:
            proc = handle.proc if handle.alive else None
        if proc is not None:
            try:
                with handle.write_lock:
                    write_frame(proc.stdin, {"type": "shutdown"})
            except (OSError, ValueError, ChatGraphError):
                pass
            try:
                proc.wait(max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def stats_sections(self) -> dict[str, Any]:
        replies = self._poll_shards()
        active = 0
        cache_totals: dict[str, dict[str, Any]] = {}
        per_shard: dict[str, dict[str, Any]] = {}
        epochs: dict[str, dict[str, int]] = {}
        for handle in self.handles:
            reply = replies.get(handle.index)
            stats = (reply or handle.last_stats or {}).get("stats", {})
            entry: dict[str, Any] = {
                "alive": handle.alive,
                "retired": handle.retired,
                "pid": handle.pid,
                "generation": handle.generation,
                "routed": handle.routed,
                "pending": handle.pending_count,
                "inflight_batches": len(handle.inflight),
                "dispatch_queue": len(handle.dispatch),
                "deaths": handle.deaths,
                "restarts": handle.restarts,
                "startup_seconds": round(handle.startup_seconds, 3),
                "breaker": self.lifecycle.breakers.breaker(
                    handle.name).snapshot(),
            }
            if stats:
                entry["counters"] = stats.get("counters", {})
                entry["sessions"] = stats.get("sessions", {})
                entry["caches"] = stats.get("caches", {})
                entry["store"] = stats.get("store", {})
                active += stats.get("sessions", {}).get("active", 0)
                for cache, values in stats.get("caches", {}).items():
                    totals = cache_totals.setdefault(
                        cache, {"hits": 0, "misses": 0, "evictions": 0,
                                "size": 0})
                    for field in totals:
                        totals[field] += values.get(field, 0)
                for name, graph_stats in stats.get("store", {}).items():
                    epochs.setdefault(name, {})[str(handle.index)] = \
                        graph_stats.get("epoch", 0)
            per_shard[str(handle.index)] = entry
        for totals in cache_totals.values():
            seen = totals["hits"] + totals["misses"]
            totals["hit_rate"] = round(
                totals["hits"] / seen, 4) if seen else 0.0
        return {
            "sessions": {"active": active},
            "caches": cache_totals,
            "pipeline_stages": [],
            #: Epoch pinning across processes: every shard reports each
            #: named graph's epoch; skew means a shard has not yet
            #: observed a compaction/ingest another shard has.
            "store": {
                "epochs": epochs,
                "epoch_skew": sorted(
                    name for name, by_shard in epochs.items()
                    if len(set(by_shard.values())) > 1),
            },
            "shards": {
                #: Live fleet size (the ring) — retired handles linger
                #: in ``per_shard`` for post-mortem but don't count.
                "count": len(self.ring.shards),
                "alive": sum(1 for h in self.handles if h.alive),
                "retired": sum(1 for h in self.handles if h.retired),
                "per_shard": per_shard,
            },
        }

    def merged_metrics(self, base: dict[str, Any]) -> dict[str, Any]:
        replies = self._poll_shards()
        dumps = [self.lifecycle.metrics.dump()]
        dumps.extend(reply["metrics"] for reply in replies.values()
                     if reply.get("metrics"))
        return merge_metrics_dumps(dumps)

    def collect_spans(self) -> list[dict[str, Any]]:
        """One merged structural trace across the process boundary.

        Shard-side request spans parent under the coordinator-side
        caller spans (the handoff travels in each request wire), so the
        merged view reads as one tree.
        """
        replies = self._poll_shards(include_spans=True)
        own: list[Any] = []
        tracer = self.lifecycle.tracer
        if tracer is not None:
            own = [span.to_dict(canonical=True)
                   for span in tracer.finished_spans()]
        shard_spans = [reply.get("spans") or []
                       for reply in replies.values()]
        return merge_traces(own, *shard_spans)
