"""The request lifecycle: one admission-to-reply path for every server.

``RequestLifecycle`` is the single request plane both serving facades
run on.  It owns admission control (the bounded queue, the per-client
rate limiter), id allocation, the stats/metrics/tracing/breaker
registries, and the two edges every request crosses — ``submit`` (admit
or reject) and ``reply`` (resolve the caller's handle, exactly once) —
with the bookkeeping on those edges expressed as middleware, mirroring
the StageGraph middleware onion on the execution plane.

Everything between the edges — *how* a request is routed, coalesced,
dispatched and gathered — belongs to the pluggable
:class:`ExecutionBackend` (a worker-thread pool in
:class:`~repro.runtime.local.LocalBackend`, a scatter/gather process
fleet in :class:`~repro.runtime.shard.ShardBackend`).

This module is the only place the admission-control primitives are
constructed (``tests/test_runtime_wiring_lint.py`` enforces it);
backends obtain extra queues and coalescers through the
:meth:`RequestLifecycle.make_queue` / :meth:`RequestLifecycle.make_batcher`
factories.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..config import ServeConfig
from ..errors import ChatGraphError, ServeError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..serve.admission import AdmissionQueue, RateLimiter
from ..serve.breaker import BreakerRegistry
from ..serve.engine import PendingRequest, ServeRequest, ServeResponse
from ..serve.microbatch import MicroBatcher
from ..serve.stats import ServerStats

__all__ = [
    "ExecutionBackend",
    "LifecycleMiddleware",
    "ReplyTiming",
    "RequestLifecycle",
    "StatsMiddleware",
    "TracingContextMiddleware",
]


@dataclass(frozen=True)
class ReplyTiming:
    """What the reply edge should record for one resolving request.

    ``None`` fields are simply not recorded — a failure that never
    reached a backend (no live shard) counts against ``failed`` and its
    op counter but contributes nothing to the latency histograms.  A
    reply carrying ``timing=None`` resolves the caller silently (the
    shutdown drain of never-routed requests).
    """

    #: Seconds spent queued before dispatch (``queued`` histogram).
    queued: float | None = None
    #: Seconds of service (``service`` histogram; with ``queued`` also
    #: feeds the ``total`` histogram).
    service: float | None = None
    #: The request resolved off a coalesced batch (``microbatched``).
    batched: bool = False


class LifecycleMiddleware:
    """Hooks on the lifecycle's admission and reply edges.

    Same shape as the stage-graph middleware: subclasses override only
    what they observe, and the lifecycle calls every installed
    middleware in order on each edge.
    """

    def on_submit(self, pending: PendingRequest) -> None:
        """Before enqueueing: the request exists but is not admitted."""

    def on_reject(self, request: ServeRequest, reason: str) -> None:
        """Admission control rejected (``rate_limit`` / ``backpressure``)."""

    def on_admitted(self, pending: PendingRequest) -> None:
        """After the queue accepted the request."""

    def on_reply(self, pending: PendingRequest, response: ServeResponse,
                 timing: ReplyTiming | None) -> None:
        """At resolution, before the caller's handle is released."""


class StatsMiddleware(LifecycleMiddleware):
    """Counters and latency histograms for both lifecycle edges.

    The one place the admitted/rejected/failed/op counters and the
    queued/service/total histograms are written, so the two serving
    facades cannot diverge in what they count.
    """

    def __init__(self, stats: ServerStats) -> None:
        self.stats = stats

    def on_reject(self, request: ServeRequest, reason: str) -> None:
        self.stats.incr(f"rejected_{reason}")

    def on_admitted(self, pending: PendingRequest) -> None:
        self.stats.incr("admitted")

    def on_reply(self, pending: PendingRequest, response: ServeResponse,
                 timing: ReplyTiming | None) -> None:
        if timing is None:
            return
        if not response.ok:
            self.stats.incr("failed")
        if timing.queued is not None:
            self.stats.observe("queued", timing.queued)
        if timing.service is not None:
            self.stats.observe("service", timing.service)
        if timing.queued is not None and timing.service is not None:
            self.stats.observe("total", timing.queued + timing.service)
        self.stats.incr(f"op_{pending.request.op}")
        if timing.batched:
            self.stats.incr("microbatched")


class TracingContextMiddleware(LifecycleMiddleware):
    """Trace-context propagation across the submission boundary.

    Stamps the submitting thread's active span as the request's parent
    (unless the caller provided one explicitly — the cross-process
    handoff a shard worker performs with the coordinator-side span id).
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def on_submit(self, pending: PendingRequest) -> None:
        if pending.parent_span_id is None:
            pending.parent_span_id = self.tracer.current_id()


class ExecutionBackend:
    """What a backend must provide to run under the lifecycle.

    The lifecycle handles admission and reply; the backend owns the
    middle of the pipeline — route, coalesce, dispatch, gather — and
    the domain sections of the stats snapshot.  Subclasses override the
    hooks they need; the defaults are the no-op degenerate case.
    """

    #: Construct the breaker registry even when ``enable_breakers`` is
    #: off (the shard tier needs its per-shard circuits regardless).
    requires_breakers = False

    lifecycle: "RequestLifecycle"

    def bind(self, lifecycle: "RequestLifecycle") -> None:
        """Late construction against the lifecycle's shared registries."""
        self.lifecycle = lifecycle

    def check(self, request: ServeRequest) -> None:
        """Veto a request before admission (e.g. unshardable ops)."""

    def prepare(self, pending: PendingRequest) -> None:
        """Stamp backend-private state before the request enqueues."""

    def boot(self) -> None:
        """Heavy start-up work (spawn processes, install listeners)."""

    def launch(self) -> None:
        """Start consumer threads; the admission queue is open."""

    def shutdown(self, drain: bool, deadline: float) -> None:
        """Stop consumers; the queue is closed (and drained if asked)."""

    def finalize(self, deadline: float) -> None:
        """Tear down listeners/threads; the lifecycle reports stopped."""

    def stats_sections(self) -> dict[str, Any]:
        """The backend-owned sections of the stats snapshot (see
        :func:`repro.runtime.snapshot.build_stats_snapshot`)."""
        return {"sessions": {}, "caches": {}, "pipeline_stages": [],
                "store": {}, "shards": {"count": 0, "alive": 0,
                                        "per_shard": {}}}

    def merged_metrics(self, base: dict[str, Any]) -> dict[str, Any]:
        """The merged metrics-registry view feeding ``metrics_snapshot``."""
        return self.lifecycle.metrics.snapshot()


class RequestLifecycle:
    """One request plane: admission, id allocation, reply, snapshots.

    The lifecycle is deliberately backend-blind: ``submit`` ends with
    the request parked on the admission queue, and the backend's
    consumers carry it to exactly one :meth:`reply`.  Stats, tracing
    and breaker state live here so every backend shares one set of
    registries (and one snapshot shape).
    """

    def __init__(self, config: ServeConfig, backend: ExecutionBackend,
                 clock: Callable[[], float] | None = None) -> None:
        self.config = config
        #: Monotonic clock governing session TTLs, rate-limit refills,
        #: admission retry hints, and breaker cooldowns.  ``None`` means
        #: real time; soak tests inject a
        #: :class:`repro.loadgen.VirtualClock` so hours of simulated
        #: traffic elapse deterministically in seconds.  Latency
        #: *measurement* stays on ``time.perf_counter`` either way —
        #: observed service times are real even under a virtual clock.
        self.clock = time.monotonic if clock is None else clock
        self.queue = AdmissionQueue(config.queue_depth, clock=self.clock)
        self.limiter: RateLimiter | None = None
        if config.rate_limit_capacity > 0:
            self.limiter = RateLimiter(
                config.rate_limit_capacity,
                config.rate_limit_refill_per_second,
                clock=self.clock,
                idle_seconds=config.rate_limit_idle_seconds)
        self.stats = ServerStats()
        self.metrics = MetricsRegistry()
        self.tracer: Tracer | None = None
        if config.obs.enable_tracing:
            self.tracer = Tracer(
                seed=config.seed,
                max_spans=config.obs.max_spans,
                profile_cpu=config.obs.profile_cpu,
                profile_alloc=config.obs.profile_alloc)
        self.breakers: BreakerRegistry | None = None
        if config.enable_breakers or backend.requires_breakers:
            self.breakers = BreakerRegistry(
                failure_threshold=config.breaker_failure_threshold,
                failure_rate_threshold=config.breaker_failure_rate,
                window_size=config.breaker_window,
                cooldown_seconds=config.breaker_cooldown_seconds,
                clock=self.clock)
        self.middlewares: list[LifecycleMiddleware] = []
        if self.tracer is not None:
            self.middlewares.append(TracingContextMiddleware(self.tracer))
        self.middlewares.append(StatsMiddleware(self.stats))
        self._running = False
        self._id_lock = threading.Lock()
        self._next_id = 0
        self.backend = backend
        backend.bind(self)

    # ------------------------------------------------------------------
    # factories (construction stays confined to repro.runtime)
    # ------------------------------------------------------------------
    def make_queue(self, depth: int,
                   clock: Callable[[], float] = time.monotonic
                   ) -> AdmissionQueue:
        """A bounded dispatch queue for backend-internal staging."""
        return AdmissionQueue(depth, clock=clock)

    def make_batcher(self, max_batch: int, deadline_seconds: float,
                     clock: Callable[[], float] = time.monotonic,
                     batchable_fn: Callable[[Any], bool] | None = None
                     ) -> MicroBatcher:
        """A request coalescer (micro-batch or scatter framing)."""
        return MicroBatcher(max_batch, deadline_seconds, clock=clock,
                            batchable_fn=batchable_fn)

    def next_request_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "RequestLifecycle":
        if self._running:
            raise ServeError("server already started")
        self.backend.boot()
        self.queue.reopen()
        self._running = True
        self.backend.launch()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop admitting, then drain or cancel.

        With ``drain`` (default) queued requests are still served;
        otherwise they resolve immediately with a shutdown error —
        silently (``timing=None``): a request the server never began is
        neither a failure nor a latency sample.
        """
        if not self._running:
            return
        self.queue.close()
        if not drain:
            for item in self.queue.drain():
                self.reply(item, ServeResponse(
                    request_id=item.request_id, op=item.request.op,
                    ok=False, error="server stopped before the request "
                    "was served", error_type="ServeError"), timing=None)
        deadline = time.monotonic() + timeout
        self.backend.shutdown(drain, deadline)
        self._running = False
        self.backend.finalize(deadline)

    # ------------------------------------------------------------------
    # the admission edge
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest,
               parent_span_id: str | None = None) -> PendingRequest:
        """Admit ``request`` and return a handle to its future response.

        Raises :class:`~repro.errors.RateLimitError` or
        :class:`~repro.errors.BackpressureError` (both carry
        ``retry_after``) when admission control rejects it.
        """
        if not self._running:
            raise ServeError("server is not running; call start()")
        request.validate()
        self.backend.check(request)
        if self.limiter is not None:
            try:
                self.limiter.admit(request.client_id)
            except ChatGraphError:
                for middleware in self.middlewares:
                    middleware.on_reject(request, "rate_limit")
                raise
        pending = PendingRequest(request, self.next_request_id(),
                                 time.perf_counter())
        if parent_span_id is not None:
            pending.parent_span_id = parent_span_id
        for middleware in self.middlewares:
            middleware.on_submit(pending)
        self.backend.prepare(pending)
        try:
            self.queue.put(pending)
        except ChatGraphError:
            for middleware in self.middlewares:
                middleware.on_reject(request, "backpressure")
            raise
        for middleware in self.middlewares:
            middleware.on_admitted(pending)
        return pending

    def request(self, request: ServeRequest,
                timeout: float | None = None) -> ServeResponse:
        """Submit and wait: the synchronous convenience path."""
        return self.submit(request).result(timeout)

    # ------------------------------------------------------------------
    # the reply edge
    # ------------------------------------------------------------------
    def reply(self, pending: PendingRequest, response: ServeResponse,
              timing: ReplyTiming | None) -> None:
        """Resolve one request, exactly once, with its bookkeeping.

        Every backend path — scalar, micro-batched, gathered from a
        shard, failed over, shed at shutdown — funnels through here, so
        counter and histogram semantics are identical everywhere.
        """
        if timing is not None:
            if timing.queued is not None:
                response.queued_seconds = timing.queued
            if timing.service is not None:
                response.service_seconds = timing.service
        for middleware in self.middlewares:
            middleware.on_reply(pending, response, timing)
        pending._resolve(response)

    def record_service_time(self, seconds: float) -> None:
        """Feed the admission queue's EMA behind backpressure hints.

        Called by backends with the *amortized* per-request cost (a
        coalesced batch contributes ``service / len(batch)``), which is
        why it is explicit rather than folded into :meth:`reply`.
        """
        self.queue.record_service_time(seconds)

    # ------------------------------------------------------------------
    # snapshots (one builder; the facades' shapes cannot drift)
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict[str, Any]:
        from .snapshot import build_stats_snapshot

        return build_stats_snapshot(self, self.backend.stats_sections())

    def metrics_snapshot(self) -> dict[str, Any]:
        from .snapshot import build_metrics_snapshot

        return build_metrics_snapshot(self, self.backend)
