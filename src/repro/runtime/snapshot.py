"""One snapshot builder for every serving facade's report shapes.

``ChatGraphServer.stats()`` and ``ShardedChatGraphServer.stats()`` (and
their ``metrics_snapshot()``) are built here from the lifecycle's shared
registries plus the backend's domain sections, so the two facades'
report shapes *cannot* drift: the lifecycle-owned keys come from one
code path, and a backend that forgets a required section fails loudly
instead of silently shipping a different shape.
"""

from __future__ import annotations

from typing import Any

__all__ = ["REQUIRED_SECTIONS", "build_metrics_snapshot",
           "build_stats_snapshot"]

#: Sections every backend must supply — the single-process server's
#: degenerate values (empty shards map, no per-shard stores) included.
REQUIRED_SECTIONS = ("sessions", "caches", "pipeline_stages", "store",
                     "shards")


def build_stats_snapshot(lifecycle: Any,
                         sections: dict[str, Any]) -> dict[str, Any]:
    """The merged ``stats()`` snapshot: lifecycle + backend sections."""
    missing = [key for key in REQUIRED_SECTIONS if key not in sections]
    if missing:
        raise ValueError(
            f"backend stats_sections() is missing {missing}; every "
            f"backend must supply {list(REQUIRED_SECTIONS)}")
    snapshot = lifecycle.stats.snapshot()
    snapshot["queue"] = {"depth": lifecycle.queue.maxsize,
                         "size": len(lifecycle.queue)}
    snapshot["breakers"] = (lifecycle.breakers.snapshot()
                            if lifecycle.breakers is not None else {})
    snapshot["rate_limiter"] = {
        "clients": len(lifecycle.limiter)
        if lifecycle.limiter is not None else 0}
    snapshot["workers"] = lifecycle.config.workers
    for key in REQUIRED_SECTIONS:
        snapshot[key] = sections[key]
    return snapshot


def build_metrics_snapshot(lifecycle: Any, backend: Any) -> dict[str, Any]:
    """The observability view: stats + merged metrics registries.

    ``backend.merged_metrics(base)`` supplies the registry dump — the
    local backend sets its point-in-time gauges and snapshots its own
    registry; the shard backend merges every worker process's dump into
    the coordinator's (counters sum, histograms merge bucket-wise).
    """
    base = lifecycle.stats_snapshot()
    merged = backend.merged_metrics(base)
    return {
        "counters": {**base["counters"], **merged["counters"]},
        "gauges": merged["gauges"],
        "latency": base["latency"],
        "histograms": merged["histograms"],
        "caches": base["caches"],
        "breakers": base["breakers"],
        "trace": (lifecycle.tracer.stats()
                  if lifecycle.tracer is not None else {}),
    }
