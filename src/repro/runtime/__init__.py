"""The unified request-plane runtime shared by every serving facade.

One :class:`RequestLifecycle` owns the request plane — admit → route →
coalesce → dispatch → gather → reply — with stats/tracing hooks as
middleware (mirroring the StageGraph middleware onion on the execution
plane), over a pluggable :class:`ExecutionBackend`:

* :class:`~repro.runtime.local.LocalBackend` — a worker-thread pool and
  micro-batcher over one in-process :class:`~repro.core.chatgraph.ChatGraph`;
* :class:`~repro.runtime.shard.ShardBackend` — consistent-hash routing,
  scatter/gather and failover over shard worker processes.

:class:`~repro.serve.engine.ChatGraphServer` and
:class:`~repro.shard.coordinator.ShardedChatGraphServer` are thin
facades over this runtime: single-process serving is just the 1-shard
degenerate case, and both report shapes come from one snapshot builder
(:mod:`repro.runtime.snapshot`), so they cannot drift.

Construction of the admission-control primitives (``AdmissionQueue``,
``RateLimiter``, ``BreakerRegistry``, ``MicroBatcher``) is confined to
this package — enforced by ``tests/test_runtime_wiring_lint.py``.
"""

from .lifecycle import (
    ExecutionBackend,
    LifecycleMiddleware,
    ReplyTiming,
    RequestLifecycle,
    StatsMiddleware,
    TracingContextMiddleware,
)
from .local import LocalBackend
from .migration import MigrationPlan, SessionMove, plan_migration
from .shard import ShardBackend
from .snapshot import build_metrics_snapshot, build_stats_snapshot

__all__ = [
    "ExecutionBackend",
    "LifecycleMiddleware",
    "LocalBackend",
    "MigrationPlan",
    "ReplyTiming",
    "RequestLifecycle",
    "SessionMove",
    "ShardBackend",
    "StatsMiddleware",
    "TracingContextMiddleware",
    "build_metrics_snapshot",
    "build_stats_snapshot",
    "plan_migration",
]
