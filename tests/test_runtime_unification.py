"""The unified request-plane runtime: one lifecycle, two facades.

Proves the refactor's contract (see ``repro.runtime``):

* both servers are thin facades over one :class:`RequestLifecycle` —
  the admission queue, rate limiter, stats, metrics and breakers a
  facade exposes *are* the lifecycle's own objects, not copies;
* ``stats()`` / ``metrics_snapshot()`` come from one snapshot builder,
  so the two servers' report shapes cannot drift — asserted as key-set
  equality on live snapshots from both facades, plus the builder
  refusing a backend that omits a required section;
* byte-parity regression: the refactored single-process server still
  produces the exact canonical wire bytes the parity gates
  (``BENCH_PR7``'s scalar-vs-microbatched and ``BENCH_PR9``'s
  single-vs-sharded) are built on, and the 1-shard fleet is the
  degenerate case of the same runtime.

Golden traces are covered by ``test_golden_traces`` (which drives the
same facade); this module adds the cross-facade and cross-config
parity the unification claims.
"""

import pytest

from repro.config import ServeConfig
from repro.core.chatgraph import ChatGraph
from repro.runtime import RequestLifecycle, build_stats_snapshot
from repro.serve import ChatGraphServer
from repro.serve.engine import ServeRequest
from repro.shard.protocol import dumps_canonical, value_to_wire
from repro.testing import CANONICAL_PROMPTS, canonical_graph


@pytest.fixture(scope="module")
def chatgraph():
    return ChatGraph.pretrained(corpus_size=200)


def _canonical_cases():
    return [(text, canonical_graph(kind))
            for __, text, kind in CANONICAL_PROMPTS[:4]]


def _wire_bytes(server, cases):
    out = []
    for text, graph in cases:
        response = server.request(
            ServeRequest(op="ask", text=text, graph=graph))
        assert response.ok, response.error
        out.append(dumps_canonical(value_to_wire("ask", response.value)))
    return out


# ----------------------------------------------------------------------
# one lifecycle under the facade
# ----------------------------------------------------------------------
class TestSharedLifecycle:
    def test_local_facade_exposes_the_lifecycle_objects(self, chatgraph):
        server = ChatGraphServer(chatgraph, ServeConfig(workers=1))
        assert isinstance(server.lifecycle, RequestLifecycle)
        assert server.queue is server.lifecycle.queue
        assert server.limiter is server.lifecycle.limiter
        assert server._stats is server.lifecycle.stats
        assert server.metrics is server.lifecycle.metrics
        assert server.clock is server.lifecycle.clock

    def test_snapshot_builder_rejects_missing_sections(self, chatgraph):
        server = ChatGraphServer(chatgraph, ServeConfig(workers=1))
        with pytest.raises(ValueError, match="missing"):
            build_stats_snapshot(server.lifecycle,
                                 {"sessions": {}, "caches": {}})

    def test_single_process_reports_degenerate_shards(self, chatgraph):
        with ChatGraphServer(chatgraph, ServeConfig(workers=1)) as server:
            stats = server.stats()
        assert stats["shards"] == {"count": 0, "alive": 0,
                                   "per_shard": {}}


# ----------------------------------------------------------------------
# parity fixtures (BENCH_PR7): scalar vs microbatched, same runtime
# ----------------------------------------------------------------------
class TestMicrobatchParity:
    def test_microbatched_bytes_match_scalar(self, chatgraph):
        cases = _canonical_cases()
        scalar_config = ServeConfig(workers=1, enable_caches=False,
                                    queue_depth=64)
        batched_config = ServeConfig(workers=1, enable_caches=False,
                                     queue_depth=64, microbatch_size=4,
                                     microbatch_deadline_seconds=0.02)
        with ChatGraphServer(chatgraph, scalar_config) as server:
            scalar = _wire_bytes(server, cases)
        with ChatGraphServer(chatgraph, batched_config) as server:
            batched = _wire_bytes(server, cases)
        assert scalar == batched

    def test_rerun_is_byte_identical(self, chatgraph):
        cases = _canonical_cases()
        config = ServeConfig(workers=1, queue_depth=64)
        with ChatGraphServer(chatgraph, config) as server:
            first = _wire_bytes(server, cases)
        with ChatGraphServer(chatgraph, config) as server:
            second = _wire_bytes(server, cases)
        assert first == second


# ----------------------------------------------------------------------
# the 1-shard degenerate case (BENCH_PR9 parity, shapes cannot drift)
# ----------------------------------------------------------------------
class TestDegenerateShardParity:
    def test_one_shard_fleet_matches_single_process(self):
        from repro.shard import ShardModelSpec, ShardedChatGraphServer

        cases = _canonical_cases()
        spec = ShardModelSpec(corpus_size=200)
        chatgraph = ChatGraph.pretrained(corpus_size=200)
        single = ChatGraphServer(chatgraph,
                                 ServeConfig(workers=1, queue_depth=64))
        sharded = ShardedChatGraphServer(
            spec, ServeConfig(shards=1, workers=1, queue_depth=64))
        with single, sharded:
            local_bytes = _wire_bytes(single, cases)
            remote_bytes = _wire_bytes(sharded, cases)

            # one snapshot builder: identical report shapes
            local_stats, remote_stats = single.stats(), sharded.stats()
            assert set(local_stats) == set(remote_stats)
            assert (set(single.metrics_snapshot())
                    == set(sharded.metrics_snapshot()))
            for section in ("counters", "latency", "queue",
                            "rate_limiter", "sessions"):
                assert section in local_stats and section in remote_stats

            # both facades run the same lifecycle class
            assert isinstance(sharded.lifecycle, RequestLifecycle)
            assert type(sharded.lifecycle) is type(single.lifecycle)

        # byte parity: the degenerate fleet serves the exact bytes the
        # single-process server does
        assert local_bytes == remote_bytes
