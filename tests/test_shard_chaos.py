"""Kill-a-shard chaos: failover, breaker flow, restart, exact books.

A shard worker is SIGKILLed while a stream of requests is in flight.
The contract: every admitted request still resolves (orphans fail over
along the ring preference), the ``shard:<i>`` breaker trips and
surfaces through ``breaker_opened``, a background restart returns the
fleet to full strength with the breaker reset, and the coordinator's
counters reconcile exactly against the caller's own ledger — a lost or
double-counted request is a bug, not noise.
"""

from __future__ import annotations

import time

import pytest

from repro import ServeConfig, ServeRequest
from repro.shard import ShardModelSpec, ShardedChatGraphServer
from repro.testing.workloads import PROMPTS, bench_graphs

CORPUS = 150
RECOVERY_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def report():
    """One kill-a-shard run; the tests below assert on its ledger."""
    server = ShardedChatGraphServer(
        ShardModelSpec(corpus_size=CORPUS, seed=0),
        ServeConfig(shards=2, workers=1, queue_depth=256,
                    shard_scatter_batch=4))
    graphs = bench_graphs(4)
    n = 30
    requests = [
        ServeRequest(op="ask",
                     text=f"{PROMPTS[i % len(PROMPTS)]} [chaos {i}]",
                     graph=graphs[i % len(graphs)])
        for i in range(n)
    ]
    with server:
        # route to discover which shard owns the first request, then
        # kill that one specifically so in-flight work is orphaned
        victim = server.ring.lookup(
            ShardedChatGraphServer.routing_key(requests[0]))
        pending = []
        for index, request in enumerate(requests):
            if index == 5:
                server.kill_shard(victim)
            pending.append(server.submit(request))
        responses = [item.result(timeout=120.0) for item in pending]
        deadline = time.monotonic() + RECOVERY_TIMEOUT
        while time.monotonic() < deadline:
            if (all(handle.alive for handle in server.handles)
                    and not server.breakers.open_names()):
                break
            time.sleep(0.1)
        stats = server.stats()
        open_after = sorted(server.breakers.open_names())
        handles = [(handle.deaths, handle.restarts)
                   for handle in server.handles]
    return {"n": n, "victim": victim, "responses": responses,
            "stats": stats, "open_after": open_after,
            "handles": handles}


def test_no_request_is_lost(report):
    failed = [r for r in report["responses"] if not r.ok]
    assert not failed, failed[:3]
    assert len(report["responses"]) == report["n"]


def test_death_was_detected_and_breaker_tripped(report):
    counters = report["stats"]["counters"]
    assert counters["shard_deaths"] == 1
    assert counters["breaker_opened"] >= 1
    assert counters["shard_failovers"] >= 1


def test_fleet_recovered(report):
    assert report["open_after"] == []
    assert counters_alive(report) == 2
    victim_deaths, victim_restarts = report["handles"][report["victim"]]
    assert victim_deaths == 1 and victim_restarts >= 1


def counters_alive(report):
    return report["stats"]["shards"]["alive"]


def test_books_reconcile_exactly(report):
    counters = report["stats"]["counters"]
    ops = sum(value for name, value in counters.items()
              if name.startswith("op_"))
    assert counters["admitted"] == report["n"]
    assert ops == report["n"]  # each request resolved exactly once
    assert counters.get("failed", 0) == 0
