"""The length-prefixed canonical-JSON pipe protocol.

Framing (round trips, torn frames, the size cap, clean EOF) and the
request/response wire forms, including the ``value_to_wire``
idempotence the parity gate relies on: a gathered :class:`ShardValue`
re-serializes to the same bytes the worker emitted.
"""

from __future__ import annotations

import io

import pytest

from repro.graphs import fingerprint, social_network
from repro.serve import ServeRequest, ServeResponse
from repro.shard import (
    ShardProtocolError,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    value_to_wire,
    write_frame,
)
from repro.shard.protocol import MAX_FRAME_BYTES, dumps_canonical


def roundtrip(*frames):
    buf = io.BytesIO()
    for frame in frames:
        write_frame(buf, frame)
    buf.seek(0)
    out = [read_frame(buf) for _ in frames]
    assert read_frame(buf) is None  # clean EOF after the last frame
    return out


def test_frame_roundtrip_and_eof():
    frames = [{"type": "hello", "shard": 3},
              {"type": "batch", "items": [{"op": "ask", "text": "hi"}]}]
    assert roundtrip(*frames) == frames


def test_canonical_bytes_are_stable():
    a = dumps_canonical({"b": 1, "a": [2, {"z": None, "y": "s"}]})
    b = dumps_canonical({"a": [2, {"y": "s", "z": None}], "b": 1})
    assert a == b
    assert b" " not in a  # no whitespace: byte-stable across runs


def test_torn_frames_raise():
    buf = io.BytesIO()
    write_frame(buf, {"type": "hello"})
    data = buf.getvalue()
    # torn header
    with pytest.raises(ShardProtocolError):
        read_frame(io.BytesIO(data[:2]))
    # torn body
    with pytest.raises(ShardProtocolError):
        read_frame(io.BytesIO(data[:-3]))


def test_frame_validation():
    # announced length over the cap
    bad = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
    with pytest.raises(ShardProtocolError):
        read_frame(io.BytesIO(bad))
    # valid JSON but not an object with a type
    payload = b"[1,2]"
    framed = len(payload).to_bytes(4, "big") + payload
    with pytest.raises(ShardProtocolError):
        read_frame(io.BytesIO(framed))
    # non-JSON-serializable frame refused at write time
    with pytest.raises(ShardProtocolError):
        write_frame(io.BytesIO(), {"type": "x", "bad": object()})


def test_request_wire_roundtrip():
    graph = social_network(12, 2, seed=5)
    request = ServeRequest(op="ask", text="how many nodes are there",
                           graph=graph, session_id="s-1",
                           client_id="c-9",
                           attachments={"k": "v"})
    wire = request_to_wire(request, 41, parent_span="span-7")
    assert wire["request_id"] == 41
    assert wire["parent_span"] == "span-7"
    back = request_from_wire(wire)
    assert back.op == "ask" and back.text == request.text
    assert back.session_id == "s-1" and back.client_id == "c-9"
    assert back.attachments == {"k": "v"}
    assert fingerprint(back.graph) == fingerprint(graph)


def test_execute_refused_on_the_wire():
    request = ServeRequest(op="execute", text="", session_id="s-1")
    with pytest.raises(ShardProtocolError):
        request_to_wire(request, 1)


def test_response_wire_roundtrip_ask():
    wire = {
        "request_id": 7, "op": "ask", "ok": True, "error": "",
        "error_type": "", "worker": "shard-1/worker-0", "seed": 123,
        "service_seconds": 0.25,
        "value": {"kind": "ask", "answer": "count_nodes: 12",
                  "chain": "count_nodes()", "intent": "count",
                  "graph_type": "social", "retrieved": ["count_nodes"],
                  "used_fallback": False, "degraded": True,
                  "n_steps": 2},
    }
    response = response_from_wire(wire)
    assert response.ok and response.worker == "shard-1/worker-0"
    assert response.value.answer == "count_nodes: 12"
    assert response.value.record.is_degraded is True
    assert response.value.record.n_steps == 2
    # idempotence: the gathered shim re-serializes to identical bytes
    assert dumps_canonical(value_to_wire("ask", response.value)) == \
        dumps_canonical(wire["value"])


def test_response_wire_roundtrip_propose_and_failure():
    wire = {"request_id": 9, "op": "propose", "ok": True,
            "error": "", "error_type": "", "worker": "shard-0/worker-1",
            "seed": 5, "service_seconds": 0.01,
            "value": {"kind": "propose", "chain": "pagerank()",
                      "intent": "rank", "graph_type": "kg",
                      "retrieved": ["pagerank"], "used_fallback": True}}
    response = response_from_wire(wire)
    assert response.value.used_fallback is True
    assert response.value.record is None
    assert dumps_canonical(value_to_wire("propose", response.value)) \
        == dumps_canonical(wire["value"])

    failed = response_from_wire(response_to_wire(ServeResponse(
        request_id=3, op="ask", ok=False, error="boom",
        error_type="ServeError")))
    assert not failed.ok and failed.value is None
    assert failed.error == "boom" and failed.error_type == "ServeError"
