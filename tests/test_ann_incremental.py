"""Incremental ANN maintenance: insert, tombstone delete, compaction.

The parity property at the bottom is the acceptance gate for the store's
index guarantee: after any interleaving of insert/delete/compact, a
final ``compact()`` leaves the index bit-compatible with a fresh
``build()`` over the surviving vectors — same internal structure, same
search hits and distances, same ``distance_computations``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import (
    BruteForceIndex,
    HNSWIndex,
    MRNGIndex,
    TauMGIndex,
    VPTreeIndex,
)
from repro.errors import IndexError_

MUTABLE = [
    ("brute", lambda: BruteForceIndex()),
    ("mrng", lambda: MRNGIndex(max_degree=4, candidate_pool=8,
                               ef_search=8)),
    ("taumg", lambda: TauMGIndex(tau=0.1, max_degree=4,
                                 candidate_pool=8, ef_search=8)),
    ("hnsw", lambda: HNSWIndex(m=4, ef_construction=8, ef_search=8,
                               seed=3)),
]


def make_index(name):
    return dict(MUTABLE)[name]()


def grid_vectors(rng, n, dim=4):
    return rng.integers(-4, 5, size=(n, dim)).astype(np.float64)


# ----------------------------------------------------------------------
# deterministic unit tests
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", [n for n, __ in MUTABLE])
def test_insert_into_unbuilt_index_builds_one_row(name):
    index = make_index(name)
    assert index.insert(np.array([1.0, 2.0, 3.0])) == 0
    assert index.size == 1 and index.live_size == 1
    hits = index.search(np.array([1.0, 2.0, 3.0]), k=1)
    assert hits[0].vector_id == 0 and hits[0].distance == 0.0


@pytest.mark.parametrize("name", [n for n, __ in MUTABLE])
def test_inserted_vectors_are_searchable(name):
    rng = np.random.default_rng(0)
    index = make_index(name)
    index.build(grid_vectors(rng, 10))
    target = np.array([40.0, 40.0, 40.0, 40.0])
    new_id = index.insert(target)
    assert new_id == 10
    hits = index.search(target, k=1)
    assert hits[0].vector_id == new_id and hits[0].distance == 0.0


@pytest.mark.parametrize("name", [n for n, __ in MUTABLE])
def test_deleted_vectors_vanish_from_search(name):
    rng = np.random.default_rng(1)
    data = grid_vectors(rng, 12)
    index = make_index(name)
    index.build(data)
    exact = BruteForceIndex().build(data)
    query = np.zeros(4)
    victim = exact.search(query, k=1)[0].vector_id
    index.delete(victim)
    assert index.live_size == 11
    hits = index.search(query, k=12)
    assert victim not in [h.vector_id for h in hits]
    assert len(hits) == 11  # trimmed to live_size, not k


def test_delete_validation():
    index = BruteForceIndex()
    with pytest.raises(IndexError_):
        index.delete(0)  # not built
    index.build(np.eye(3))
    with pytest.raises(IndexError_):
        index.delete(7)
    index.delete(1)
    with pytest.raises(IndexError_):
        index.delete(1)  # double delete


@pytest.mark.parametrize("name", [n for n, __ in MUTABLE])
def test_compacting_away_everything_resets_to_unbuilt(name):
    index = make_index(name)
    index.build(np.eye(3))
    for vid in range(3):
        index.delete(vid)
    assert index.live_size == 0
    assert index.compact() == {}
    assert index.size == 0
    with pytest.raises(IndexError_):
        index.search(np.zeros(3), k=1)
    # and the empty index accepts new inserts
    assert index.insert(np.array([1.0, 0.0, 0.0])) == 0


def test_compact_id_map_is_order_preserving():
    index = BruteForceIndex().build(np.arange(10.0)[:, None])
    index.delete(2)
    index.delete(7)
    id_map = index.compact()
    assert id_map == {0: 0, 1: 1, 3: 2, 4: 3, 5: 4, 6: 5, 8: 6, 9: 7}
    assert index.n_tombstones == 0


def test_vptree_rejects_incremental_insert():
    index = VPTreeIndex(seed=0).build(np.eye(4))
    with pytest.raises(IndexError_):
        index.insert(np.ones(4))
    # deletes still work (tombstones live in the base class)
    index.delete(0)
    hits = index.search(np.array([1.0, 0, 0, 0]), k=4)
    assert 0 not in [h.vector_id for h in hits]


def test_search_without_tombstones_is_untouched():
    # golden-trace safety: the tombstone filter must not change the
    # no-tombstone code path
    rng = np.random.default_rng(2)
    data = grid_vectors(rng, 30)
    query = np.zeros(4)
    plain = TauMGIndex(max_degree=4, candidate_pool=8,
                       ef_search=8).build(data)
    baseline = [(h.vector_id, h.distance)
                for h in plain.search(query, k=5)]
    count = plain.distance_computations
    again = TauMGIndex(max_degree=4, candidate_pool=8,
                       ef_search=8).build(data)
    assert [(h.vector_id, h.distance)
            for h in again.search(query, k=5)] == baseline
    assert again.distance_computations == count


# ----------------------------------------------------------------------
# the parity property
# ----------------------------------------------------------------------
def structure_of(index):
    """The index's internal structure, normalized for comparison."""
    if isinstance(index, HNSWIndex):
        return {"layers": index.layers, "entry": index.entry_point,
                "max_level": index.max_level}
    if hasattr(index, "neighbors"):
        return {"neighbors": index.neighbors,
                "entry": index.entry_point}
    return {}


def run_script(index, script, rng):
    """Interleave inserts/deletes/compacts; returns live vectors."""
    vectors = []  # by current id; None = deleted
    for step in script:
        if step == "insert" or not any(v is not None for v in vectors):
            vec = grid_vectors(rng, 1)[0]
            vid = index.insert(vec)
            assert vid == len(vectors)
            vectors.append(vec)
        elif step == "delete":
            live = [i for i, v in enumerate(vectors) if v is not None]
            victim = live[int(rng.integers(len(live)))]
            index.delete(victim)
            vectors[victim] = None
        else:  # compact
            id_map = index.compact()
            survivors = [v for v in vectors if v is not None]
            assert sorted(id_map.values()) == list(range(len(survivors)))
            vectors = survivors
    return [v for v in vectors if v is not None]


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from([n for n, __ in MUTABLE]),
    script=st.lists(
        st.sampled_from(["insert", "insert", "delete", "compact"]),
        min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_incremental_then_compact_matches_fresh_build(name, script, seed):
    rng = np.random.default_rng(seed)
    index = make_index(name)
    live = run_script(index, script, rng)
    index.compact()
    if not live:
        assert index.size == 0
        return

    fresh = make_index(name)
    fresh.build(np.vstack(live))

    assert np.array_equal(index._data, fresh._data)
    assert structure_of(index) == structure_of(fresh)

    queries = grid_vectors(np.random.default_rng(seed + 1), 3)
    index.reset_counters()
    fresh.reset_counters()
    for query in queries:
        got = [(h.vector_id, h.distance)
               for h in index.search(query, k=3)]
        want = [(h.vector_id, h.distance)
                for h in fresh.search(query, k=3)]
        assert got == want
    assert index.distance_computations == fresh.distance_computations
