"""Tests for the repro.serve service runtime.

Covers the ISSUE-1 acceptance points: concurrent results are
bit-identical to serial ones under a fixed seed, cache hit/miss
counters match expectations, a full admission queue rejects with
backpressure instead of blocking, plus the session store, rate
limiter, histogram and cache primitives.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import ChatGraph, ChatGraphServer, ServeConfig, ServeRequest
from repro.errors import (
    BackpressureError,
    RateLimitError,
    ServeError,
    SessionError,
)
from repro.graphs import fingerprint, knowledge_graph, social_network
from repro.serve import (
    AdmissionQueue,
    LRUCache,
    LatencyHistogram,
    PipelineCaches,
    RateLimiter,
    SessionStore,
    TokenBucket,
)
from repro.serve.bench import build_workload


@pytest.fixture(scope="module")
def serve_chatgraph():
    """A private ChatGraph: serve tests attach caches to it freely."""
    return ChatGraph.pretrained(corpus_size=300, seed=0)


@pytest.fixture()
def social_graph_small():
    return social_network(30, 3, seed=1)


def make_server(chatgraph, **overrides) -> ChatGraphServer:
    defaults = dict(workers=2, queue_depth=32, enable_caches=True)
    defaults.update(overrides)
    return ChatGraphServer(chatgraph, ServeConfig(**defaults))


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_put_get_and_eviction(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1        # refreshes recency
        cache.put("c", 3)                 # evicts b (least recent)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_hit_miss_counters(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_get_or_compute(self):
        cache = LRUCache(maxsize=4)
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1

    def test_concurrent_access_is_safe(self):
        cache = LRUCache(maxsize=16)
        errors = []

        def worker(worker_id):
            try:
                for i in range(200):
                    cache.put((worker_id, i % 20), i)
                    cache.get((worker_id, (i + 3) % 20))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, refill_per_second=1.0,
                             clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(1.0)
        clock.advance(1.5)
        assert bucket.try_acquire()

    def test_zero_refill_never_recovers(self):
        bucket = TokenBucket(capacity=1, refill_per_second=0.0,
                             clock=FakeClock())
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == float("inf")


class TestLatencyHistogram:
    def test_quantiles_and_summary(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.008, 0.1):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.1)
        assert summary["p50"] <= summary["p95"] <= summary["max"]
        # bucketed estimate: within a factor of two of the true median
        assert 0.002 <= summary["p50"] <= 0.008

    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.summary()["count"] == 0


class TestAdmissionQueue:
    def test_put_get_fifo(self):
        queue = AdmissionQueue(maxsize=4)
        queue.put("a")
        queue.put("b")
        assert queue.get() == "a"
        assert queue.get() == "b"

    def test_full_queue_rejects_with_retry_after(self):
        queue = AdmissionQueue(maxsize=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(BackpressureError) as info:
            queue.put("c")
        assert info.value.retry_after > 0
        assert info.value.depth == 2
        assert len(queue) == 2  # rejected item was not enqueued

    def test_closed_queue_rejects(self):
        queue = AdmissionQueue(maxsize=2)
        queue.close()
        with pytest.raises(ServeError):
            queue.put("a")

    def test_get_timeout_returns_none(self):
        queue = AdmissionQueue(maxsize=2)
        assert queue.get(timeout=0.01) is None


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRateLimiter:
    def test_per_client_buckets(self):
        limiter = RateLimiter(capacity=2, refill_per_second=0.0,
                              clock=FakeClock())
        limiter.admit("alice")
        limiter.admit("alice")
        with pytest.raises(RateLimitError) as info:
            limiter.admit("alice")
        assert info.value.client_id == "alice"
        limiter.admit("bob")  # separate bucket

    def test_idle_full_buckets_are_evicted(self):
        # regression: one bucket per client-id ever seen grew forever
        clock = FakeClock()
        limiter = RateLimiter(capacity=2, refill_per_second=1.0,
                              clock=clock, idle_seconds=10.0)
        for client in ("a", "b", "c"):
            limiter.admit(client)
        assert len(limiter) == 3
        clock.advance(11.0)  # all idle and refilled back to capacity
        limiter.admit("d")   # triggers the sweep
        assert len(limiter) == 1  # only d survives

    def test_active_and_indebted_buckets_survive_sweep(self):
        clock = FakeClock()
        limiter = RateLimiter(capacity=2, refill_per_second=0.0,
                              clock=clock, idle_seconds=10.0)
        limiter.admit("debtor")  # no refill: bucket can never fill back
        limiter.admit("debtor")  # fully drained
        clock.advance(6.0)
        limiter.admit("active")
        clock.advance(5.0)       # debtor idle 11s, active idle 5s
        limiter.admit("fresh")
        # the sweep ran, but neither bucket qualified: active was seen
        # recently, debtor still owes a token (dropping it would forgive
        # the debt on recreation)
        assert len(limiter) == 3
        with pytest.raises(RateLimitError):
            limiter.admit("debtor")

    def test_sweep_rate_limited_to_idle_interval(self):
        clock = FakeClock()
        limiter = RateLimiter(capacity=2, refill_per_second=1.0,
                              clock=clock, idle_seconds=10.0)
        limiter.admit("a")
        clock.advance(5.0)
        limiter.admit("b")  # 5s since construction: no sweep yet
        assert len(limiter) == 2


# ----------------------------------------------------------------------
# session store
# ----------------------------------------------------------------------
class TestSessionStore:
    def test_get_or_create_reuses(self, serve_chatgraph):
        store = SessionStore(serve_chatgraph, ttl_seconds=60,
                             max_sessions=4)
        first = store.get_or_create("s1")
        second = store.get_or_create("s1")
        assert first.session is second.session
        assert len(store) == 1
        assert second.requests == 2

    def test_ttl_eviction(self, serve_chatgraph):
        clock = FakeClock()
        store = SessionStore(serve_chatgraph, ttl_seconds=10,
                             max_sessions=4, clock=clock)
        store.get_or_create("old")
        clock.advance(11)
        store.get_or_create("fresh")
        assert "old" not in store
        assert store.stats()["evicted_ttl"] == 1

    def test_lru_eviction_at_capacity(self, serve_chatgraph):
        store = SessionStore(serve_chatgraph, ttl_seconds=60,
                             max_sessions=2)
        store.get_or_create("a")
        store.get_or_create("b")
        store.get_or_create("a")        # refresh a; b becomes LRU
        store.get_or_create("c")        # evicts b
        assert "a" in store and "c" in store and "b" not in store
        assert store.stats()["evicted_lru"] == 1

    def test_get_missing_raises(self, serve_chatgraph):
        store = SessionStore(serve_chatgraph)
        with pytest.raises(SessionError):
            store.get("nope")
        assert not store.drop("nope")


# ----------------------------------------------------------------------
# server: behavior
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_propose_execute_ask_roundtrip(self, serve_chatgraph,
                                           social_graph_small):
        with make_server(serve_chatgraph) as server:
            proposal = server.propose("write a brief report for G",
                                      graph=social_graph_small)
            assert proposal.ok
            assert proposal.value.chain.api_names()[-1] == \
                "generate_report"
            executed = server.execute(proposal.value)
            assert executed.ok
            assert executed.value.answer.startswith("Graph report")
            asked = server.ask("write a brief report for G",
                               graph=social_graph_small)
            assert asked.ok
            assert asked.value.answer == executed.value.answer

    def test_submit_requires_running_server(self, serve_chatgraph):
        server = make_server(serve_chatgraph)
        with pytest.raises(ServeError):
            server.propose("hello")

    def test_invalid_request_rejected(self, serve_chatgraph):
        with make_server(serve_chatgraph) as server:
            with pytest.raises(ServeError):
                server.request(ServeRequest(op="explode", text="x"))
            with pytest.raises(ServeError):
                server.request(ServeRequest(op="propose"))

    def test_failing_request_resolves_with_error(self, serve_chatgraph):
        with make_server(serve_chatgraph) as server:
            # validation happens before queueing, so exercise the worker
            # failure path with a poisoned pipeline_result
            class Boom:
                @property
                def chain(self):
                    raise RuntimeError("boom")

                prompt = None

            bad = ServeRequest(op="execute", pipeline_result=Boom())
            result = server.request(bad)
            assert not result.ok
            assert "boom" in result.error
            assert result.error_type == "RuntimeError"
            # the worker survived and keeps serving
            follow_up = server.propose("count the nodes")
            assert follow_up.ok

    def test_stats_snapshot_shape(self, serve_chatgraph,
                                  social_graph_small):
        with make_server(serve_chatgraph) as server:
            server.propose("summarize the graph",
                           graph=social_graph_small)
            snapshot = server.stats()
        assert snapshot["counters"]["admitted"] == 1
        assert snapshot["counters"]["op_propose"] == 1
        assert "queued" in snapshot["latency"]
        assert "retrieval" in snapshot["latency"]
        assert "generate" in snapshot["latency"]
        assert snapshot["queue"]["depth"] == 32
        assert snapshot["workers"] == 2
        assert "retrieval" in snapshot["caches"]
        # robustness introspection: breaker states + live limiter size
        assert snapshot["breakers"] == {}  # healthy run: no traffic yet
        assert snapshot["rate_limiter"]["clients"] >= 0

    def test_robustness_installed_only_while_running(
            self, serve_chatgraph):
        server = make_server(serve_chatgraph, step_max_retries=2)
        assert serve_chatgraph.robustness_policy is None
        with server:
            assert serve_chatgraph.robustness_policy is server.policy
            assert serve_chatgraph.breakers is server.breakers
            listeners = serve_chatgraph.executor.listeners()
            assert server._stats.on_execution_event in listeners
        assert serve_chatgraph.robustness_policy is None
        assert serve_chatgraph.breakers is None
        assert server._stats.on_execution_event not in \
            serve_chatgraph.executor.listeners()

    def test_session_dialog_accumulates(self, serve_chatgraph,
                                        social_graph_small):
        with make_server(serve_chatgraph) as server:
            server.ask("how many nodes does G have",
                       graph=social_graph_small, session_id="dlg")
            server.ask("find the communities", session_id="dlg")
            entry = server.sessions.get("dlg")
            user_turns = [turn for turn in entry.session.history
                          if turn.role == "user"]
            assert len(user_turns) == 2
            assert len(server.sessions) == 1

    def test_stop_without_drain_cancels_queued(self, serve_chatgraph):
        server = make_server(serve_chatgraph, workers=1, queue_depth=8,
                             backend_latency_seconds=0.2)
        server.start()
        pending = [server.submit(ServeRequest(op="propose",
                                              text="count the nodes"))
                   for __ in range(4)]
        server.stop(drain=False)
        responses = [item.result(timeout=5.0) for item in pending]
        cancelled = [r for r in responses if not r.ok]
        assert cancelled, "queued requests should be cancelled"
        assert all("stopped" in r.error for r in cancelled)


class TestBackpressure:
    def test_full_queue_rejects_not_blocks(self, serve_chatgraph):
        server = make_server(serve_chatgraph, workers=1, queue_depth=1,
                             backend_latency_seconds=0.3)
        with server:
            first = server.submit(ServeRequest(op="propose",
                                               text="count the nodes"))
            time.sleep(0.1)   # let the worker pick up the first request
            server.submit(ServeRequest(op="propose",
                                       text="find communities"))
            started = time.perf_counter()
            with pytest.raises(BackpressureError) as info:
                server.submit(ServeRequest(op="propose",
                                           text="summarize G"))
            elapsed = time.perf_counter() - started
            assert elapsed < 0.1, "rejection must not block"
            assert info.value.retry_after > 0
            assert first.result(timeout=10.0).ok
        assert server.stats()["counters"]["rejected_backpressure"] == 1

    def test_rate_limited_client(self, serve_chatgraph):
        server = make_server(serve_chatgraph, rate_limit_capacity=2,
                             rate_limit_refill_per_second=0.0)
        with server:
            server.propose("count the nodes", client_id="greedy")
            server.propose("count the nodes", client_id="greedy")
            with pytest.raises(RateLimitError):
                server.propose("count the nodes", client_id="greedy")
            # other clients are unaffected
            assert server.propose("count the nodes",
                                  client_id="polite").ok
        assert server.stats()["counters"]["rejected_rate_limit"] == 1


# ----------------------------------------------------------------------
# server: caching
# ----------------------------------------------------------------------
class TestServeCaches:
    def test_cache_counters_match_expectations(self, serve_chatgraph,
                                               social_graph_small):
        with make_server(serve_chatgraph, workers=1) as server:
            for __ in range(3):
                server.propose("write a brief report for G",
                               graph=social_graph_small)
            stats = server.caches.stats()
        # identical text+routing: 1 miss then 2 retrieval hits
        assert stats["retrieval"]["misses"] == 1
        assert stats["retrieval"]["hits"] == 2
        # identical graph: 1 miss then 2 sequentialize hits
        assert stats["sequences"]["misses"] == 1
        assert stats["sequences"]["hits"] == 2
        # the embedder is only consulted on the retrieval miss
        assert stats["embeddings"]["misses"] == 1
        assert stats["embeddings"]["hits"] == 0

    def test_cached_results_identical(self, serve_chatgraph,
                                      social_graph_small):
        with make_server(serve_chatgraph, workers=1) as server:
            cold = server.propose("write a brief report for G",
                                  graph=social_graph_small)
            warm = server.propose("write a brief report for G",
                                  graph=social_graph_small)
        assert cold.value.chain.api_names() == \
            warm.value.chain.api_names()
        assert cold.value.retrieved == warm.value.retrieved
        assert cold.value.sequences.feature_counts == \
            warm.value.sequences.feature_counts

    def test_caches_disabled(self, serve_chatgraph, social_graph_small):
        with make_server(serve_chatgraph,
                         enable_caches=False) as server:
            response = server.propose("write a brief report for G",
                                      graph=social_graph_small)
            assert response.ok
            assert server.caches is None
            assert server.stats()["caches"] == {}

    def test_graph_fingerprint_is_content_keyed(self):
        a = social_network(20, 3, seed=5)
        b = social_network(20, 3, seed=5)
        c = social_network(20, 3, seed=6)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)


# ----------------------------------------------------------------------
# server: concurrency + determinism (ISSUE acceptance)
# ----------------------------------------------------------------------
class TestConcurrencyDeterminism:
    def test_concurrent_equals_serial(self, serve_chatgraph):
        """>= 8 threads of propose/ask match serial bit-for-bit."""
        workload = build_workload(16, n_graphs=4)
        asks = [ServeRequest(op="ask", text=request.text,
                             graph=request.graph)
                for request in workload[:6]]

        def run(server, submit_concurrently):
            with server:
                if submit_concurrently:
                    pending = []
                    barrier = threading.Barrier(8)
                    lock = threading.Lock()

                    def submit_slice(requests):
                        barrier.wait()
                        for request in requests:
                            handle = server.submit(request)
                            with lock:
                                pending.append((request, handle))

                    everything = list(workload) + list(asks)
                    slices = [everything[i::8] for i in range(8)]
                    threads = [threading.Thread(target=submit_slice,
                                                args=(part,))
                               for part in slices]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    resolved = {id(request): handle.result(60.0)
                                for request, handle in pending}
                    ordered = [resolved[id(request)]
                               for request in everything]
                else:
                    ordered = [server.request(request)
                               for request in list(workload) + list(asks)]
            return ordered

        serial = run(make_server(serve_chatgraph, workers=1), False)
        concurrent = run(make_server(serve_chatgraph, workers=8), True)

        assert all(r.ok for r in serial)
        assert all(r.ok for r in concurrent)
        for left, right in zip(serial, concurrent):
            assert left.seed == right.seed
            if left.op == "propose":
                assert left.value.chain.api_names() == \
                    right.value.chain.api_names()
                assert left.value.retrieved == right.value.retrieved
                assert left.value.intent == right.value.intent
            else:
                assert left.value.answer == right.value.answer
                assert left.value.chain.api_names() == \
                    right.value.chain.api_names()

    def test_concurrent_sessions_are_isolated(self, serve_chatgraph):
        graphs = {f"s{i}": knowledge_graph(20 + i, 60, seed=i)
                  for i in range(8)}
        with make_server(serve_chatgraph, workers=8) as server:
            threads = []
            answers = {}
            lock = threading.Lock()

            def chat(session_id):
                response = server.ask("clean the knowledge graph",
                                      graph=graphs[session_id],
                                      session_id=session_id)
                with lock:
                    answers[session_id] = response

            for session_id in graphs:
                thread = threading.Thread(target=chat,
                                          args=(session_id,))
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join()
            assert len(server.sessions) == 8
        assert all(response.ok for response in answers.values())
        # each session answered against its own graph: serial replay on
        # a fresh server must reproduce each answer exactly
        with make_server(serve_chatgraph, workers=1) as server:
            for session_id, graph in graphs.items():
                replay = server.ask("clean the knowledge graph",
                                    graph=graph, session_id=session_id)
                assert replay.value.answer == \
                    answers[session_id].value.answer


class TestDeterministicSeeding:
    def test_seed_is_content_keyed(self):
        request = ServeRequest(op="propose", text="hello",
                               client_id="c1")
        same = ServeRequest(op="propose", text="hello", client_id="c1")
        other = ServeRequest(op="propose", text="world", client_id="c1")
        assert request.content_seed(0) == same.content_seed(0)
        assert request.content_seed(0) != other.content_seed(0)
        assert request.content_seed(0) != request.content_seed(1)

    def test_request_seed_reaches_execution_context(self, serve_chatgraph,
                                                    social_graph_small):
        with make_server(serve_chatgraph, workers=1) as server:
            response = server.ask("summarize the graph",
                                  graph=social_graph_small)
            assert response.seed == ServeRequest(
                op="ask", text="summarize the graph").content_seed(0)
            assert response.value.prompt.attachments[
                "request_seed"] == response.seed


class TestStatsUnderLoad:
    """Snapshots must stay responsive and self-consistent while
    workers are mid-request (e.g. sleeping in the backend pause)."""

    def test_stats_responsive_while_backend_sleeps(self,
                                                   serve_chatgraph):
        workload = build_workload(6, n_graphs=2)
        server = ChatGraphServer(
            serve_chatgraph,
            ServeConfig(workers=2, queue_depth=32, enable_caches=False,
                        backend_latency_seconds=0.4))
        with server:
            pending = [server.submit(request) for request in workload]
            time.sleep(0.1)  # workers are now asleep in the backend pause
            began = time.perf_counter()
            snapshot = server.stats()
            metrics = server.metrics_snapshot()
            elapsed = time.perf_counter() - began
            responses = [item.result(timeout=120.0) for item in pending]
        # snapshots render from copied state: never blocked behind a
        # worker's 0.4s pause, and every histogram is self-consistent
        assert elapsed < 0.25
        assert all(r.ok for r in responses)
        for summary in snapshot["latency"].values():
            if summary["count"]:
                assert summary["min"] <= summary["mean"] <= summary["max"]
                assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert server.stats()["counters"]["op_propose"] == len(workload)
        assert isinstance(metrics, dict)

    def test_histogram_summary_consistent_under_concurrent_observe(self):
        histogram = LatencyHistogram()
        stop = threading.Event()

        def hammer():
            value = 1e-4
            while not stop.is_set():
                histogram.observe(value)
                value = value * 1.7 if value < 1.0 else 1e-4

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(300):
                summary = histogram.summary()
                if summary["count"] == 0:
                    continue
                # a torn snapshot shows e.g. count>0 with mean/max from
                # an older point in time; a single-lock copy cannot
                assert summary["min"] <= summary["mean"] <= \
                    summary["max"] * (1 + 1e-9)
                assert summary["p50"] <= summary["p95"] <= \
                    summary["p99"] <= summary["max"] * (1 + 1e-9)
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestOverlapExecuteLane:
    """``microbatch_overlap_execute``: the worker hands the per-item
    tail of a served batch to a finisher thread so it can start
    collecting and decoding the next micro-batch immediately."""

    def _run(self, chatgraph, workload, **config):
        server = ChatGraphServer(
            chatgraph, ServeConfig(workers=1, enable_caches=False,
                                   queue_depth=64, microbatch_size=4,
                                   microbatch_deadline_seconds=0.02,
                                   **config))
        with server:
            pending = [server.submit(request) for request in workload]
            responses = [item.result(timeout=120.0) for item in pending]
        return server, responses

    def test_overlap_responses_identical_and_counters_reconcile(
            self, serve_chatgraph):
        workload = build_workload(8, n_graphs=2)
        workload += [ServeRequest(op="ask", text=r.text, graph=r.graph)
                     for r in workload[:4]]
        __, serial = self._run(serve_chatgraph, workload)
        server, overlapped = self._run(serve_chatgraph, workload,
                                       microbatch_overlap_execute=True)
        assert server._finish_queue is not None
        assert all(r.ok for r in serial)
        assert all(r.ok for r in overlapped)
        for left, right in zip(serial, overlapped):
            assert left.seed == right.seed
            if left.op == "propose":
                assert left.value.chain.api_names() == \
                    right.value.chain.api_names()
            else:
                assert left.value.answer == right.value.answer
        counters = server.stats()["counters"]
        assert counters["op_propose"] == 8
        assert counters["op_ask"] == 4
        assert counters.get("microbatched", 0) >= 2
        # the finisher thread was joined and cleared on stop
        assert server._finish_thread is None

    def test_overlap_off_keeps_inline_finish(self, serve_chatgraph):
        server, responses = self._run(serve_chatgraph,
                                      build_workload(4, n_graphs=2))
        assert all(r.ok for r in responses)
        assert server._finish_queue is None
