"""Tests for the API retrieval module."""

import pytest

from repro.apis import APIRegistry, Category
from repro.config import RetrievalConfig
from repro.errors import IndexError_
from repro.retrieval import APIRetriever


class TestRetrieval:
    def test_relevant_api_first(self, registry):
        retriever = APIRetriever(registry)
        names = retriever.retrieve_names(
            "detect the communities of my social network", k=3)
        assert "detect_communities" in names

    def test_toxicity_query(self, registry):
        retriever = APIRetriever(registry)
        names = retriever.retrieve_names("predict molecule toxicity", k=3)
        assert names[0] == "predict_toxicity"

    def test_k_respected(self, registry):
        retriever = APIRetriever(registry)
        assert len(retriever.retrieve("count nodes", k=5)) == 5

    def test_ranks_sequential(self, registry):
        retriever = APIRetriever(registry)
        hits = retriever.retrieve("clean the knowledge graph", k=4)
        assert [h.rank for h in hits] == [0, 1, 2, 3]
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)

    def test_category_filter(self, registry):
        retriever = APIRetriever(registry)
        hits = retriever.retrieve("summarize the graph", k=5,
                                  categories=(Category.MOLECULE,))
        for hit in hits:
            assert registry.get(hit.name).category == Category.MOLECULE

    def test_default_k_from_config(self, registry):
        retriever = APIRetriever(registry,
                                 RetrievalConfig(top_k_apis=3))
        assert len(retriever.retrieve("anything graph related")) == 3

    def test_empty_registry_rejected(self):
        with pytest.raises(IndexError_):
            APIRetriever(APIRegistry())

    def test_exact_vs_ann_agreement(self, registry):
        """tau-MG retrieval matches brute force on most queries (Def. 2)."""
        retriever = APIRetriever(registry)
        queries = [
            "count the nodes", "find influencers", "molecular formula",
            "detect incorrect facts", "shortest path between two nodes",
            "community detection", "solubility of the compound",
            "report about the graph",
        ]
        agree = 0
        for query in queries:
            ann = set(retriever.retrieve_names(query, k=5))
            exact = {h.name for h in retriever.exact_retrieve(query, k=5)}
            agree += len(ann & exact) / 5
        assert agree / len(queries) > 0.85

    def test_small_registry_uses_brute_force(self):
        from repro.ann import BruteForceIndex
        registry = APIRegistry()
        from repro.apis import APISpec
        for i in range(4):
            registry.register(APISpec(
                f"api_{i}", f"api number {i} does thing {i}",
                Category.GENERIC, lambda ctx: None))
        retriever = APIRetriever(registry)
        assert isinstance(retriever.index, BruteForceIndex)
        assert len(retriever.retrieve_names("thing 2", k=2)) == 2
