"""Tests for the API retrieval module."""

import numpy as np
import pytest

from repro.apis import APIRegistry, Category
from repro.config import RetrievalConfig
from repro.errors import IndexError_
from repro.retrieval import APIRetriever


class TestRetrieval:
    def test_relevant_api_first(self, registry):
        retriever = APIRetriever(registry)
        names = retriever.retrieve_names(
            "detect the communities of my social network", k=3)
        assert "detect_communities" in names

    def test_toxicity_query(self, registry):
        retriever = APIRetriever(registry)
        names = retriever.retrieve_names("predict molecule toxicity", k=3)
        assert names[0] == "predict_toxicity"

    def test_k_respected(self, registry):
        retriever = APIRetriever(registry)
        assert len(retriever.retrieve("count nodes", k=5)) == 5

    def test_ranks_sequential(self, registry):
        retriever = APIRetriever(registry)
        hits = retriever.retrieve("clean the knowledge graph", k=4)
        assert [h.rank for h in hits] == [0, 1, 2, 3]
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)

    def test_category_filter(self, registry):
        retriever = APIRetriever(registry)
        hits = retriever.retrieve("summarize the graph", k=5,
                                  categories=(Category.MOLECULE,))
        for hit in hits:
            assert registry.get(hit.name).category == Category.MOLECULE

    def test_default_k_from_config(self, registry):
        retriever = APIRetriever(registry,
                                 RetrievalConfig(top_k_apis=3))
        assert len(retriever.retrieve("anything graph related")) == 3

    def test_empty_registry_rejected(self):
        with pytest.raises(IndexError_):
            APIRetriever(APIRegistry())

    def test_exact_vs_ann_agreement(self, registry):
        """tau-MG retrieval matches brute force on most queries (Def. 2)."""
        retriever = APIRetriever(registry)
        queries = [
            "count the nodes", "find influencers", "molecular formula",
            "detect incorrect facts", "shortest path between two nodes",
            "community detection", "solubility of the compound",
            "report about the graph",
        ]
        agree = 0
        for query in queries:
            ann = set(retriever.retrieve_names(query, k=5))
            exact = {h.name for h in retriever.exact_retrieve(query, k=5)}
            agree += len(ann & exact) / 5
        assert agree / len(queries) > 0.85

    def test_small_registry_uses_brute_force(self):
        from repro.ann import BruteForceIndex
        registry = APIRegistry()
        from repro.apis import APISpec
        for i in range(4):
            registry.register(APISpec(
                f"api_{i}", f"api number {i} does thing {i}",
                Category.GENERIC, lambda ctx: None))
        retriever = APIRetriever(registry)
        assert isinstance(retriever.index, BruteForceIndex)
        assert len(retriever.retrieve_names("thing 2", k=2)) == 2


class TestRetrieveBatch:
    def test_matches_scalar_retrieve(self, registry):
        retriever = APIRetriever(registry)
        texts = ["count the nodes", "find influencers",
                 "community detection", "count the nodes"]
        categories_per = [None, (Category.SOCIAL, Category.GENERIC),
                          None, (Category.MOLECULE, Category.REPORT)]
        batch = retriever.retrieve_batch(texts, k=4,
                                         categories_per=categories_per)
        for i, text in enumerate(texts):
            assert batch[i] == retriever.retrieve(
                text, k=4, categories=categories_per[i])

    def test_categories_length_mismatch_rejected(self, registry):
        retriever = APIRetriever(registry)
        with pytest.raises(IndexError_):
            retriever.retrieve_batch(["a", "b"], categories_per=[None])

    def test_embed_cache_hits_on_repeat(self, registry):
        from repro.serve import LRUCache
        cache = LRUCache(maxsize=32)
        retriever = APIRetriever(registry, embed_cache=cache)
        texts = ["count the nodes", "find influencers"]
        retriever.retrieve_batch(texts, k=3)
        before = cache.stats().hits
        retriever.retrieve_batch(texts, k=3)
        assert cache.stats().hits >= before + len(texts)

    def test_cached_vectors_never_mutated(self, registry):
        """Cached embeddings are shared references (no defensive copy);
        every retrieval path must leave them bit-identical."""
        from repro.serve import LRUCache
        cache = LRUCache(maxsize=32)
        retriever = APIRetriever(registry, embed_cache=cache)
        texts = ["count the nodes", "find influencers",
                 "community detection"]
        first = retriever.retrieve_batch(texts, k=3)
        snapshots = {text: cache.get(text).copy() for text in texts}
        retriever.retrieve_batch(texts, k=3)
        for text in texts:
            retriever.retrieve(text, k=3)
            retriever.retrieve(text, k=3,
                               categories=(Category.GENERIC,
                                           Category.SOCIAL,
                                           Category.REPORT))
        for text in texts:
            cached = cache.get(text)
            assert cached is not None
            np.testing.assert_array_equal(cached, snapshots[text])
        assert retriever.retrieve_batch(texts, k=3) == first
