"""Lint: stage names must not be hand-mirrored outside the stage graph.

The stage graph in ``repro/core/stages.py`` is the single definition of
the pipeline's stages.  Before the stage-graph refactor, the serve
layer mirrored the stage list by hand (``_PIPELINE_STAGES``) and
drifted silently when stages changed.  This lint walks every module
under ``src/repro`` except the definition site and rejects:

* any string literal equal to ``"stage:<name>"`` for a canonical stage
  name (span names are the tracing middleware's job);
* any list/tuple/set literal whose string elements include two or more
  canonical stage names (a hand-written stage list).

Single coincidental key literals (``"retrieval"`` as a cache-bundle
field, ``"graph_type"`` as a report key) are deliberately tolerated —
the drift hazard is the *list*, not the word.
"""

import ast
from pathlib import Path

from repro.core.stages import CANONICAL_STAGE_NAMES

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
DEFINITION_SITE = SRC / "core" / "stages.py"

SPAN_LITERALS = {f"stage:{name}" for name in CANONICAL_STAGE_NAMES}
STAGE_NAMES = set(CANONICAL_STAGE_NAMES)


def iter_source_files():
    return sorted(path for path in SRC.rglob("*.py")
                  if path != DEFINITION_SITE)


def violations_in(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, str) and \
                node.value in SPAN_LITERALS:
            found.append((node.lineno,
                          f"span-name literal {node.value!r}"))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            names = {element.value for element in node.elts
                     if isinstance(element, ast.Constant)
                     and isinstance(element.value, str)
                     and element.value in STAGE_NAMES}
            if len(names) >= 2:
                found.append((node.lineno,
                              f"hand-written stage list {sorted(names)}"))
    return found


def test_source_files_exist():
    files = iter_source_files()
    assert len(files) > 50  # sanity: we are really walking the tree
    assert DEFINITION_SITE.exists()


def test_no_stage_name_literals_outside_the_graph_definition():
    problems = []
    for path in iter_source_files():
        for lineno, message in violations_in(path):
            problems.append(
                f"{path.relative_to(SRC.parent.parent)}:{lineno}: "
                f"{message}")
    assert not problems, (
        "stage names are defined once, in repro/core/stages.py; derive "
        "stage lists from StageGraph.stage_names or PipelineResult."
        "timings instead of mirroring them:\n" + "\n".join(problems))


def test_lint_catches_a_planted_violation(tmp_path):
    planted = tmp_path / "bad.py"
    planted.write_text(
        "STAGES = ('intent', 'graph_type', 'retrieval')\n"
        "SPAN = 'stage:generate'\n", encoding="utf-8")
    found = violations_in(planted)
    assert len(found) == 2
