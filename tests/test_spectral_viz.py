"""Tests for spectral partitioning, the viz module and new catalog hooks."""

import pytest

from repro.algorithms import (
    fiedler_vector,
    modularity,
    spectral_bisection,
    spectral_communities,
)
from repro.apis import APIChain, ChainContext, ChainExecutor, ChainNode
from repro.errors import GraphError
from repro.graphs import (
    Graph,
    complete_graph,
    path_graph,
    social_network,
    star_graph,
)
from repro import viz


def barbell() -> Graph:
    """Two K4s joined by one edge — the canonical bisection target."""
    g = Graph()
    for u, v in complete_graph(4).edges():
        g.add_edge(u, v)
        g.add_edge(u + 10, v + 10)
    g.add_edge(0, 10)
    return g


class TestSpectral:
    def test_fiedler_signs_split_barbell(self):
        values = fiedler_vector(barbell())
        left = {n for n, v in values.items() if v < 0}
        assert left in ({0, 1, 2, 3}, {10, 11, 12, 13})

    def test_fiedler_needs_connected(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        with pytest.raises(GraphError):
            fiedler_vector(g)

    def test_fiedler_needs_two_nodes(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(GraphError):
            fiedler_vector(g)

    def test_bisection_recovers_barbell(self):
        left, right = spectral_bisection(barbell())
        assert {frozenset(left), frozenset(right)} == \
            {frozenset({0, 1, 2, 3}), frozenset({10, 11, 12, 13})}

    def test_bisection_balanced_on_path(self):
        left, right = spectral_bisection(path_graph(10))
        assert abs(len(left) - len(right)) <= 2

    def test_communities_planted(self):
        g = social_network(45, 3, p_in=0.5, p_out=0.01, seed=6)
        parts = spectral_communities(g, k=3)
        assert len(parts) == 3
        assert modularity(g, parts) > 0.4

    def test_communities_cover_all(self):
        g = social_network(30, 2, seed=1)
        parts = spectral_communities(g, k=2)
        assert set().union(*parts) == set(g.nodes())

    def test_communities_disconnected_uses_components(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        parts = spectral_communities(g, k=2)
        assert sorted(map(len, parts)) == [2, 2]

    def test_bad_k(self):
        with pytest.raises(GraphError):
            spectral_communities(path_graph(3), k=0)

    def test_empty_graph(self):
        assert spectral_communities(Graph(), k=2) == []

    def test_api_spectral_method(self, registry):
        executor = ChainExecutor(registry)
        g = social_network(30, 2, p_in=0.4, p_out=0.02, seed=2)
        chain = APIChain([ChainNode("detect_communities",
                                    {"method": "spectral", "k": 2})])
        result = executor.execute(chain, ChainContext(graph=g)).final_result
        assert result["method"] == "spectral"
        assert result["n_communities"] == 2


class TestViz:
    def test_adjacency_matrix_marks(self):
        g = path_graph(3)
        art = viz.render_adjacency(g)
        lines = art.splitlines()
        assert len(lines) == 3
        assert "\\" in lines[0] and "#" in lines[0]

    def test_adjacency_truncation(self):
        g = complete_graph(30)
        art = viz.render_adjacency(g, max_nodes=5)
        assert "more nodes not shown" in art

    def test_degree_histogram_bars(self):
        art = viz.render_degree_histogram(star_graph(5))
        assert "degree" in art
        assert "#" in art
        assert viz.render_degree_histogram(Graph()) == "(empty graph)"

    def test_communities_render(self):
        g = social_network(24, 2, p_in=0.5, p_out=0.01, seed=3)
        art = viz.render_communities(g)
        assert "communities" in art
        assert "[0]" in art

    def test_summary_card(self):
        g = social_network(10, 2, seed=0)
        card = viz.render_graph_summary_card(g)
        assert "10 nodes" in card


class TestCliShow:
    def test_show_variants(self, chatgraph):
        import io
        from repro.cli import ChatCli
        cli = ChatCli(chatgraph, out=io.StringIO())
        cli.handle("/demo social")
        for what in ("", "adj", "degrees", "comms"):
            cli.handle(f"/show {what}".strip())
        output = cli.out.getvalue()
        assert "degree" in output
        assert "communities" in output

    def test_show_without_graph_errors(self, chatgraph):
        import io
        from repro.cli import ChatCli
        cli = ChatCli(chatgraph, out=io.StringIO())
        cli.handle("/show")
        assert "error:" in cli.out.getvalue()


class TestInferEntityTypesApi:
    def test_api_infers(self, registry):
        from repro.kb import Triple, TripleStore
        store = TripleStore()
        for entity, etype in (("alice", "person"), ("bob", "person"),
                              ("acme", "organization")):
            store.set_entity_type(entity, etype)
        store.add(Triple("alice", "works_at", "acme"))
        store.add(Triple("bob", "works_at", "acme"))
        store.add(Triple("carol", "works_at", "acme"))
        executor = ChainExecutor(registry)
        context = ChainContext(graph=store.to_graph())
        chain = APIChain([ChainNode("infer_entity_types")])
        result = executor.execute(chain, context).final_result
        assert result["n_inferred"] == 1
        assert result["entities"]["carol"]["type"] == "person"
