"""Tests for graph views (ego/subgraph) and summary statistics."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graphs import (
    DiGraph,
    Graph,
    complete_graph,
    degree_histogram,
    density,
    ego_graph,
    induced_subgraph,
    path_graph,
    star_graph,
    summarize,
)


class TestEgoGraph:
    def test_radius_zero(self):
        g = path_graph(5)
        ego = ego_graph(g, 2, radius=0)
        assert set(ego.nodes()) == {2}

    def test_radius_one(self):
        g = star_graph(5)
        ego = ego_graph(g, 0, radius=1)
        assert ego.number_of_nodes() == 6

    def test_radius_two_on_path(self):
        g = path_graph(7)
        ego = ego_graph(g, 3, radius=2)
        assert set(ego.nodes()) == {1, 2, 3, 4, 5}

    def test_directed_follows_out_edges(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("c", "a")])
        ego = ego_graph(d, "a", radius=1)
        assert set(ego.nodes()) == {"a", "b"}

    def test_missing_center_raises(self):
        with pytest.raises(NodeNotFoundError):
            ego_graph(Graph(), "x", 1)

    def test_negative_radius_raises(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            ego_graph(g, 0, -1)

    def test_induced_subgraph_alias(self):
        g = complete_graph(4)
        sub = induced_subgraph(g, [0, 1])
        assert sub.number_of_edges() == 1


class TestDensity:
    def test_empty_and_single(self):
        assert density(Graph()) == 0.0
        g = Graph()
        g.add_node(1)
        assert density(g) == 0.0

    def test_complete_density_one(self):
        assert density(complete_graph(5)) == 1.0

    def test_directed_density(self):
        d = DiGraph()
        d.add_nodes([1, 2])
        d.add_edge(1, 2)
        assert density(d) == 0.5


class TestSummary:
    def test_degree_histogram(self):
        g = star_graph(3)
        assert degree_histogram(g) == {3: 1, 1: 3}

    def test_summarize_fields(self):
        g = complete_graph(4)
        g.set_node_attr(0, "color", "red")
        s = summarize(g)
        assert s.n_nodes == 4
        assert s.n_edges == 6
        assert s.max_degree == 3
        assert s.mean_degree == 3.0
        assert s.n_isolated == 0
        assert "color" in s.node_labels
        assert not s.directed

    def test_summarize_isolated(self):
        g = Graph()
        g.add_nodes([1, 2])
        s = summarize(g)
        assert s.n_isolated == 2

    def test_as_dict_json_ready(self):
        import json
        json.dumps(summarize(complete_graph(3)).as_dict())
