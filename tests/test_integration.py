"""End-to-end integration tests across modules (the Fig. 1 data flow)."""

import pytest

from repro import ChatGraph, ChatGraphConfig, ChatSession
from repro.config import LLMConfig, SequencerConfig
from repro.chem import parse_smiles
from repro.graphs import knowledge_graph, social_network
from repro.kb import TripleStore, corrupt_store


class TestFullPipeline:
    def test_understanding_report_mentions_communities(self, chatgraph):
        g = social_network(50, 4, p_in=0.3, p_out=0.02, seed=9)
        response = chatgraph.ask("write a brief report for G", graph=g)
        assert response.record.ok
        assert "detect communities" in response.answer
        assert "modularity" in response.answer

    def test_comparison_finds_known_similar(self, chatgraph):
        mol = parse_smiles("CC(=O)Oc1ccccc1C(=O)O", name="query")
        response = chatgraph.ask("what molecules are similar to G",
                                 graph=mol.to_graph(), molecule=mol)
        hits = response.results()["similar_molecules"]
        assert hits[0]["name"] == "aspirin"

    def test_cleaning_recovers_injected_noise(self, chatgraph):
        kg = knowledge_graph(50, 200, seed=11)
        store = TripleStore.from_graph(kg)
        noisy, injected, removed_true = corrupt_store(
            store, corruption_rate=0.06, removal_rate=0.0, seed=5)
        response = chatgraph.ask("clean G", graph=noisy.to_graph())
        assert response.record.ok
        removed = response.results()["remove_flagged_edges"]["removed"]
        removed_set = set(map(tuple, removed))
        injected_set = {(t.head, t.tail) for t in injected}
        assert injected_set <= removed_set

    def test_monitoring_event_completeness(self, chatgraph):
        g = social_network(30, 3, seed=4)
        response = chatgraph.ask("write a brief report for G", graph=g)
        kinds = [e.kind for e in response.monitor.events]
        n_steps = len(response.chain)
        assert kinds.count("step_started") == n_steps
        assert kinds.count("step_finished") == n_steps
        assert kinds[0] == "chain_started"
        assert kinds[-1] == "chain_finished"

    def test_multi_turn_session(self, chatgraph):
        session = ChatSession(chatgraph)
        g = social_network(30, 3, seed=2)
        session.upload_graph(g)
        first = session.send("count the nodes")
        second = session.send("detect the communities of this network")
        assert first.record.ok and second.record.ok
        assert len(session.history) >= 5

    def test_suggested_question_answerable(self, chatgraph):
        session = ChatSession(chatgraph)
        g = social_network(30, 3, seed=2)
        session.upload_graph(g)
        for question in session.suggestions(limit=2):
            response = session.send(question)
            assert response.record is not None


class TestConfigEffects:
    """Every Fig.-3 parameter group has an observable effect (E11)."""

    def test_path_length_changes_sequences(self):
        g = social_network(25, 3, seed=1)
        from repro.sequencer import GraphSequentializer
        short = GraphSequentializer(
            SequencerConfig(path_length=1)).sequentialize(g)
        long = GraphSequentializer(
            SequencerConfig(path_length=2)).sequentialize(g)
        assert long.cover_stats.max_path_length > \
            short.cover_stats.max_path_length

    def test_multi_level_toggle(self):
        g = social_network(25, 3, p_in=0.4, seed=1)
        from repro.sequencer import GraphSequentializer
        on = GraphSequentializer(
            SequencerConfig(multi_level=True)).sequentialize(g)
        off = GraphSequentializer(
            SequencerConfig(multi_level=False)).sequentialize(g)
        assert on.super_sequences and not off.super_sequences

    def test_top_k_changes_retrieval(self, chatgraph):
        a = chatgraph.retriever.retrieve_names("find communities", k=2)
        b = chatgraph.retriever.retrieve_names("find communities", k=6)
        assert len(a) == 2 and len(b) == 6

    def test_model_preset_selectable(self):
        config = ChatGraphConfig(llm=LLMConfig(model="moss-sim"))
        cg = ChatGraph(config=config)
        assert cg.model is not None

    def test_max_chain_length_caps_generation(self):
        config = ChatGraphConfig(llm=LLMConfig(max_chain_length=2))
        cg = ChatGraph.pretrained(config=config, corpus_size=150, seed=2)
        g = social_network(20, 2, seed=0)
        result = cg.propose("write a brief report for G", g)
        assert len(result.chain) <= 2 or result.used_fallback


class TestErrorRecovery:
    def test_graphless_prompt_answers_gracefully(self, chatgraph):
        response = chatgraph.ask("count the nodes")
        # no graph: the step fails but the dialog survives
        assert isinstance(response.answer, str)
        assert response.answer

    def test_empty_graph_prompt(self, chatgraph):
        from repro.graphs import Graph
        g = Graph()
        g.add_node(0)
        response = chatgraph.ask("write a brief report for G", graph=g)
        assert isinstance(response.answer, str)
