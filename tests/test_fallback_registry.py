"""One fallback registry: serve layer and pipeline can never drift."""

from repro.config import ObsConfig, ServeConfig
from repro.core.fallbacks import FALLBACKS, FallbackRegistry
from repro.core.pipeline import (
    DEFAULT_FALLBACK,
    FALLBACK_CHAINS,
    ChatPipeline,
)
from repro.core.stages import GenerateStage, RepairStage
from repro.llm.prompts import Prompt
from repro.serve import ChatGraphServer


class TestSingleSourceOfTruth:
    def test_pipeline_aliases_are_the_registry_objects(self):
        """The legacy names alias the registry's own tables (identity,
        not copies) — mutating one mutates the other, so the two views
        cannot drift apart."""
        assert FALLBACK_CHAINS is FALLBACKS.chains
        assert DEFAULT_FALLBACK == FALLBACKS.default

    def test_repair_stage_consults_the_one_registry(self, chatgraph):
        repair = next(stage for stage in chatgraph.pipeline.graph
                      if isinstance(stage, RepairStage))
        assert repair.fallbacks is FALLBACKS
        assert chatgraph.pipeline.fallbacks is FALLBACKS

    def test_legacy_lookup_delegates(self):
        for (graph_type, intent), names in FALLBACKS.items():
            assert ChatPipeline._fallback(graph_type, intent) == names
        assert ChatPipeline._fallback("unknown-type", "unknown-intent") \
            == FALLBACKS.default

    def test_register_is_visible_through_every_view(self):
        registry = FallbackRegistry(chains={}, default=("generate_report",))
        registry.register("social", "compare", ("graph_summary",))
        assert registry.chain_for("social", "compare") == \
            ("graph_summary",)
        assert registry.chain_for("social", "other") == \
            ("generate_report",)
        assert registry.chain_for(None, "compare") == \
            ("generate_report",)

    def test_served_fallback_equals_pipeline_fallback(self, chatgraph,
                                                      social_graph,
                                                      monkeypatch):
        """A repaired prompt produces the exact chain the registry (and
        the direct pipeline) dictates, no matter which layer serves it.
        Generation is forced to emit an unknown API so the repair stage
        deterministically takes over on both paths."""
        generate = next(stage for stage in chatgraph.pipeline.graph
                        if isinstance(stage, GenerateStage))

        def bad_run(ctx):
            ctx["names"] = ("definitely_not_an_api",)

        monkeypatch.setattr(generate, "run", bad_run)
        monkeypatch.setattr(generate, "run_batch",
                            lambda ctxs: [bad_run(c) for c in ctxs])
        nonsense = "zzz qqq xxx yyy"
        direct = chatgraph.pipeline.process(Prompt(nonsense, social_graph))
        assert direct.used_fallback
        config = ServeConfig(workers=1, seed=0,
                             obs=ObsConfig(enable_tracing=False))
        with ChatGraphServer(chatgraph, config) as server:
            served = server.propose(nonsense, graph=social_graph)
        assert served.ok
        assert served.value.used_fallback
        expected = FALLBACKS.chain_for(direct.graph_type, direct.intent)
        assert tuple(direct.chain.api_names()) == expected
        assert tuple(served.value.chain.api_names()) == expected
