"""Tests for the concrete API catalog (every category)."""

import pytest

from repro.apis import APIChain, ChainContext, ChainExecutor
from repro.chem import parse_smiles
from repro.errors import APIError, ChainExecutionError
from repro.graphs import complete_graph, path_graph, social_network
from repro.kb import TripleStore, corrupt_store


@pytest.fixture()
def executor(registry):
    return ChainExecutor(registry)


def run_one(executor, api_name, context, **params):
    from repro.apis import ChainNode
    chain = APIChain([ChainNode(api_name, dict(params))])
    record = executor.execute(chain, context)
    return record.final_result


class TestGenericApis:
    def test_counts(self, executor, social_graph):
        ctx = ChainContext(graph=social_graph)
        assert run_one(executor, "count_nodes", ctx) == 40
        assert run_one(executor, "count_edges", ctx) == \
            social_graph.number_of_edges()

    def test_summary(self, executor, social_graph):
        summary = run_one(executor, "graph_summary",
                          ChainContext(graph=social_graph))
        assert summary["n_nodes"] == 40
        assert "density" in summary

    def test_density_and_distribution(self, executor):
        ctx = ChainContext(graph=complete_graph(4))
        assert run_one(executor, "graph_density", ctx) == 1.0
        assert run_one(executor, "degree_distribution", ctx) == {3: 4}

    def test_connectivity(self, executor):
        from repro.graphs import Graph
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        result = run_one(executor, "connectivity", ChainContext(graph=g))
        assert result["connected"] is False
        assert result["n_components"] == 2

    def test_diameter(self, executor):
        assert run_one(executor, "graph_diameter",
                       ChainContext(graph=path_graph(5))) == 4

    def test_shortest_path(self, executor):
        result = run_one(executor, "find_shortest_path",
                         ChainContext(graph=path_graph(4)),
                         source=0, target=3)
        assert result == [0, 1, 2, 3]

    def test_shortest_path_missing_params(self, executor):
        with pytest.raises(ChainExecutionError):
            run_one(executor, "find_shortest_path",
                    ChainContext(graph=path_graph(3)))

    def test_rankings(self, executor, social_graph):
        ctx = ChainContext(graph=social_graph)
        top = run_one(executor, "rank_pagerank", ctx, top=3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1]
        top_deg = run_one(executor, "rank_degree", ctx, top=2)
        assert len(top_deg) == 2
        top_btw = run_one(executor, "rank_betweenness", ctx, top=2)
        assert len(top_btw) == 2

    def test_kcore_and_motifs(self, executor):
        ctx = ChainContext(graph=complete_graph(5))
        result = run_one(executor, "kcore_decomposition", ctx)
        assert result == {"max_core": 4, "core_size": 5}
        motifs = run_one(executor, "motif_profile", ctx)
        assert motifs["max_clique"] == 5

    def test_no_graph_fails(self, executor):
        with pytest.raises(ChainExecutionError):
            run_one(executor, "count_nodes", ChainContext())


class TestSocialApis:
    def test_detect_communities(self, executor, social_graph):
        result = run_one(executor, "detect_communities",
                         ChainContext(graph=social_graph))
        assert result["n_communities"] >= 2
        assert result["modularity"] > 0.2
        assert sum(result["sizes"]) == 40

    def test_detect_communities_greedy(self, executor, social_graph):
        result = run_one(executor, "detect_communities",
                         ChainContext(graph=social_graph),
                         method="greedy_modularity")
        assert result["method"] == "greedy_modularity"

    def test_bad_method(self, executor, social_graph):
        with pytest.raises(ChainExecutionError):
            run_one(executor, "detect_communities",
                    ChainContext(graph=social_graph), method="nope")

    def test_find_influencers(self, executor, social_graph):
        result = run_one(executor, "find_influencers",
                         ChainContext(graph=social_graph), top=3)
        assert len(result) == 3
        assert result[0]["name"].startswith("user_")

    def test_social_connectivity(self, executor):
        from repro.graphs import Graph
        g = complete_graph(3)
        h = Graph()
        for u, v in g.edges():
            h.add_edge(u, v)
            h.add_edge(u + 10, v + 10)
        h.add_edge(0, 10)
        result = run_one(executor, "social_connectivity",
                         ChainContext(graph=h))
        assert result["n_bridges"] == 1
        assert set(result["cut_members"]) == {0, 10}

    def test_community_overlap(self, executor, social_graph):
        result = run_one(executor, "community_overlap",
                         ChainContext(graph=social_graph))
        assert 0.0 <= result["pairwise_agreement"] <= 1.0


class TestMoleculeApis:
    def test_formula_from_graph(self, executor):
        mol = parse_smiles("CCO")
        result = run_one(executor, "molecular_formula",
                         ChainContext(graph=mol.to_graph()))
        assert result == "C2H6O"

    def test_formula_from_attachment(self, executor):
        ctx = ChainContext(extras={"molecule": "c1ccccc1"})
        assert run_one(executor, "molecular_formula", ctx) == "C6H6"

    def test_describe(self, executor):
        mol = parse_smiles("CC(=O)Oc1ccccc1C(=O)O")
        result = run_one(executor, "describe_molecule",
                         ChainContext(graph=mol.to_graph()))
        assert result["formula"] == "C9H8O4"
        assert result["rings"] == 1

    def test_toxicity_and_solubility(self, executor):
        mol = parse_smiles("Cc1c(N(=O)=O)cc(N(=O)=O)cc1N(=O)=O")
        ctx = ChainContext(graph=mol.to_graph())
        tox = run_one(executor, "predict_toxicity", ctx)
        assert tox["class"] == "high"
        sol = run_one(executor, "predict_solubility", ctx)
        assert "logS" in sol

    def test_druglikeness(self, executor):
        mol = parse_smiles("CCO")
        result = run_one(executor, "druglikeness",
                         ChainContext(graph=mol.to_graph()))
        assert result["lipinski_violations"] == 0

    def test_similarity_needs_database(self, executor):
        mol = parse_smiles("CCO")
        with pytest.raises(ChainExecutionError):
            run_one(executor, "similar_molecules",
                    ChainContext(graph=mol.to_graph()))

    def test_similarity_search(self, executor, molecule_db):
        mol = parse_smiles("CCO")
        ctx = ChainContext(graph=mol.to_graph(), database=molecule_db)
        hits = run_one(executor, "similar_molecules", ctx, k=2)
        assert len(hits) == 2
        assert hits[0]["name"] == "ethanol"

    def test_non_molecule_graph_rejected(self, executor, social_graph):
        with pytest.raises(ChainExecutionError):
            run_one(executor, "molecular_formula",
                    ChainContext(graph=social_graph))


class TestKnowledgeAndEditApis:
    @pytest.fixture()
    def noisy_context(self, kg_graph):
        store = TripleStore.from_graph(kg_graph)
        noisy, injected, __ = corrupt_store(store, 0.08, 0.0, seed=1)
        return ChainContext(graph=noisy.to_graph()), injected

    def test_knowledge_profile(self, executor, kg_graph):
        result = run_one(executor, "knowledge_profile",
                         ChainContext(graph=kg_graph))
        assert result["n_facts"] == kg_graph.number_of_edges()
        assert "person" in result["entity_types"]

    def test_mine_rules(self, executor, kg_graph):
        result = run_one(executor, "mine_rules",
                         ChainContext(graph=kg_graph))
        assert result["type_signatures"]

    def test_detection_finds_injected(self, executor, noisy_context):
        ctx, injected = noisy_context
        findings = run_one(executor, "detect_incorrect_edges", ctx)
        flagged = {(f["head"], f["relation"], f["tail"]) for f in findings}
        truth = {(t.head, t.relation, t.tail) for t in injected}
        assert truth <= flagged

    def test_remove_requires_detection(self, executor, kg_graph):
        with pytest.raises(ChainExecutionError):
            run_one(executor, "remove_flagged_edges",
                    ChainContext(graph=kg_graph))

    def test_detect_then_remove(self, executor, noisy_context):
        ctx, injected = noisy_context
        before = ctx.graph.number_of_edges()
        chain = APIChain.from_names(["detect_incorrect_edges",
                                     "remove_flagged_edges"])
        record = executor.execute(chain, ctx)
        removed = record.final_result["n_removed"]
        assert removed == len(injected)
        assert ctx.graph.number_of_edges() == before - removed

    def test_confirmation_can_decline(self, executor, noisy_context):
        ctx, __ = noisy_context
        ctx.confirm = lambda question, payload: False
        from repro.apis import ChainNode
        chain = APIChain([
            ChainNode("detect_incorrect_edges"),
            ChainNode("remove_flagged_edges", {"confirm_each": True}),
        ])
        record = executor.execute(chain, ctx)
        assert record.final_result["n_removed"] == 0
        assert record.final_result["skipped"]

    def test_explicit_edge_edits(self, executor):
        from repro.graphs import Graph
        g = Graph()
        g.add_edge("a", "b")
        ctx = ChainContext(graph=g)
        run_one(executor, "remove_edge", ctx, source="a", target="b")
        assert not ctx.graph.has_edge("a", "b")
        run_one(executor, "add_edge", ctx, source="a", target="c")
        assert ctx.graph.has_edge("a", "c")

    def test_export_graph(self, executor, kg_graph):
        doc = run_one(executor, "export_graph",
                      ChainContext(graph=kg_graph))
        assert doc["directed"] is True
        assert len(doc["edges"]) == kg_graph.number_of_edges()


class TestReportApis:
    def test_predict_graph_type(self, executor, social_graph, kg_graph):
        result = run_one(executor, "predict_graph_type",
                         ChainContext(graph=social_graph))
        assert result["graph_type"] == "social"
        result2 = run_one(executor, "predict_graph_type",
                          ChainContext(graph=kg_graph))
        assert result2["graph_type"] == "knowledge"

    def test_report_needs_prior_steps(self, executor, social_graph):
        with pytest.raises(ChainExecutionError):
            run_one(executor, "generate_report",
                    ChainContext(graph=social_graph))

    def test_report_composes_sections(self, executor, social_graph):
        chain = APIChain.from_names([
            "predict_graph_type", "graph_summary", "generate_report"])
        record = executor.execute(chain, ChainContext(graph=social_graph))
        report = record.final_result
        assert "Graph report" in report
        assert "predict graph type" in report
        assert "graph summary" in report

    def test_report_custom_title(self, executor, social_graph):
        from repro.apis import ChainNode
        chain = APIChain([
            ChainNode("graph_summary"),
            ChainNode("generate_report", {"title": "My Title"}),
        ])
        record = executor.execute(chain, ChainContext(graph=social_graph))
        assert record.final_result.startswith("My Title")
