"""Tests for the monitored chain executor."""

import pytest

from repro.apis import (
    APIChain,
    APIRegistry,
    APISpec,
    Category,
    ChainContext,
    ChainExecutor,
    ChainNode,
)
from repro.errors import ChainExecutionError


@pytest.fixture()
def toy_registry():
    registry = APIRegistry()
    registry.register(APISpec(
        "ok_api", "always works", Category.GENERIC, lambda ctx: "fine"))
    registry.register(APISpec(
        "echo_api", "echoes its param", Category.GENERIC,
        lambda ctx, value=None: value, params={"value": None}))
    registry.register(APISpec(
        "boom_api", "always fails", Category.GENERIC,
        lambda ctx: (_ for _ in ()).throw(RuntimeError("boom"))))
    registry.register(APISpec(
        "reads_previous", "reads the previous result", Category.GENERIC,
        lambda ctx: ctx.latest("ok_api")))
    return registry


class TestExecution:
    def test_linear_execution(self, toy_registry):
        executor = ChainExecutor(toy_registry)
        record = executor.execute(APIChain.from_names(["ok_api"]),
                                  ChainContext())
        assert record.ok
        assert record.final_result == "fine"
        assert record.steps[0].seconds >= 0

    def test_params_forwarded(self, toy_registry):
        executor = ChainExecutor(toy_registry)
        chain = APIChain([ChainNode("echo_api", {"value": 99})])
        record = executor.execute(chain, ChainContext())
        assert record.final_result == 99

    def test_context_carries_results(self, toy_registry):
        executor = ChainExecutor(toy_registry)
        chain = APIChain.from_names(["ok_api", "reads_previous"])
        record = executor.execute(chain, ChainContext())
        assert record.final_result == "fine"

    def test_results_by_name(self, toy_registry):
        executor = ChainExecutor(toy_registry)
        record = executor.execute(
            APIChain.from_names(["ok_api", "echo_api"]), ChainContext())
        assert record.results_by_name() == {"ok_api": "fine",
                                            "echo_api": None}

    def test_failure_raises_by_default(self, toy_registry):
        executor = ChainExecutor(toy_registry)
        with pytest.raises(ChainExecutionError):
            executor.execute(APIChain.from_names(["boom_api"]),
                             ChainContext())

    def test_failure_continues_when_asked(self, toy_registry):
        executor = ChainExecutor(toy_registry)
        record = executor.execute(
            APIChain.from_names(["boom_api", "ok_api"]), ChainContext(),
            stop_on_error=False)
        assert not record.ok
        assert record.steps[0].error == "boom"
        assert record.steps[1].ok
        assert record.final_result == "fine"

    def test_failed_step_leaves_no_context_entry(self, toy_registry):
        context = ChainContext()
        executor = ChainExecutor(toy_registry)
        record = executor.execute(
            APIChain.from_names(["ok_api", "boom_api", "ok_api"]),
            context, stop_on_error=False)
        # only the successful steps write into the shared context
        assert sorted(context.results) == [0, 2]
        assert 1 not in context.step_names
        assert context.latest("boom_api") is None
        assert record.degraded[0].index == 1

    def test_final_result_skips_failed_steps(self, toy_registry):
        executor = ChainExecutor(toy_registry)
        record = executor.execute(
            APIChain.from_names(["ok_api", "boom_api"]), ChainContext(),
            stop_on_error=False)
        # the last *successful* step wins, not the last step
        assert not record.steps[-1].ok
        assert record.final_result == "fine"

    def test_continue_on_error_with_retries(self, toy_registry):
        from repro.apis import ExecutionPolicy, StepPolicy

        context = ChainContext()
        policy = ExecutionPolicy(default=StepPolicy(
            max_retries=2, backoff_base_seconds=0.0))
        executor = ChainExecutor(toy_registry, policy=policy,
                                 sleep=lambda s: None)
        record = executor.execute(
            APIChain.from_names(["boom_api", "ok_api"]), context,
            stop_on_error=False)
        assert record.steps[0].attempts == 3
        assert record.degraded[0].reason == "retries_exhausted"
        assert 0 not in context.results  # retries exhausted -> no entry
        assert record.final_result == "fine"


class TestEvents:
    def test_event_stream(self, toy_registry):
        events = []
        executor = ChainExecutor(toy_registry)
        executor.add_listener(events.append)
        executor.execute(APIChain.from_names(["ok_api", "ok_api"]),
                         ChainContext())
        kinds = [e.kind for e in events]
        assert kinds == ["chain_started", "step_started", "step_finished",
                         "step_started", "step_finished", "chain_finished"]

    def test_failure_events(self, toy_registry):
        events = []
        executor = ChainExecutor(toy_registry)
        executor.add_listener(events.append)
        with pytest.raises(ChainExecutionError):
            executor.execute(APIChain.from_names(["boom_api"]),
                             ChainContext())
        kinds = [e.kind for e in events]
        assert "step_failed" in kinds and "chain_failed" in kinds

    def test_remove_listener(self, toy_registry):
        events = []
        executor = ChainExecutor(toy_registry)
        executor.add_listener(events.append)
        executor.remove_listener(events.append)
        executor.execute(APIChain.from_names(["ok_api"]), ChainContext())
        assert events == []

    def test_event_render(self, toy_registry):
        events = []
        executor = ChainExecutor(toy_registry)
        executor.add_listener(events.append)
        executor.execute(APIChain.from_names(["ok_api"]), ChainContext())
        text = events[1].render()
        assert "step_started" in text and "ok_api" in text

    def test_listener_may_remove_itself_mid_emit(self, toy_registry):
        # regression: _emit used to iterate the live listener list, so a
        # listener unsubscribing during fan-out skipped its successor
        executor = ChainExecutor(toy_registry)
        first_seen, second_seen = [], []

        def one_shot(event):
            first_seen.append(event.kind)
            executor.remove_listener(one_shot)

        executor.add_listener(one_shot)
        executor.add_listener(lambda e: second_seen.append(e.kind))
        executor.execute(APIChain.from_names(["ok_api"]), ChainContext())
        assert first_seen == ["chain_started"]
        assert second_seen == ["chain_started", "step_started",
                               "step_finished", "chain_finished"]


class TestContext:
    def test_ask_defaults_to_approve(self):
        assert ChainContext().ask("ok?", None) is True

    def test_ask_uses_callback(self):
        asked = []

        def deny(question, payload):
            asked.append(question)
            return False

        context = ChainContext(confirm=deny)
        assert context.ask("sure?", {"x": 1}) is False
        assert asked == ["sure?"]

    def test_latest_returns_most_recent(self):
        context = ChainContext()
        context.results = {0: "old", 2: "new"}
        context.step_names = {0: "api_x", 2: "api_x"}
        assert context.latest("api_x") == "new"
        assert context.latest("missing") is None
