"""Batched ANN search vs the scalar reference paths.

``search_batch`` must be a *pure performance change*: for every index
class the batched kernels return bit-identical hits (same ids, same
float distances, same order) and the same ``distance_computations``
count as searching each query one at a time with ``use_batched`` off.
"""

import numpy as np
import pytest

from repro.ann import (
    BruteForceIndex,
    HNSWIndex,
    MRNGIndex,
    TauMGIndex,
    stable_topk,
)
from repro.errors import IndexError_

INDEX_CLASSES = [BruteForceIndex, MRNGIndex, TauMGIndex, HNSWIndex]


def _make(index_cls):
    if index_cls is HNSWIndex:
        return index_cls(seed=0)
    return index_cls()


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(300, 16))


@pytest.fixture(scope="module")
def tied_data():
    """Every point duplicated 10x: distance ties everywhere."""
    rng = np.random.default_rng(11)
    return np.repeat(rng.normal(size=(40, 8)), 10, axis=0)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(8)
    return rng.normal(size=(24, 16))


def _scalar_reference(index, queries, k):
    """Per-query scalar search with the batched kernels forced off."""
    index.use_batched = False
    try:
        return [index.search(q, k=k) for q in queries]
    finally:
        index.use_batched = True


@pytest.mark.parametrize("index_cls", INDEX_CLASSES)
@pytest.mark.parametrize("k", [1, 5, 32])
def test_batched_bit_identical_to_scalar(data, queries, index_cls, k):
    index = _make(index_cls).build(data)
    want = _scalar_reference(index, queries, k)
    got = index.search_batch(queries, k=k)
    assert got == want  # frozen dataclasses: ids AND float distances


@pytest.mark.parametrize("index_cls", INDEX_CLASSES)
def test_distance_computation_parity(data, queries, index_cls):
    """Batched search does the same counted work as the scalar path."""
    index = _make(index_cls).build(data)
    base = index.distance_computations
    _scalar_reference(index, queries, 8)
    scalar_work = index.distance_computations - base

    base = index.distance_computations
    index.search_batch(queries, k=8)
    batched_work = index.distance_computations - base
    assert batched_work == scalar_work


@pytest.mark.parametrize("index_cls", INDEX_CLASSES)
def test_batched_identical_under_ties(tied_data, index_cls):
    """Tie-heavy data: tie-breaking must match the scalar path exactly."""
    index = _make(index_cls).build(tied_data)
    rng = np.random.default_rng(12)
    queries = tied_data[rng.integers(0, len(tied_data), size=12)]
    queries = queries + rng.normal(scale=1e-9, size=queries.shape)
    want = _scalar_reference(index, queries, 15)
    got = index.search_batch(queries, k=15)
    assert got == want


@pytest.mark.parametrize("index_cls", INDEX_CLASSES)
def test_pairs_unwrap_search_batch(data, queries, index_cls):
    index = _make(index_cls).build(data)
    hits = index.search_batch(queries, k=6)
    pairs = index.search_batch_pairs(queries, k=6)
    assert pairs == [[(h.vector_id, h.distance) for h in row]
                     for row in hits]


def test_single_query_batch_matches_search(data):
    index = BruteForceIndex().build(data)
    query = data[3] + 0.01
    assert index.search_batch(query[None, :], k=4) == [
        index.search(query, k=4)]


def test_k_capped_at_n_in_batch():
    index = BruteForceIndex().build(np.eye(3))
    rows = index.search_batch(np.zeros((2, 3)), k=10)
    assert all(len(row) == 3 for row in rows)


class TestStableTopK:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(5)
        for trial in range(50):
            values = rng.integers(0, 6, size=rng.integers(1, 80))
            values = values.astype(np.float64)
            k = int(rng.integers(1, len(values) + 1))
            want = np.argsort(values, kind="stable")[:k]
            got = stable_topk(values, k)
            np.testing.assert_array_equal(got, want)

    def test_all_tied(self):
        values = np.zeros(10)
        np.testing.assert_array_equal(stable_topk(values, 4),
                                      np.arange(4))

    def test_k_at_least_n(self):
        values = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(stable_topk(values, 5),
                                      np.array([1, 2, 0]))


class TestBatchValidation:
    def test_before_build(self):
        with pytest.raises(IndexError_):
            BruteForceIndex().search_batch(np.zeros((2, 3)))
        with pytest.raises(IndexError_):
            BruteForceIndex().search_batch_pairs(np.zeros((2, 3)))

    def test_bad_shape(self, data):
        index = BruteForceIndex().build(data)
        with pytest.raises(IndexError_):
            index.search_batch(np.zeros(16))  # 1-D, not (m, d)
        with pytest.raises(IndexError_):
            index.search_batch(np.zeros((2, 5)))  # wrong dim

    def test_bad_k(self, data):
        index = BruteForceIndex().build(data)
        with pytest.raises(IndexError_):
            index.search_batch(np.zeros((2, 16)), k=0)
