"""Tests for the Hungarian algorithm and graph edit distance."""

import networkx as nx
import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.algorithms import (
    approximate_ged,
    exact_ged,
    graph_edit_distance,
    hungarian,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    er_graph,
    path_graph,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(g.nodes())
    G.add_edges_from(g.edges())
    return G


class TestHungarian:
    def test_identity_matrix(self):
        cost = [[0, 1], [1, 0]]
        assignment, total = hungarian(cost)
        assert assignment == [0, 1]
        assert total == 0

    def test_antidiagonal(self):
        cost = [[1, 0], [0, 1]]
        assignment, total = hungarian(cost)
        assert assignment == [1, 0]
        assert total == 0

    def test_empty(self):
        assert hungarian([]) == ([], 0.0)

    def test_rectangular_wide(self):
        cost = [[5.0, 1.0, 9.0]]
        assignment, total = hungarian(cost)
        assert assignment == [1]
        assert total == 1.0

    def test_rectangular_tall_leaves_rows_unassigned(self):
        cost = [[1.0], [0.0], [2.0]]
        assignment, total = hungarian(cost)
        assert assignment.count(-1) == 2
        assert assignment[1] == 0
        assert total == 0.0

    def test_ragged_raises(self):
        with pytest.raises(ValueError):
            hungarian([[1, 2], [3]])

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(1, 9)), int(rng.integers(1, 9))
        cost = rng.random((n, m))
        __, total = hungarian(cost.tolist())
        rows, cols = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[rows, cols].sum())


class TestGed:
    def test_identical_zero(self):
        result = graph_edit_distance(path_graph(4), path_graph(4))
        assert result.cost == 0.0
        assert result.exact

    def test_one_edge_difference(self):
        assert graph_edit_distance(path_graph(4), cycle_graph(4)).cost == 1.0

    def test_one_node_difference(self):
        # path_3 -> path_4: one node + one edge
        assert graph_edit_distance(path_graph(3), path_graph(4)).cost == 2.0

    def test_label_substitution_counts(self):
        g1 = Graph()
        g1.add_node(0, label="A")
        g2 = Graph()
        g2.add_node(0, label="B")
        assert graph_edit_distance(g1, g2).cost == 1.0

    def test_symmetry(self):
        a, b = er_graph(5, 0.4, seed=1), er_graph(5, 0.6, seed=2)
        assert graph_edit_distance(a, b).cost == pytest.approx(
            graph_edit_distance(b, a).cost)

    def test_empty_graphs(self):
        assert graph_edit_distance(Graph(), Graph()).cost == 0.0
        g = path_graph(2)
        assert graph_edit_distance(Graph(), g).cost == 3.0  # 2 nodes + edge

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_matches_networkx(self, seed):
        a = er_graph(5, 0.4, seed=seed)
        b = er_graph(5, 0.5, seed=seed + 50)
        ours = graph_edit_distance(a, b).cost
        theirs = nx.graph_edit_distance(to_nx(a), to_nx(b))
        assert ours == pytest.approx(theirs)

    def test_approximate_upper_bounds_exact(self):
        for seed in range(5):
            a = er_graph(6, 0.3, seed=seed)
            b = er_graph(6, 0.5, seed=seed + 10)
            approx = approximate_ged(a, b).cost
            exact = exact_ged(a, b).cost
            assert approx >= exact - 1e-9

    def test_mapping_covers_all_nodes(self):
        a, b = path_graph(4), cycle_graph(4)
        result = graph_edit_distance(a, b)
        assert set(result.mapping) == set(a.nodes())

    def test_large_uses_approximation(self):
        a = er_graph(20, 0.1, seed=1)
        b = er_graph(20, 0.1, seed=2)
        result = graph_edit_distance(a, b, exact_threshold=8)
        assert not result.exact
        assert result.cost >= 0
