"""Tests for the error hierarchy, session persistence and identity API."""

import pytest

from repro import ChatSession
from repro.apis import APIChain, ChainContext, ChainExecutor, ChainNode
from repro.chem import parse_smiles
from repro.errors import (
    APIError,
    ChainError,
    ChainExecutionError,
    ChatGraphError,
    ConfigError,
    EdgeNotFoundError,
    EmbeddingError,
    FinetuneError,
    GraphError,
    GraphIOError,
    KnowledgeBaseError,
    ModelError,
    NodeNotFoundError,
    SequencerError,
    SessionError,
    SmilesError,
    UnknownAPIError,
)
from repro.graphs import social_network


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_cls", [
        GraphError, EmbeddingError, SequencerError, APIError, ChainError,
        ModelError, FinetuneError, KnowledgeBaseError, SessionError,
        ConfigError,
    ])
    def test_all_derive_from_base(self, error_cls):
        assert issubclass(error_cls, ChatGraphError)

    def test_specific_hierarchies(self):
        assert issubclass(NodeNotFoundError, GraphError)
        assert issubclass(EdgeNotFoundError, GraphError)
        assert issubclass(GraphIOError, GraphError)
        assert issubclass(UnknownAPIError, APIError)

    def test_payloads(self):
        error = NodeNotFoundError("x")
        assert error.node == "x"
        edge = EdgeNotFoundError(1, 2)
        assert (edge.u, edge.v) == (1, 2)
        unknown = UnknownAPIError("nope")
        assert unknown.name == "nope"
        smiles = SmilesError("C(", "unbalanced")
        assert smiles.smiles == "C("
        execution = ChainExecutionError("step_x", ValueError("boom"))
        assert execution.step == "step_x"
        assert isinstance(execution.cause, ValueError)

    def test_one_catch_covers_framework(self, chatgraph):
        with pytest.raises(ChatGraphError):
            chatgraph.registry.get("not_registered")


class TestSessionPersistence:
    def test_save_load_roundtrip(self, chatgraph, tmp_path):
        session = ChatSession(chatgraph)
        graph = social_network(20, 2, seed=3)
        session.upload_graph(graph)
        session.send("count the nodes")
        path = tmp_path / "session.json"
        session.save(path)

        restored = ChatSession.load(path, chatgraph)
        assert len(restored.history) == len(session.history)
        assert restored.graph == graph
        # the restored session keeps chatting
        response = restored.send("count the edges")
        assert response.record.ok

    def test_save_without_graph(self, chatgraph, tmp_path):
        session = ChatSession(chatgraph)
        session.send("hello")
        path = tmp_path / "bare.json"
        session.save(path)
        restored = ChatSession.load(path, chatgraph)
        assert restored.graph is None

    def test_load_malformed(self, chatgraph, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SessionError):
            ChatSession.load(path, chatgraph)
        path.write_text('{"history": "oops"}')
        with pytest.raises(SessionError):
            ChatSession.load(path, chatgraph)


class TestIdentifyMolecule:
    def run_one(self, registry, context):
        executor = ChainExecutor(registry)
        chain = APIChain([ChainNode("identify_molecule")])
        return executor.execute(chain, context).final_result

    def test_recognizes_known(self, registry, molecule_db):
        aspirin = parse_smiles("CC(=O)Oc1ccccc1C(=O)O")
        result = self.run_one(registry, ChainContext(
            graph=aspirin.to_graph(), database=molecule_db))
        assert result["known"] is True
        assert result["name"] == "aspirin"
        assert result["formula"] == "C9H8O4"

    def test_recognizes_kekule_form(self, registry, molecule_db):
        kekule = parse_smiles("C1=CC=CC=C1")
        result = self.run_one(registry, ChainContext(
            graph=kekule.to_graph(), database=molecule_db))
        assert result["name"] == "benzene"

    def test_unknown_molecule(self, registry, molecule_db):
        exotic = parse_smiles("FC(F)(F)C(F)(F)C(F)(F)F")
        result = self.run_one(registry, ChainContext(
            graph=exotic.to_graph(), database=molecule_db))
        assert result["known"] is False
        assert result["name"] is None
        assert result["canonical_smiles"]

    def test_end_to_end_question(self, chatgraph):
        caffeine = parse_smiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C")
        response = chatgraph.ask("what molecule is this",
                                 graph=caffeine.to_graph())
        results = response.results()
        if "identify_molecule" in results:
            assert results["identify_molecule"]["name"] == "caffeine"
