"""Tests for request micro-batching (repro.serve.microbatch + engine).

The batcher must only coalesce stateless ``propose``/``ask`` requests,
flush on size or deadline, and — end to end — a micro-batched server
must return bit-identical responses to the scalar path while recording
the ``microbatched`` counter and ``microbatch_size`` histogram.
"""

from __future__ import annotations

import pytest

from repro import ChatGraph, ChatGraphServer, ServeConfig, ServeRequest
from repro.graphs import knowledge_graph
from repro.serve import AdmissionQueue, MicroBatcher
from repro.serve.bench import build_workload
from repro.serve.engine import PendingRequest


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def _pending(op: str, session_id: str | None = None) -> PendingRequest:
    request = ServeRequest(op=op, text="t", session_id=session_id)
    return PendingRequest(request, request_id=0, enqueued_at=0.0)


@pytest.fixture(scope="module")
def serve_chatgraph():
    return ChatGraph.pretrained(corpus_size=300, seed=0)


class TestBatchable:
    def test_stateless_propose_and_ask_batch(self):
        assert MicroBatcher.batchable(_pending("propose"))
        assert MicroBatcher.batchable(_pending("ask"))

    def test_session_bound_requests_do_not_batch(self):
        assert not MicroBatcher.batchable(_pending("propose", "s1"))
        assert not MicroBatcher.batchable(_pending("ask", "s1"))

    def test_execute_does_not_batch(self):
        assert not MicroBatcher.batchable(_pending("execute"))


class TestCollect:
    def _queue(self, items) -> AdmissionQueue:
        queue = AdmissionQueue(maxsize=64)
        for item in items:
            queue.put(item)
        return queue

    def test_non_batchable_first_short_circuits(self):
        batcher = MicroBatcher(max_batch=4, deadline_seconds=0.0,
                               clock=FakeClock())
        queue = self._queue([_pending("ask")])
        first = _pending("execute")
        batch, passthrough = batcher.collect(queue, first)
        assert batch == [] and passthrough == [first]
        assert len(queue) == 1  # nothing else was popped

    def test_flush_on_size(self):
        batcher = MicroBatcher(max_batch=3, deadline_seconds=0.0,
                               clock=FakeClock())
        queued = [_pending("ask") for _ in range(5)]
        queue = self._queue(queued)
        first = _pending("propose")
        batch, passthrough = batcher.collect(queue, first)
        assert batch == [first] + queued[:2]  # capped at max_batch
        assert passthrough == []
        assert len(queue) == 3

    def test_zero_deadline_coalesces_already_queued_only(self):
        batcher = MicroBatcher(max_batch=8, deadline_seconds=0.0,
                               clock=FakeClock())
        queued = [_pending("ask"), _pending("propose")]
        queue = self._queue(queued)
        batch, passthrough = batcher.collect(queue, _pending("ask"))
        assert len(batch) == 3 and passthrough == []
        assert len(queue) == 0

    def test_deadline_expiry_returns_partial_batch(self):
        # real clock: the empty queue forces the deadline to lapse
        batcher = MicroBatcher(max_batch=8, deadline_seconds=0.01)
        queue = AdmissionQueue(maxsize=8)
        first = _pending("propose")
        batch, passthrough = batcher.collect(queue, first)
        assert batch == [first] and passthrough == []

    def test_non_batchable_items_pass_through(self):
        batcher = MicroBatcher(max_batch=8, deadline_seconds=0.0,
                               clock=FakeClock())
        session = _pending("ask", session_id="dialog-1")
        tail = _pending("propose")
        queue = self._queue([session, tail])
        batch, passthrough = batcher.collect(queue, _pending("ask"))
        assert session in passthrough
        assert session not in batch
        assert tail in batch

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0, deadline_seconds=0.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=1, deadline_seconds=-0.1)


class TestServerMicroBatching:
    def _run(self, chatgraph, workload, **config):
        server = ChatGraphServer(
            chatgraph, ServeConfig(workers=1, enable_caches=False,
                                   queue_depth=64, **config))
        with server:
            pending = [server.submit(request) for request in workload]
            responses = [item.result(timeout=120.0) for item in pending]
        return server, responses

    def test_batched_responses_identical_to_scalar(self, serve_chatgraph):
        workload = build_workload(10, n_graphs=3)
        workload += [ServeRequest(op="ask", text=r.text, graph=r.graph)
                     for r in workload[:4]]
        _, serial = self._run(serve_chatgraph, workload)
        server, batched = self._run(serve_chatgraph, workload,
                                    microbatch_size=8,
                                    microbatch_deadline_seconds=0.05)
        assert all(r.ok for r in serial)
        assert all(r.ok for r in batched)
        for left, right in zip(serial, batched):
            assert left.seed == right.seed
            if left.op == "propose":
                assert left.value.chain.api_names() == \
                    right.value.chain.api_names()
                assert left.value.retrieved == right.value.retrieved
                assert left.value.intent == right.value.intent
            else:
                assert left.value.answer == right.value.answer
        # a single worker over a pre-filled queue must have coalesced
        counters = server.stats()["counters"]
        assert counters.get("microbatched", 0) >= 2
        histogram = server.metrics.histogram("microbatch_size")
        assert histogram.count >= 1
        assert histogram.max >= 2

    def test_microbatching_off_by_default(self, serve_chatgraph):
        workload = build_workload(4, n_graphs=2)
        server, responses = self._run(serve_chatgraph, workload)
        assert all(r.ok for r in responses)
        assert server.batcher is None
        assert server.stats()["counters"].get("microbatched", 0) == 0

    def test_session_requests_bypass_batching(self, serve_chatgraph):
        graph = knowledge_graph(24, 80, seed=3)
        workload = build_workload(6, n_graphs=2)
        workload.insert(3, ServeRequest(op="ask",
                                        text="how many nodes are there",
                                        graph=graph, session_id="dlg-1"))
        server, responses = self._run(serve_chatgraph, workload,
                                      microbatch_size=8,
                                      microbatch_deadline_seconds=0.05)
        assert all(r.ok for r in responses)
        session_response = responses[3]
        assert session_response.op == "ask"
        assert session_response.value.answer
        # the session request was served, but never as part of a batch:
        # microbatched counts only the stateless requests
        counters = server.stats()["counters"]
        assert counters.get("microbatched", 0) <= len(workload) - 1
        assert server.sessions.stats()["created"] >= 1


class ScriptedQueue:
    """AdmissionQueue stand-in driven by a fake clock.

    Each ``get`` pops the next scripted ``(advance, item)`` step and
    moves the clock forward by ``advance`` (capped at the requested
    timeout when the step models a timeout/raced wakeup, i.e. the item
    is None).  An exhausted script behaves like an empty queue: every
    further ``get`` sleeps out its full timeout and returns None.
    """

    closed = False

    def __init__(self, clock: FakeClock, script) -> None:
        self.clock = clock
        self.script = list(script)
        self.gets = 0

    def __len__(self) -> int:
        return sum(1 for _, item in self.script if item is not None)

    def get(self, timeout: float):
        self.gets += 1
        if not self.script:
            self.clock.now += timeout
            return None
        advance, item = self.script.pop(0)
        self.clock.now += advance if item is not None \
            else min(advance, timeout)
        return item


class TestQueueDelayAccounting:
    """``batch_wait_seconds`` must be each member's actual coalescing
    wait — not 0, not the full deadline — and the collect loop must
    terminate even when the clock never visibly advances."""

    def test_size_triggered_flush_stamps_per_member_waits(self):
        clock = FakeClock(start=100.0)
        batcher = MicroBatcher(max_batch=3, deadline_seconds=10.0,
                               clock=clock)
        first, second, third = (_pending("propose"), _pending("ask"),
                                _pending("ask"))
        queue = ScriptedQueue(clock, [(0.5, second), (0.5, third)])
        batch, passthrough = batcher.collect(queue, first)
        assert batch == [first, second, third] and passthrough == []
        # the flush happened 1.0s after ``first`` joined: its wait is
        # the real coalescing time, not 0 and not the 10s deadline
        assert first.batch_wait_seconds == pytest.approx(1.0)
        assert second.batch_wait_seconds == pytest.approx(0.5)
        # the size-trigger member never waited
        assert third.batch_wait_seconds == pytest.approx(0.0)

    def test_deadline_flush_stamps_full_wait_for_first_only(self):
        clock = FakeClock(start=100.0)
        batcher = MicroBatcher(max_batch=8, deadline_seconds=2.0,
                               clock=clock)
        first, second = _pending("propose"), _pending("ask")
        queue = ScriptedQueue(clock, [(0.5, second), (5.0, None)])
        batch, passthrough = batcher.collect(queue, first)
        assert batch == [first, second] and passthrough == []
        assert first.batch_wait_seconds == pytest.approx(2.0)
        assert second.batch_wait_seconds == pytest.approx(1.5)

    def test_frozen_clock_terminates_without_spinning(self):
        """A clock that never advances (coarse clock, sub-resolution
        waits) must not make collect spin hot forever: the deadline is
        clamped after the first unmeasurable wait and the loop drains
        only what is already queued."""
        clock = FakeClock(start=100.0)
        batcher = MicroBatcher(max_batch=8, deadline_seconds=5.0,
                               clock=clock)
        first = _pending("propose")
        queue = ScriptedQueue(clock, [(0.0, None), (0.0, None)])
        batch, passthrough = batcher.collect(queue, first)
        assert batch == [first] and passthrough == []
        # one unmeasurable wait clamps the deadline; the loop must not
        # have burned through the scripted steps in a hot spin
        assert queue.gets <= 2

    def test_server_records_coalescing_wait_not_admission_wait(
            self, serve_chatgraph):
        """The regression this PR fixes: ``microbatch_queue_delay``
        used to record the full admission-queue wait, so a later
        batch's members reported the previous batch's ~0.3s service
        time instead of their own coalescing wait (bounded by the
        0.02s flush deadline)."""
        workload = build_workload(12, n_graphs=2)
        server = ChatGraphServer(
            serve_chatgraph,
            ServeConfig(workers=1, enable_caches=False, queue_depth=64,
                        microbatch_size=6,
                        microbatch_deadline_seconds=0.02,
                        backend_latency_seconds=0.3))
        with server:
            pending = [server.submit(request) for request in workload]
            responses = [item.result(timeout=120.0) for item in pending]
        assert all(r.ok for r in responses)
        counters = server.stats()["counters"]
        assert counters.get("microbatched", 0) >= len(workload) - 1
        delay = server.metrics.histogram("microbatch_queue_delay")
        assert delay.count >= counters["microbatched"]
        # every wait is a coalescing wait: well under the 0.3s backend
        # pause each batch spends in service
        assert delay.max < 0.2
