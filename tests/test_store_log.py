"""Edit-log framing, validation, and crash recovery.

The crash-recovery suite is exhaustive at the byte level: a seeded log
is truncated at *every* byte boundary and must always recover to the
longest complete-record prefix, dropping only the torn tail.
"""

import json

import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.graphs.graph import DiGraph, Graph
from repro.store.log import EditLog
from repro.store.records import (
    FRAME_HEADER_SIZE,
    OPS,
    apply_record,
    encode_record,
    iter_frames,
    make_record,
)
from repro.store.snapshot import graph_bytes, graph_from_bytes


def sample_records():
    return [
        make_record("add_node", id="a", attrs={"x": 1}),
        make_record("add_node", id="b", attrs={"tags": ["p", "q"]}),
        make_record("add_edge", u="a", v="b", attrs={"w": 2.5}),
        make_record("set_node_attr", id="a", key="x", value=[1, None]),
        make_record("set_edge_attr", u="a", v="b", key="w", value=3.0),
        make_record("add_node", id="c", attrs={}),
        make_record("remove_node", id="c"),
        make_record("remove_edge", u="a", v="b"),
    ]


# ----------------------------------------------------------------------
# records + framing
# ----------------------------------------------------------------------
def test_every_op_round_trips_through_a_frame():
    for record in sample_records():
        blob = encode_record(record)
        frames = list(iter_frames(blob))
        assert frames == [(len(blob), record)]


def test_record_encoding_is_canonical():
    record = make_record("add_node", id="a", attrs={"b": 1, "a": 2})
    payload = encode_record(record)[FRAME_HEADER_SIZE:]
    assert payload == json.dumps(
        json.loads(payload), sort_keys=True,
        separators=(",", ":")).encode("utf-8")


def test_make_record_validates_op_and_fields():
    with pytest.raises(StoreError):
        make_record("rename_node", id="a")
    with pytest.raises(StoreError):
        make_record("add_node", id="a")  # missing attrs
    with pytest.raises(StoreError):
        make_record("add_node", id="a", attrs={}, extra=1)
    with pytest.raises(StoreError):
        make_record("add_node", id=("tu", "ple"), attrs={})
    with pytest.raises(StoreError):
        make_record("add_node", id="a", attrs={"bad": object()})
    with pytest.raises(StoreError):
        make_record("set_node_attr", id="a", key=7, value=1)


def test_tuples_in_attrs_become_lists():
    record = make_record("add_node", id="a", attrs={"t": (1, 2)})
    assert record["attrs"]["t"] == [1, 2]


def test_apply_record_replays_every_op():
    graph = Graph()
    for record in sample_records():
        apply_record(graph, record)
    assert list(graph.nodes()) == ["a", "b"]
    assert graph.number_of_edges() == 0
    assert graph.node_attrs("a") == {"x": [1, None]}
    with pytest.raises(StoreError):
        apply_record(graph, {"op": "no_such_op"})


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
def build_log(path):
    log = EditLog(path)
    records = sample_records()
    log.append_batch(records)
    log.close()
    return records, path.read_bytes()


def complete_prefix(blob, cut):
    """Records and byte length of the longest intact prefix of blob[:cut]."""
    records = []
    size = 0
    try:
        for end, record in iter_frames(blob[:cut]):
            records.append(record)
            size = end
    except StoreCorruptionError:
        pass
    return records, size


def test_recovery_at_every_byte_boundary(tmp_path):
    records, blob = build_log(tmp_path / "full.editlog")
    boundaries = [end for end, __ in iter_frames(blob)]
    assert boundaries[-1] == len(blob)
    for cut in range(len(blob) + 1):
        path = tmp_path / "cut.editlog"
        path.write_bytes(blob[:cut])
        expected_records, expected_size = complete_prefix(blob, cut)
        log = EditLog(path)
        recovered, dropped = log.recover()
        assert recovered == expected_records, f"cut at byte {cut}"
        assert dropped == cut - expected_size
        assert path.stat().st_size == expected_size
        # a recovered log must accept further appends cleanly
        log.append(make_record("add_node", id="z", attrs={}))
        log.close()
        assert list(iter_frames(path.read_bytes()))[-1][1]["id"] == "z"


def test_recovery_truncates_a_corrupted_crc(tmp_path):
    records, blob = build_log(tmp_path / "crc.editlog")
    boundaries = [0] + [end for end, __ in iter_frames(blob)]
    # corrupt one payload byte of the third record
    offset = boundaries[2] + FRAME_HEADER_SIZE + 1
    damaged = bytearray(blob)
    damaged[offset] ^= 0xFF
    path = tmp_path / "cut.editlog"
    path.write_bytes(bytes(damaged))
    recovered, dropped = EditLog(path).recover()
    assert recovered == records[:2]
    assert dropped == len(blob) - boundaries[2]


def test_read_records_raises_on_corruption(tmp_path):
    __, blob = build_log(tmp_path / "x.editlog")
    path = tmp_path / "torn.editlog"
    path.write_bytes(blob[:-3])
    with pytest.raises(StoreCorruptionError):
        EditLog(path).read_records()
    # but the intact file reads fine
    full = tmp_path / "x.editlog"
    assert len(EditLog(full).read_records()) == len(sample_records())


def test_missing_log_recovers_to_empty(tmp_path):
    log = EditLog(tmp_path / "absent.editlog")
    assert log.recover() == ([], 0)
    assert log.read_records() == []
    assert log.size_bytes == 0


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
def test_snapshot_bytes_round_trip_preserves_insertion_order():
    graph = DiGraph(name="d")
    graph.add_node("z", rank=1)
    graph.add_node("a")
    graph.add_edge("z", "a", w=[1, {"k": None}])
    blob = graph_bytes(graph)
    restored = graph_from_bytes(blob)
    assert isinstance(restored, DiGraph)
    assert list(restored.nodes()) == ["z", "a"]
    assert graph_bytes(restored) == blob


def test_snapshot_rejects_garbage():
    with pytest.raises(StoreError):
        graph_from_bytes(b"not json")
    with pytest.raises(StoreError):
        graph_from_bytes(b'{"format": 99}')


def test_ops_table_is_the_single_registry():
    # every op in the table replays; nothing replays that is not listed
    assert set(OPS) == {
        "add_node", "remove_node", "add_edge", "remove_edge",
        "set_node_attr", "set_edge_attr",
    }
