"""Tests for the configuration objects (paper Fig. 3 parameters)."""

import pytest

from repro.config import (
    MODEL_PRESETS,
    ChatGraphConfig,
    FinetuneConfig,
    LLMConfig,
    RetrievalConfig,
    SequencerConfig,
)
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        config = ChatGraphConfig.default()
        assert config.retrieval.top_k_apis == 8
        assert config.sequencer.path_length == 2
        assert config.llm.model in MODEL_PRESETS

    @pytest.mark.parametrize("kwargs", [
        {"tau": -0.1}, {"ef_search": 0}, {"top_k_apis": 0},
        {"epsilon": -1.0}, {"embedding_dim": 4},
    ])
    def test_retrieval_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetrievalConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"path_length": 0}, {"max_paths": 0}, {"min_motif_size": 1},
    ])
    def test_sequencer_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SequencerConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"alpha": -1.0}, {"rollouts": -1}, {"epochs": 0},
        {"learning_rate": 0.0}, {"l2": -0.1},
    ])
    def test_finetune_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FinetuneConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"model": "gpt4"}, {"temperature": 0.0}, {"max_chain_length": 0},
        {"beam_width": 0},
    ])
    def test_llm_validation(self, kwargs):
        with pytest.raises(ConfigError):
            LLMConfig(**kwargs)


class TestUpdatesAndSerialization:
    def test_with_updates(self):
        config = ChatGraphConfig.default().with_updates(
            retrieval=RetrievalConfig(top_k_apis=4))
        assert config.retrieval.top_k_apis == 4
        assert config.llm.model == "chatglm-sim"  # untouched

    def test_with_updates_unknown_section(self):
        with pytest.raises(ConfigError):
            ChatGraphConfig.default().with_updates(bogus=1)

    def test_roundtrip_dict(self):
        config = ChatGraphConfig(
            retrieval=RetrievalConfig(tau=0.2),
            llm=LLMConfig(model="vicuna-sim", beam_width=3))
        data = config.to_dict()
        back = ChatGraphConfig.from_dict(data)
        assert back == config

    def test_from_dict_partial(self):
        config = ChatGraphConfig.from_dict(
            {"sequencer": {"path_length": 3}})
        assert config.sequencer.path_length == 3
        assert config.retrieval == RetrievalConfig()

    def test_from_dict_unknown_section(self):
        with pytest.raises(ConfigError):
            ChatGraphConfig.from_dict({"nonsense": {}})

    def test_from_dict_bad_field(self):
        with pytest.raises(ConfigError):
            ChatGraphConfig.from_dict({"llm": {"bogus_field": 1}})

    def test_frozen(self):
        config = ChatGraphConfig.default()
        with pytest.raises(Exception):
            config.llm = LLMConfig()  # type: ignore[misc]
