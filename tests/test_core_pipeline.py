"""Tests for the inference pipeline (prompt -> chain)."""

import pytest

from repro.config import ChatGraphConfig, LLMConfig
from repro.llm.prompts import Prompt
from repro.apis.registry import Category
from repro.chem import parse_smiles


class TestPipelineStages:
    def test_social_understanding(self, chatgraph, social_graph):
        result = chatgraph.pipeline.process(
            Prompt("write a brief report for G", social_graph))
        assert result.intent == "understand"
        assert result.graph_type == "social"
        assert result.chain.api_names()[0] == "predict_graph_type"
        assert result.chain.api_names()[-1] == "generate_report"
        assert not result.used_fallback

    def test_timings_recorded(self, chatgraph, social_graph):
        result = chatgraph.pipeline.process(
            Prompt("count the nodes", social_graph))
        for stage in ("intent", "graph_type", "retrieval",
                      "sequentialize", "generate"):
            assert stage in result.timings
            assert result.timings[stage] >= 0.0

    def test_no_graph_prompt(self, chatgraph):
        result = chatgraph.pipeline.process(Prompt("count the nodes"))
        assert result.graph_type is None
        assert result.sequences is None
        assert len(result.chain) >= 1

    def test_sequences_produced_for_graph(self, chatgraph, social_graph):
        result = chatgraph.pipeline.process(
            Prompt("count the nodes", social_graph))
        assert result.sequences is not None
        assert result.sequences.n_sequences > 0

    def test_category_routing(self, chatgraph, social_graph):
        """Social prompts never propose molecule APIs."""
        result = chatgraph.pipeline.process(
            Prompt("write a brief report for G", social_graph))
        registry = chatgraph.registry
        for name in result.chain.api_names():
            assert registry.get(name).category != Category.MOLECULE

    def test_molecule_routing(self, chatgraph):
        graph = parse_smiles("CC(=O)Oc1ccccc1C(=O)O").to_graph()
        result = chatgraph.pipeline.process(
            Prompt("is this molecule toxic", graph))
        assert result.graph_type == "molecule"
        assert "predict_toxicity" in result.chain.api_names()

    def test_retrieved_nonempty(self, chatgraph, social_graph):
        result = chatgraph.pipeline.process(
            Prompt("find communities", social_graph))
        assert len(result.retrieved) >= 1

    def test_fallback_on_unhelpful_prompt(self, chatgraph, social_graph):
        """Nonsense prompts still yield a valid executable chain."""
        result = chatgraph.pipeline.process(
            Prompt("zzz qqq xxx yyy", social_graph))
        result.chain.validate(chatgraph.registry)

    def test_single_compute_questions(self, chatgraph, social_graph):
        result = chatgraph.pipeline.process(
            Prompt("how many nodes does the graph have", social_graph))
        assert result.chain.api_names() == ["count_nodes"]

    def test_cleaning_chain(self, chatgraph, kg_graph):
        result = chatgraph.pipeline.process(Prompt("clean G", kg_graph))
        assert result.intent == "clean"
        names = result.chain.api_names()
        assert "detect_incorrect_edges" in names
        assert "export_graph" in names


class TestBeamConfig:
    def test_beam_decoding_path(self, social_graph):
        from repro import ChatGraph
        config = ChatGraphConfig(llm=LLMConfig(beam_width=3))
        cg = ChatGraph.pretrained(config=config, corpus_size=400, seed=1)
        result = cg.pipeline.process(
            Prompt("detect the communities of this network", social_graph))
        assert "detect_communities" in result.chain.api_names()


class TestFallbackChainValidity:
    """Repairs must never propose unexecutable chains (ISSUE 1)."""

    def test_every_fallback_chain_resolves_and_validates(self, registry):
        from repro.apis.chain import APIChain
        from repro.core.pipeline import DEFAULT_FALLBACK, FALLBACK_CHAINS

        known = set(registry.names())
        chains = dict(FALLBACK_CHAINS)
        chains[("generic", "default")] = DEFAULT_FALLBACK
        for key, names in chains.items():
            missing = [name for name in names if name not in known]
            assert not missing, (f"fallback {key} references unknown "
                                 f"APIs: {missing}")
            # structural validation too: ordering/arity rules hold
            APIChain.from_names(list(names)).validate(registry)

    def test_pipeline_fallback_lookup_covers_every_key(self, registry):
        from repro.core.pipeline import FALLBACK_CHAINS, ChatPipeline

        for (graph_type, intent), names in FALLBACK_CHAINS.items():
            assert ChatPipeline._fallback(graph_type, intent) == names
        from repro.core.pipeline import DEFAULT_FALLBACK
        assert ChatPipeline._fallback(None, "understand") in (
            FALLBACK_CHAINS.get(("generic", "understand")),
            DEFAULT_FALLBACK)
