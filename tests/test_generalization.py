"""Tests for paraphrase generalization and two-graph comparison."""

import pytest

from repro.apis import APIChain, ChainContext, ChainExecutor, ChainNode
from repro.config import FinetuneConfig
from repro.errors import ChainExecutionError
from repro.finetune import CorpusSpec, Finetuner, build_corpus, evaluate_model
from repro.finetune.dataset import AMBIGUOUS_TEMPLATES, TEMPLATES
from repro.graphs import complete_graph, cycle_graph, path_graph
from repro.llm import build_model


class TestHoldoutPhrasings:
    def test_test_split_uses_heldout_phrasing(self, registry):
        train, test = build_corpus(
            registry, CorpusSpec(n_examples=300, seed=1,
                                 holdout_phrasings=True))
        heldout = {template.phrasings[-1]
                   for template in TEMPLATES + AMBIGUOUS_TEMPLATES
                   if len(template.phrasings) > 1}
        nonfinal = {p for template in TEMPLATES + AMBIGUOUS_TEMPLATES
                    for p in template.phrasings[:-1]}

        def core(question: str) -> str | None:
            for phrase in heldout | nonfinal:
                if phrase in question:
                    return phrase
            return None

        for example in test:
            phrase = core(example.question)
            assert phrase is None or phrase in heldout
        for example in train:
            phrase = core(example.question)
            assert phrase is None or phrase in nonfinal

    def test_generalizes_to_unseen_phrasings(self, registry):
        """Trained only on non-final phrasings, the model still decodes
        many held-out phrasings correctly.  Transfer flows through the
        retriever (similar text retrieves similar APIs), so the corpus
        is built with the real retriever, as inference does."""
        from repro.retrieval import APIRetriever
        retriever = APIRetriever(registry)
        train, test = build_corpus(
            registry, CorpusSpec(n_examples=500, seed=0,
                                 holdout_phrasings=True),
            retriever=retriever)
        model = build_model("chatglm-sim", registry.names(), seed=0)
        Finetuner(model, FinetuneConfig(epochs=5)).train(
            train, objective="token")
        metrics = evaluate_model(model, test)
        assert metrics.exact_match > 0.5

    def test_memorization_upper_bounds_generalization(self, registry):
        spec_seen = CorpusSpec(n_examples=500, seed=0)
        spec_held = CorpusSpec(n_examples=500, seed=0,
                               holdout_phrasings=True)
        train_seen, test_seen = build_corpus(registry, spec_seen)
        train_held, test_held = build_corpus(registry, spec_held)
        model_seen = build_model("chatglm-sim", registry.names(), seed=0)
        Finetuner(model_seen, FinetuneConfig(epochs=5)).train(
            train_seen, objective="token")
        model_held = build_model("chatglm-sim", registry.names(), seed=0)
        Finetuner(model_held, FinetuneConfig(epochs=5)).train(
            train_held, objective="token")
        seen = evaluate_model(model_seen, test_seen).exact_match
        held = evaluate_model(model_held, test_held).exact_match
        assert seen >= held - 0.05  # seen-phrasing eval is the ceiling


class TestCompareGraphs:
    def run_one(self, registry, context):
        executor = ChainExecutor(registry)
        chain = APIChain([ChainNode("compare_graphs")])
        return executor.execute(chain, context).final_result

    def test_identical_graphs(self, registry):
        g = cycle_graph(6)
        context = ChainContext(graph=g,
                               extras={"other_graph": cycle_graph(6)})
        result = self.run_one(registry, context)
        assert result["wl_similarity"] == pytest.approx(1.0)
        assert result["ged"] == 0.0
        assert result["node_delta"] == 0

    def test_different_graphs(self, registry):
        context = ChainContext(graph=path_graph(4),
                               extras={"other_graph": cycle_graph(4)})
        result = self.run_one(registry, context)
        assert result["ged"] == 1.0
        assert result["wl_similarity"] < 1.0

    def test_large_graphs_skip_ged(self, registry):
        context = ChainContext(
            graph=complete_graph(40),
            extras={"other_graph": complete_graph(40)})
        result = self.run_one(registry, context)
        assert "ged" not in result
        assert result["wl_similarity"] == pytest.approx(1.0)

    def test_missing_other_graph(self, registry):
        with pytest.raises(ChainExecutionError):
            self.run_one(registry, ChainContext(graph=path_graph(3)))

    def test_end_to_end_prompt(self, chatgraph):
        response = chatgraph.ask("how similar are these two graphs",
                                 graph=path_graph(5),
                                 other_graph=cycle_graph(5))
        results = response.results()
        if "compare_graphs" in results:
            assert results["compare_graphs"]["ged"] == 1.0
