"""Golden-trace regression tests for the canonical prompts.

Each canonical prompt (see :mod:`repro.testing.workloads`) runs through
a seeded single-worker :class:`ChatGraphServer` with tracing on; the
*canonical* span-log export (timings stripped, structural order) must
match the checked-in golden file byte for byte.  Any drift in the
pipeline's structure — stages, predicted chains, retry topology, span
identity — shows up as a readable unified diff.

To regenerate after an intentional change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/test_golden_traces.py
"""

import difflib
import os
from pathlib import Path

import pytest

from repro.config import ObsConfig, ServeConfig
from repro.obs import check_trace, load_trace, spans_to_jsonl
from repro.serve import ChatGraphServer
from repro.testing import CANONICAL_PROMPTS, canonical_graph

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def canonical_trace(chatgraph, text, graph):
    """The canonical span-log export of one seeded traced request."""
    config = ServeConfig(workers=1, seed=0,
                         obs=ObsConfig(enable_tracing=True))
    with ChatGraphServer(chatgraph, config) as server:
        response = server.ask(text, graph=graph)
        assert response.ok, response.error
        return spans_to_jsonl(server.tracer.finished_spans(),
                              canonical=True)


@pytest.mark.parametrize("slug,text,kind", CANONICAL_PROMPTS,
                         ids=[slug for slug, __, __ in CANONICAL_PROMPTS])
class TestGoldenTraces:
    def test_trace_matches_golden(self, chatgraph, slug, text, kind):
        actual = canonical_trace(chatgraph, text, canonical_graph(kind))
        golden_path = GOLDEN_DIR / f"{slug}.jsonl"
        if REGEN:
            golden_path.write_text(actual, encoding="utf-8")
        assert golden_path.exists(), (
            f"golden file {golden_path} missing; regenerate with "
            f"REPRO_REGEN_GOLDEN=1")
        expected = golden_path.read_text(encoding="utf-8")
        if actual != expected:
            diff = "\n".join(difflib.unified_diff(
                expected.splitlines(), actual.splitlines(),
                fromfile=f"golden/{slug}.jsonl", tofile="this run",
                lineterm=""))
            pytest.fail(f"canonical trace for {slug!r} drifted from the "
                        f"golden file:\n{diff}")

    def test_golden_file_is_well_formed(self, chatgraph, slug, text, kind):
        golden_path = GOLDEN_DIR / f"{slug}.jsonl"
        assert golden_path.exists()
        spans = load_trace(golden_path.read_text(encoding="utf-8"))
        assert check_trace(spans) == []
        # golden traces are canonical: no run-dependent timing fields
        assert all("wall_seconds" not in span for span in spans)
        kinds = {span["kind"] for span in spans}
        assert {"request", "pipeline", "stage", "chain"} <= kinds

    def test_rerun_is_byte_identical(self, chatgraph, slug, text, kind):
        graph = canonical_graph(kind)
        first = canonical_trace(chatgraph, text, graph)
        second = canonical_trace(chatgraph, text, graph)
        assert first == second
