"""Tests for chain monitoring, answer rendering and the four scenarios."""

import pytest

from repro.apis.executor import ExecutionEvent
from repro.chem import parse_smiles
from repro.core import (
    ChainMonitor,
    render_answer,
    run_chain_monitoring,
    run_graph_cleaning,
    run_graph_comparison,
    run_graph_understanding,
)
from repro.core.suggestions import suggested_questions
from repro.kb import TripleStore, corrupt_store


def event(kind, step=None, api=None, detail="", n_steps=None):
    return ExecutionEvent(kind=kind, step_index=step, api_name=api,
                          elapsed_seconds=0.1, detail=detail,
                          n_steps=n_steps)


class TestChainMonitor:
    def test_progress_tracking(self):
        monitor = ChainMonitor()
        monitor(event("chain_started", detail="2 steps: a -> b"))
        assert monitor.n_steps == 2
        assert monitor.progress == 0.0
        monitor(event("step_started", 0, "a"))
        monitor(event("step_finished", 0, "a"))
        assert monitor.progress == 0.5
        monitor(event("step_started", 1, "b"))
        monitor(event("step_finished", 1, "b"))
        monitor(event("chain_finished"))
        assert monitor.progress == 1.0
        assert monitor.finished and not monitor.failed

    def test_failure_tracking(self):
        monitor = ChainMonitor()
        monitor(event("chain_started", detail="1 steps: a"))
        monitor(event("step_started", 0, "a"))
        monitor(event("step_failed", 0, "a", "boom"))
        monitor(event("chain_failed", 0, "a"))
        assert monitor.failed and monitor.finished

    def test_render_progress_bar(self):
        monitor = ChainMonitor()
        monitor(event("chain_started", detail="4 steps: ..."))
        monitor(event("step_finished", 0, "a"))
        bar = monitor.render_progress(width=8)
        assert bar.startswith("[##......]")
        assert "1/4" in bar

    def test_structured_step_count_preferred(self):
        """chain_started carries n_steps; detail parsing is a fallback."""
        monitor = ChainMonitor()
        # structured field wins even when detail disagrees
        monitor(event("chain_started", detail="99 steps: junk",
                      n_steps=3))
        assert monitor.n_steps == 3
        # legacy event without n_steps: parse the detail string
        monitor(event("chain_started", detail="2 steps: a -> b"))
        assert monitor.n_steps == 2
        # legacy event with an unparseable detail degrades to zero
        monitor(event("chain_started", detail="no count here"))
        assert monitor.n_steps == 0

    def test_executor_emits_structured_step_count(self, chatgraph,
                                                  social_graph):
        """Live executions populate ExecutionEvent.n_steps."""
        response = chatgraph.ask("write a brief report for G",
                                 graph=social_graph)
        started = [e for e in response.monitor.events
                   if e.kind == "chain_started"]
        assert len(started) == 1
        assert started[0].n_steps == len(response.chain)
        assert response.monitor.n_steps == len(response.chain)

    def test_transcript_and_reset(self):
        monitor = ChainMonitor()
        monitor(event("chain_started", detail="1 steps: a"))
        assert "chain_started" in monitor.transcript()
        monitor.reset()
        assert monitor.events == []
        assert monitor.progress == 0.0

    def test_reuse_across_chains_does_not_overcount(self):
        """Regression: a monitor listening across several chains used to
        accumulate step_finished counts, reporting progress > 100%."""
        monitor = ChainMonitor()
        for _ in range(3):
            monitor(event("chain_started", n_steps=2,
                          detail="2 steps: a -> b"))
            monitor(event("step_started", 0, "a"))
            monitor(event("step_finished", 0, "a"))
            monitor(event("step_started", 1, "b"))
            monitor(event("step_finished", 1, "b"))
            monitor(event("chain_finished"))
            assert monitor.progress == 1.0
            assert monitor.steps_done == 2
        # the transcript still holds every chain's events
        assert len(monitor.events) == 18
        assert "1/2" not in monitor.render_progress()

    def test_step_index_zero_is_tracked(self):
        """Regression: ``step_index or 0`` treated index 0 like None."""
        monitor = ChainMonitor()
        monitor(event("chain_started", n_steps=1, detail="1 steps: a"))
        assert monitor.current_step == -1  # nothing started yet
        monitor(event("step_started", 0, "a"))
        assert monitor.current_step == 0
        # a step_started without an index must not move the cursor
        monitor(event("step_started", None, None))
        assert monitor.current_step == 0

    def test_recovery_counters_and_rendering(self):
        monitor = ChainMonitor()
        monitor(event("chain_started", n_steps=2, detail="2 steps: a"))
        monitor(event("step_started", 0, "a"))
        monitor(event("step_retried", 0, "a", "attempt 2/3"))
        monitor(event("step_timed_out", 0, "a", "attempt 1 exceeded"))
        monitor(event("breaker_opened", 0, "a", "circuit opened"))
        monitor(event("step_finished", 0, "a"))
        assert (monitor.retries, monitor.timeouts,
                monitor.breaker_trips) == (1, 1, 1)
        bar = monitor.render_progress()
        assert "1 retries" in bar and "1 timeouts" in bar \
            and "1 breaker trips" in bar
        # counters reset with the next chain; transcript keeps the events
        monitor(event("chain_started", n_steps=1, detail="1 steps: b"))
        assert monitor.retries == 0
        assert "step_retried" in monitor.transcript()


class TestRenderAnswer:
    def test_report_takes_precedence(self, chatgraph, social_graph):
        response = chatgraph.ask("write a brief report for G",
                                 graph=social_graph)
        assert response.answer.startswith("Graph report")

    def test_plain_results_formatted(self, chatgraph, social_graph):
        response = chatgraph.ask("count the nodes", graph=social_graph)
        assert "count_nodes: 40" in response.answer


class TestScenarios:
    def test_understanding_social(self, chatgraph, social_graph):
        result = run_graph_understanding(chatgraph, social_graph)
        assert result.details["graph_type"] == "social"
        assert "detect_communities" in result.chain_names
        assert "Graph report" in result.answer

    def test_understanding_molecule(self, chatgraph):
        graph = parse_smiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C").to_graph()
        result = run_graph_understanding(
            chatgraph, graph, "Write a report about this molecule")
        assert result.details["graph_type"] == "molecule"
        assert "predict_toxicity" in result.chain_names

    def test_comparison(self, chatgraph):
        query = parse_smiles("Cc1ccccc1", name="toluene")
        result = run_graph_comparison(chatgraph, query)
        hits = result.details["top_hits"]
        assert len(hits) == 2
        assert hits[0]["name"] == "toluene"  # itself is in the library

    def test_comparison_novel_molecule(self, chatgraph):
        query = parse_smiles("CCc1ccccc1", name="ethylbenzene")
        result = run_graph_comparison(chatgraph, query)
        names = [h["name"] for h in result.details["top_hits"]]
        assert "toluene" in names or "styrene" in names

    def test_cleaning(self, chatgraph, kg_graph):
        store = TripleStore.from_graph(kg_graph)
        noisy, injected, __ = corrupt_store(store, 0.08, 0.0, seed=1)
        result = run_graph_cleaning(chatgraph, noisy.to_graph())
        assert result.details["n_removed"] == len(injected)
        assert result.details["exported"]

    def test_cleaning_declined(self, chatgraph, kg_graph):
        store = TripleStore.from_graph(kg_graph)
        noisy, __, __ = corrupt_store(store, 0.08, 0.0, seed=1)
        result = run_graph_cleaning(chatgraph, noisy.to_graph(),
                                    auto_confirm=False)
        # chains run with confirm_each=False by default, so edits apply
        # regardless; the confirmation log must still be consistent
        assert isinstance(result.details["confirmations"], list)

    def test_monitoring(self, chatgraph, social_graph):
        result = run_chain_monitoring(chatgraph, social_graph,
                                      edit_remove=1)
        assert result.details["progress"] == 1.0
        assert len(result.details["proposed_chain"].split("->")) == \
            len(result.details["executed_chain"].split("->")) + 1
        assert any("chain_finished" in e for e in result.details["events"])
        assert "assistant" in result.details["transcript"]


class TestSuggestions:
    def test_no_graph_generic(self):
        questions = suggested_questions(None)
        assert questions
        assert len(questions) <= 4

    def test_limit(self, social_graph):
        assert len(suggested_questions(social_graph, limit=2)) == 2
        assert suggested_questions(social_graph, limit=0) == []

    def test_type_specific(self, kg_graph):
        assert "Clean G" in suggested_questions(kg_graph)
