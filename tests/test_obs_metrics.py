"""Metrics registry, histogram quantiles, profiler, and renderers."""

from dataclasses import dataclass

import pytest

from repro.obs import (
    CounterMetric,
    Gauge,
    Histogram,
    MetricsRegistry,
    StageProfiler,
    render_metrics_markdown,
)
from repro.obs.metrics import OBSERVED_EVENT_KINDS


@dataclass
class FakeEvent:
    kind: str


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = CounterMetric()
        counter.incr()
        counter.incr(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            CounterMetric().incr(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.add(-1.0)
        assert gauge.value == 2.5


class TestHistogram:
    def test_exact_count_mean_min_max(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.003):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.002)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.003)

    def test_quantiles_ordered_and_bounded(self):
        hist = Histogram()
        for index in range(200):
            hist.observe(0.0001 * (index + 1))
        summary = hist.summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"] \
            <= summary["max"]
        assert summary["p50"] > 0

    def test_quantile_bucket_error_bounded(self):
        """Bucket bounds are x2 apart: estimate within 2x of truth."""
        hist = Histogram()
        for __ in range(1000):
            hist.observe(0.010)
        p50 = hist.quantile(0.5)
        assert 0.010 <= p50 <= 0.020

    def test_empty_and_invalid_quantile(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.summary()["min"] == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_serve_alias_is_same_class(self):
        from repro.serve.stats import LatencyHistogram
        assert LatencyHistogram is Histogram


class TestMetricsRegistry:
    def test_handles_are_stable(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.gauge("g") is metrics.gauge("g")
        assert metrics.histogram("h") is metrics.histogram("h")

    def test_shorthands_and_snapshot(self):
        metrics = MetricsRegistry()
        metrics.incr("requests", 2)
        metrics.set_gauge("depth", 7)
        metrics.observe("latency", 0.01)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"requests": 2}
        assert snapshot["gauges"] == {"depth": 7.0}
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_snapshot_sorted(self):
        metrics = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            metrics.incr(name)
        assert list(metrics.snapshot()["counters"]) == \
            ["alpha", "mid", "zeta"]

    def test_counts_all_observed_event_kinds(self):
        metrics = MetricsRegistry()
        for kind in OBSERVED_EVENT_KINDS:
            metrics.on_execution_event(FakeEvent(kind))
        counters = metrics.snapshot()["counters"]
        assert counters == {f"events_{kind}": 1
                            for kind in OBSERVED_EVENT_KINDS}

    def test_ignores_unknown_event_kinds(self):
        metrics = MetricsRegistry()
        metrics.on_execution_event(FakeEvent("unrelated"))
        metrics.on_execution_event(object())  # no .kind at all
        assert metrics.snapshot()["counters"] == {}

    def test_recovery_kinds_are_observed(self):
        """The robustness events of PR 2 all land in counters."""
        for kind in ("step_retried", "step_timed_out", "breaker_opened"):
            assert kind in OBSERVED_EVENT_KINDS


class TestStageProfiler:
    def test_accumulates_per_stage(self):
        profiler = StageProfiler()
        for __ in range(3):
            with profiler.profile("retrieval"):
                sum(range(1000))
        with profiler.profile("generate"):
            pass
        report = profiler.report()
        assert report["retrieval"]["calls"] == 3
        assert report["retrieval"]["wall_seconds"] >= 0.0
        assert report["generate"]["calls"] == 1

    def test_records_despite_exception(self):
        profiler = StageProfiler()
        with pytest.raises(RuntimeError):
            with profiler.profile("doomed"):
                raise RuntimeError("x")
        assert profiler.report()["doomed"]["calls"] == 1

    def test_render_and_reset(self):
        profiler = StageProfiler()
        assert profiler.render() == "(no stages profiled)"
        with profiler.profile("stage-a"):
            pass
        assert "stage-a" in profiler.render()
        profiler.reset()
        assert profiler.report() == {}

    def test_alloc_tracking_opt_in(self):
        profiler = StageProfiler(track_alloc=True)
        try:
            with profiler.profile("alloc"):
                __ = [0] * 8192
            assert "alloc" in profiler.render()
            assert isinstance(profiler.report()["alloc"]["alloc_bytes"],
                              int)
        finally:
            profiler.shutdown()


class TestMarkdownRendering:
    def test_renders_every_section(self):
        snapshot = {
            "counters": {"admitted": 3},
            "gauges": {"workers": 2.0},
            "latency": {"intent": {"count": 3, "mean": 0.001,
                                   "p50": 0.001, "p95": 0.002,
                                   "p99": 0.002, "max": 0.002}},
            "histograms": {},
            "caches": {"retrieval": {"hits": 1, "misses": 2,
                                     "hit_rate": 1 / 3, "size": 2}},
            "breakers": {"count_nodes": {"state": "open", "failures": 4,
                                         "times_opened": 1}},
            "trace": {"spans": 9, "dropped": 0, "max_spans": 100,
                      "by_kind": {"stage": 5, "step": 4}},
        }
        text = render_metrics_markdown(snapshot, title="Smoke")
        assert text.startswith("# Smoke")
        for fragment in ("## Counters", "| admitted | 3 |", "## Gauges",
                         "## Latency (per stage)", "| intent | 3 |",
                         "## Caches", "33.33%", "## Circuit breakers",
                         "| count_nodes | open | 4 | 1 |", "## Trace",
                         "spans: 9", "stage=5, step=4"):
            assert fragment in text

    def test_empty_snapshot_renders_title_only(self):
        assert render_metrics_markdown({}) == "# Metrics snapshot\n"

    def test_latency_values_formatted_as_ms(self):
        snapshot = {"latency": {"total": {
            "count": 1, "mean": 0.5, "p50": 0.5, "p95": 0.5,
            "p99": 0.5, "max": 0.5}}}
        assert "500.000ms" in render_metrics_markdown(snapshot)
