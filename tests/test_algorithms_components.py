"""Tests for connectivity algorithms, cross-validated against networkx."""

import networkx as nx
import pytest

from repro.algorithms import (
    articulation_points,
    bridges,
    connected_components,
    is_connected,
    largest_component,
    strongly_connected_components,
)
from repro.errors import GraphError
from repro.graphs import DiGraph, Graph, complete_graph, er_graph, path_graph


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(g.nodes())
    G.add_edges_from(g.edges())
    return G


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(complete_graph(4))) == 1

    def test_two_components(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        comps = connected_components(g)
        assert sorted(map(len, comps)) == [2, 2]

    def test_isolated_nodes_are_components(self):
        g = Graph()
        g.add_nodes([1, 2, 3])
        assert len(connected_components(g)) == 3

    def test_weak_components_for_digraph(self):
        d = DiGraph()
        d.add_edge("a", "b")
        assert len(connected_components(d)) == 1

    def test_is_connected(self):
        assert is_connected(path_graph(3))
        assert not is_connected(Graph())
        g = Graph()
        g.add_nodes([1, 2])
        assert not is_connected(g)

    def test_largest_component(self):
        g = Graph()
        g.add_edges([(1, 2), (2, 3)])
        g.add_edge(9, 10)
        assert largest_component(g) == {1, 2, 3}

    def test_largest_component_empty_raises(self):
        with pytest.raises(GraphError):
            largest_component(Graph())


class TestBridgesArticulation:
    def test_bridge_in_barbell(self):
        g = complete_graph(3)
        h = Graph()
        for u, v in g.edges():
            h.add_edge(u, v)
            h.add_edge(u + 10, v + 10)
        h.add_edge(0, 10)
        assert {frozenset(b) for b in bridges(h)} == {frozenset((0, 10))}
        assert articulation_points(h) == {0, 10}

    def test_no_bridges_in_cycle(self):
        from repro.graphs import cycle_graph
        assert bridges(cycle_graph(5)) == []
        assert articulation_points(cycle_graph(5)) == set()

    def test_every_tree_edge_is_bridge(self):
        g = path_graph(5)
        assert len(bridges(g)) == 4
        assert articulation_points(g) == {1, 2, 3}

    def test_matches_networkx_random(self):
        for seed in range(8):
            g = er_graph(25, 0.1, seed=seed)
            G = to_nx(g)
            assert {frozenset(b) for b in bridges(g)} == \
                {frozenset(b) for b in nx.bridges(G)}
            assert articulation_points(g) == \
                set(nx.articulation_points(G))

    def test_directed_rejected(self):
        d = DiGraph()
        d.add_edge(1, 2)
        with pytest.raises(GraphError):
            bridges(d)
        with pytest.raises(GraphError):
            articulation_points(d)


class TestStronglyConnected:
    def test_cycle_is_one_scc(self):
        d = DiGraph()
        d.add_edges([(1, 2), (2, 3), (3, 1)])
        assert strongly_connected_components(d) == [{1, 2, 3}]

    def test_dag_all_singletons(self):
        d = DiGraph()
        d.add_edges([(1, 2), (2, 3)])
        comps = strongly_connected_components(d)
        assert sorted(map(len, comps)) == [1, 1, 1]

    def test_matches_networkx_random(self):
        import random
        for seed in range(6):
            rng = random.Random(seed)
            d = DiGraph()
            D = nx.DiGraph()
            d.add_nodes(range(20))
            D.add_nodes_from(range(20))
            for __ in range(60):
                u, v = rng.randrange(20), rng.randrange(20)
                if u != v:
                    d.add_edge(u, v)
                    D.add_edge(u, v)
            assert sorted(map(len, strongly_connected_components(d))) == \
                sorted(map(len, nx.strongly_connected_components(D)))

    def test_undirected_rejected(self):
        with pytest.raises(GraphError):
            strongly_connected_components(path_graph(3))
