"""Lint: request-plane primitives are constructed only in the runtime.

The unified request-plane refactor's contract is that admission,
rate limiting, breakers and micro-batching are wired exactly once, in
:mod:`repro.runtime` — the serving facades (``ChatGraphServer``,
``ShardedChatGraphServer``) must not grow their own copies back, or the
two control planes drift apart again.  This lint walks every module
under ``src/repro`` and rejects any *call* to ``AdmissionQueue``,
``RateLimiter``, ``BreakerRegistry`` or ``MicroBatcher`` outside:

* ``repro/runtime/`` (the one legitimate wiring site — the lifecycle
  owns the queue/limiter/breakers, and hands out ``make_queue`` /
  ``make_batcher`` factories for backend-internal plumbing), and
* each primitive's own definition module (constructors may appear in
  their doctests and helpers).

Importing the names elsewhere stays legal (types in signatures,
``isinstance`` checks); *constructing* them is what concentrates
control-plane policy and is what this lint confines.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
RUNTIME_DIR = SRC / "runtime"

#: The request-plane primitives and the module defining each.
PRIMITIVES = {
    "AdmissionQueue": SRC / "serve" / "admission.py",
    "RateLimiter": SRC / "serve" / "admission.py",
    "BreakerRegistry": SRC / "serve" / "breaker.py",
    "MicroBatcher": SRC / "serve" / "microbatch.py",
}


def iter_source_files():
    return sorted(SRC.rglob("*.py"))


def _call_name(node):
    """The bare callee name of a Call: ``Name(...)`` or ``mod.Name(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def violations_in(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in PRIMITIVES:
            continue
        if RUNTIME_DIR in path.parents:
            continue
        if path == PRIMITIVES[name]:
            continue
        found.append((node.lineno, f"{name}(...) constructed outside "
                                   f"repro.runtime"))
    return found


def test_source_files_exist():
    files = iter_source_files()
    assert len(files) > 50  # sanity: we are really walking the tree
    assert RUNTIME_DIR.is_dir()
    for definition in PRIMITIVES.values():
        assert definition.exists(), definition


def test_primitives_construct_only_in_the_runtime():
    problems = []
    for path in iter_source_files():
        for lineno, message in violations_in(path):
            problems.append(
                f"{path.relative_to(SRC.parent.parent)}:{lineno}: "
                f"{message}")
    assert not problems, (
        "request-plane primitives are wired once, in repro.runtime; "
        "route new admission/limiter/breaker/microbatch needs through "
        "RequestLifecycle (or its make_queue/make_batcher factories) "
        "instead of constructing them locally:\n" + "\n".join(problems))


def test_runtime_itself_constructs_the_primitives():
    """The lint must keep seeing the legitimate wiring sites."""
    constructed = set()
    for path in RUNTIME_DIR.rglob("*.py"):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in PRIMITIVES:
                    constructed.add(name)
    assert constructed == set(PRIMITIVES), (
        f"expected the runtime to wire every primitive; "
        f"saw only {sorted(constructed)}")


def test_lint_catches_a_planted_violation(tmp_path):
    planted = tmp_path / "bad.py"
    planted.write_text(
        "from repro.serve.admission import AdmissionQueue, RateLimiter\n"
        "import repro.serve.microbatch as mb\n"
        "queue = AdmissionQueue(maxsize=4)\n"
        "limiter = RateLimiter(capacity=1, refill_per_second=1.0)\n"
        "batcher = mb.MicroBatcher(size=4, deadline_seconds=0.01)\n",
        encoding="utf-8")
    found = violations_in(planted)
    assert len(found) == 3
