"""Parity + failure isolation for the PR7-batched stage bodies.

PR7 gave the four remaining stages — intent, graph_type,
sequentialize and repair — genuinely vectorized ``run_batch`` bodies
(shared scoring pass, identity/content-keyed graph grouping,
deduplicated repair resolution).  These tests pin the contract those
bodies must keep:

* scalar/batch parity at sizes 1, 2, 16 and odd sizes, over mixed
  graph/no-graph prompts and unembeddable text — byte-identical
  rendered chains, identical stage outputs, and the same ANN
  distance-computation count as the mapped-scalar path;
* content-equal but distinct graph objects merge into one
  sequentialize group (and identical sequences come back);
* failure isolation — one poisoned context degrades only itself, at
  every batch position, on the default mapped-scalar path, on a
  wholesale-raising vectorized body, and end to end through
  ``process_batch(return_exceptions=True)``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ChatGraph
from repro.core.stages import (
    Stage,
    StageContext,
    StageGraph,
    _group_contexts_by_graph,
)
from repro.graphs import knowledge_graph, molecule_like_graph, social_network
from repro.llm.prompts import Prompt

#: Mixed input space: routable prompts, compute questions, nonsense
#: that forces the repair fallback, and unembeddable punctuation-only
#: text that degrades retrieval (mirrors tests/test_pipeline_parity).
TEXTS = (
    "write a brief report for G",
    "count the nodes",
    "find communities",
    "clean up the knowledge graph",
    "is this molecule toxic",
    "zzz qqq xxx yyy",          # invalid chain -> repair fallback
    "?!. ,,,",                  # unembeddable -> empty retrieval
)

#: GRAPHS[2] and GRAPHS[4] are content-equal but *distinct* objects:
#: identity grouping keeps them apart, fingerprint merging must not.
GRAPHS = (
    None,                       # no-graph prompt
    social_network(25, 3, p_in=0.3, p_out=0.02, seed=1),
    knowledge_graph(n_entities=25, n_facts=80, seed=3),
    molecule_like_graph(n_rings=2, chain_length=3, seed=0),
    knowledge_graph(n_entities=25, n_facts=80, seed=3),
)

prompt_indices = st.lists(
    st.tuples(st.integers(0, len(TEXTS) - 1),
              st.integers(0, len(GRAPHS) - 1)),
    min_size=1, max_size=16)


@pytest.fixture(scope="module")
def parity_chatgraph():
    return ChatGraph.pretrained(corpus_size=300, seed=0)


def build_prompts(indices):
    return [Prompt(TEXTS[t], GRAPHS[g]) for t, g in indices]


def assert_result_parity(scalar, batched):
    assert len(scalar) == len(batched)
    for expected, actual in zip(scalar, batched):
        assert actual.intent == expected.intent
        assert actual.graph_type == expected.graph_type
        assert actual.retrieved == expected.retrieved
        assert actual.used_fallback == expected.used_fallback
        # byte-identical chains, not just equal name lists
        assert actual.chain.render() == expected.chain.render()
        if expected.type_prediction is None:
            assert actual.type_prediction is None
        else:
            assert actual.type_prediction.graph_type == \
                expected.type_prediction.graph_type
        if expected.sequences is None:
            assert actual.sequences is None
        else:
            assert actual.sequences.sequences == \
                expected.sequences.sequences
            assert actual.sequences.feature_counts == \
                expected.sequences.feature_counts
        assert set(actual.timings) == set(expected.timings)


# ----------------------------------------------------------------------
# scalar/batch parity for the newly batched stages
# ----------------------------------------------------------------------
class TestNewlyBatchedStageParity:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 16])
    def test_fixed_batch_sizes(self, parity_chatgraph, size):
        """Sizes 1, 2, 16 and odd sizes over the mixed input table."""
        combos = [(t % len(TEXTS), (t * 3 + 1) % len(GRAPHS))
                  for t in range(size)]
        pipeline = parity_chatgraph.pipeline
        scalar = [pipeline.process(p) for p in build_prompts(combos)]
        batched = pipeline.process_batch(build_prompts(combos))
        assert_result_parity(scalar, batched)

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(indices=prompt_indices)
    def test_arbitrary_mixed_batches(self, parity_chatgraph, indices):
        pipeline = parity_chatgraph.pipeline
        scalar = [pipeline.process(p) for p in build_prompts(indices)]
        batched = pipeline.process_batch(build_prompts(indices))
        assert_result_parity(scalar, batched)

    def test_distance_computation_parity(self, parity_chatgraph):
        """The batched path spends exactly the scalar ANN budget."""
        pipeline = parity_chatgraph.pipeline
        index = pipeline.retriever.index
        combos = [(t, g) for t in range(len(TEXTS))
                  for g in range(len(GRAPHS))]
        base = index.distance_computations
        scalar = [pipeline.process(p) for p in build_prompts(combos)]
        scalar_work = index.distance_computations - base
        base = index.distance_computations
        batched = pipeline.process_batch(build_prompts(combos))
        batched_work = index.distance_computations - base
        assert scalar_work > 0
        assert batched_work == scalar_work
        assert_result_parity(scalar, batched)

    def test_duplicate_prompts_share_one_verdict(self, parity_chatgraph):
        """A batch of identical prompts returns identical results."""
        pipeline = parity_chatgraph.pipeline
        prompts = build_prompts([(1, 2)] * 5)
        expected = pipeline.process(prompts[0])
        for result in pipeline.process_batch(prompts):
            assert result.chain.render() == expected.chain.render()
            assert result.intent == expected.intent

    def test_content_equal_graphs_merge_into_one_group(self):
        """Fingerprint merging unifies equal-but-distinct graphs."""
        ctxs = [StageContext({"prompt": p}) for p in build_prompts(
            [(0, 2), (1, 4), (2, 0), (3, 2)])]
        no_graph, groups = _group_contexts_by_graph(ctxs)
        assert no_graph == [ctxs[2]]
        # GRAPHS[2] and GRAPHS[4] are distinct objects, same content
        assert sorted(len(group) for group in groups) == [3]
        no_graph, groups = _group_contexts_by_graph(
            ctxs, content_keyed=False)
        assert no_graph == [ctxs[2]]
        assert sorted(len(group) for group in groups) == [1, 2]


# ----------------------------------------------------------------------
# failure isolation (satellite: one poisoned context degrades itself)
# ----------------------------------------------------------------------
class _Boom(RuntimeError):
    pass


class _UpperStage(Stage):
    name = "upper"
    inputs = ("text",)
    outputs = ("upper",)

    def run(self, ctx: StageContext) -> None:
        if ctx.text == "poison":
            raise _Boom(ctx.text)
        ctx["upper"] = ctx.text.upper()


class _ExclaimStage(Stage):
    name = "exclaim"
    inputs = ("upper",)
    outputs = ("final",)

    def run(self, ctx: StageContext) -> None:
        ctx["final"] = ctx.upper + "!"


class _WholesaleBoomStage(_UpperStage):
    """Vectorized body that poisons the whole batch invocation."""

    def run_batch(self, ctxs) -> None:
        if any(ctx.text == "poison" for ctx in ctxs):
            raise _Boom("wholesale")
        for ctx in ctxs:
            self.run(ctx)


TEXT_BATCH = ("alpha", "bravo", "charlie", "delta", "echo")


class TestBatchFailureIsolation:
    def _contexts(self, position: int) -> list[StageContext]:
        texts = list(TEXT_BATCH)
        texts[position] = "poison"
        return [StageContext({"text": text}) for text in texts]

    @staticmethod
    def _graph(first: Stage) -> StageGraph:
        return StageGraph([first, _ExclaimStage()], seeds=("text",))

    @pytest.mark.parametrize("position", range(len(TEXT_BATCH)))
    def test_mapped_scalar_isolates_each_position(self, position):
        graph = self._graph(_UpperStage())
        ctxs = self._contexts(position)
        graph.run_batch(ctxs)
        for index, ctx in enumerate(ctxs):
            if index == position:
                assert isinstance(ctx.failure, _Boom)
                assert "final" not in ctx
            else:
                assert ctx.failure is None
                assert ctx.final == TEXT_BATCH[index].upper() + "!"

    @pytest.mark.parametrize("position", range(len(TEXT_BATCH)))
    def test_vectorized_body_failure_retries_scalar(self, position):
        """A wholesale-raising run_batch degrades only the bad ctx."""
        graph = self._graph(_WholesaleBoomStage())
        ctxs = self._contexts(position)
        graph.run_batch(ctxs)
        for index, ctx in enumerate(ctxs):
            if index == position:
                assert isinstance(ctx.failure, _Boom)
                assert "final" not in ctx
            else:
                assert ctx.failure is None
                assert ctx.final == TEXT_BATCH[index].upper() + "!"

    def test_all_contexts_poisoned_short_circuits(self):
        graph = self._graph(_UpperStage())
        ctxs = [StageContext({"text": "poison"}) for _ in range(3)]
        graph.run_batch(ctxs)
        assert all(isinstance(ctx.failure, _Boom) for ctx in ctxs)

    @pytest.mark.parametrize("position", range(4))
    def test_pipeline_poisoned_position(self, parity_chatgraph,
                                        monkeypatch, position):
        """End to end: the poisoned slot holds its exception, every
        other slot matches the scalar result it would have produced."""
        pipeline = parity_chatgraph.pipeline
        marker = "##poisoned##"
        combos = [(0, 1), (1, 2), (5, 0), (6, 3)]
        prompts = build_prompts(combos)
        healthy = [pipeline.process(p) for p in prompts]
        prompts[position] = Prompt(marker, prompts[position].graph)

        classifier = pipeline.intent_classifier
        original = type(classifier).predict

        def poisoned_predict(text: str) -> str:
            if text == marker:
                raise _Boom(text)
            return original(classifier, text)

        monkeypatch.setattr(classifier, "predict", poisoned_predict)
        results = pipeline.process_batch(prompts,
                                         return_exceptions=True)
        assert len(results) == len(prompts)
        for index, result in enumerate(results):
            if index == position:
                assert isinstance(result, _Boom)
            else:
                assert result.chain.render() == \
                    healthy[index].chain.render()
                assert result.intent == healthy[index].intent
        # the historical default re-raises the first failure
        with pytest.raises(_Boom):
            pipeline.process_batch(prompts)
