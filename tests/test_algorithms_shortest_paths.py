"""Tests for shortest paths, eccentricity and diameter."""

import pytest

from repro.algorithms import (
    all_pairs_shortest_lengths,
    diameter,
    dijkstra,
    eccentricity,
    shortest_path,
    shortest_path_length,
)
from repro.errors import GraphError, NodeNotFoundError
from repro.graphs import DiGraph, Graph, cycle_graph, grid_graph, path_graph


class TestShortestPath:
    def test_path_endpoints(self):
        g = grid_graph(3, 3)
        path = shortest_path(g, (0, 0), (2, 2))
        assert path[0] == (0, 0) and path[-1] == (2, 2)
        assert len(path) == 5

    def test_source_equals_target(self):
        g = path_graph(3)
        assert shortest_path(g, 1, 1) == [1]

    def test_consecutive_nodes_adjacent(self):
        g = grid_graph(4, 4)
        path = shortest_path(g, (0, 0), (3, 3))
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)

    def test_no_path_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(GraphError):
            shortest_path(g, 1, 3)

    def test_missing_target_raises(self):
        g = path_graph(2)
        with pytest.raises(NodeNotFoundError):
            shortest_path(g, 0, 99)

    def test_length(self):
        assert shortest_path_length(cycle_graph(6), 0, 3) == 3

    def test_directed(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("b", "c")])
        assert shortest_path(d, "a", "c") == ["a", "b", "c"]
        with pytest.raises(GraphError):
            shortest_path(d, "c", "a")


class TestDijkstra:
    def test_default_unit_weights(self):
        g = path_graph(4)
        assert dijkstra(g, 0)[3] == 3.0

    def test_weighted_detour(self):
        g = Graph()
        g.add_edge("a", "b", weight=10.0)
        g.add_edge("a", "c", weight=1.0)
        g.add_edge("c", "b", weight=1.0)
        assert dijkstra(g, "a")["b"] == 2.0

    def test_negative_weight_raises(self):
        g = Graph()
        g.add_edge(1, 2, weight=-1.0)
        with pytest.raises(GraphError):
            dijkstra(g, 1)

    def test_unreachable_absent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        assert 3 not in dijkstra(g, 1)


class TestDiameterEccentricity:
    def test_path_diameter(self):
        assert diameter(path_graph(6)) == 5

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(8)) == 4

    def test_eccentricity_center_vs_leaf(self):
        g = path_graph(5)
        assert eccentricity(g, 2) == 2
        assert eccentricity(g, 0) == 4

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(GraphError):
            eccentricity(g, 1)

    def test_empty_diameter_raises(self):
        with pytest.raises(GraphError):
            diameter(Graph())

    def test_all_pairs(self):
        g = path_graph(3)
        table = dict(all_pairs_shortest_lengths(g))
        assert table[0][2] == 2
        assert table[2][0] == 2
