"""Fake-clock soak regressions: the scenarios keep telling their story.

The spike scenario is the load generator's reason to exist — a step
overload aligned with a chaos brownout must shed load through
admission backpressure, trip circuit breakers, degrade responses, and
*recover* before the run ends, with the runner's books balancing
exactly against ``server.stats()``.  These tests pin that narrative
end to end, plus the subsystem stories the diurnal scenario exercises
(session TTL eviction, per-client token buckets) both inside a soak
and directly on a :class:`~repro.loadgen.runner.VirtualClock`.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import RateLimitError, SessionError
from repro.loadgen import (
    ConstantRate,
    VirtualClock,
    get_scenario,
    run_scenario,
)
from repro.loadgen.scenarios import build_soak_chatgraph
from repro.serve.admission import RateLimiter
from repro.serve.sessions import SessionStore

CORPUS = 160


@pytest.fixture(scope="module")
def soak_chatgraph():
    """One pretrained model shared by every fault-free soak here."""
    return build_soak_chatgraph(corpus_size=CORPUS, seed=0)


# ---------------------------------------------------------------------------
# the spike story: shed, trip, degrade, recover, reconcile
# ---------------------------------------------------------------------------
class TestSpikeSoak:
    @pytest.fixture(scope="class")
    def spike_report(self):
        scenario = get_scenario("spike", quick=True)
        # chaos wraps the registry *before* finetuning, same as bench-slo
        chatgraph = build_soak_chatgraph(chaos=scenario.chaos,
                                         corpus_size=CORPUS, seed=0)
        return run_scenario(scenario, seed=0, chatgraph=chatgraph,
                            corpus_size=CORPUS)

    def test_slo_gates_pass(self, spike_report):
        verdict = spike_report["slo"]
        failed = [row["gate"] for row in verdict["gates"]
                  if not row["passed"]]
        assert verdict["passed"], f"failed gates: {failed}"

    def test_chaos_injected_faults(self, spike_report):
        injected = spike_report["chaos"]["injected_failures"]
        assert sum(injected.values()) > 0

    def test_breakers_opened_then_recovered(self, spike_report):
        assert spike_report["counters"]["breaker_opened"] >= 1
        timeline = spike_report["breaker_timeline"]
        assert any(entry["open"] for entry in timeline), \
            "no timeline sample caught an open breaker"
        assert timeline[-1]["open"] == [], \
            f"breakers still open at soak end: {timeline[-1]['open']}"

    def test_overload_shed_via_backpressure(self, spike_report):
        overall = spike_report["overall"]
        assert overall["rejected_backpressure"] >= 1
        # shedding happens *in* the spike, not at the steady baseline
        spike_windows = [w for w in spike_report["windows"]
                         if w["rejected_backpressure"] > 0]
        assert spike_windows
        arrival = spike_report["arrival"]
        assert arrival == "step-spike"

    def test_degradation_is_confined(self, spike_report):
        # after the brownout and cooldown the tail windows run clean
        tail = spike_report["windows"][-2:]
        assert all(w["degraded"] == 0 and w["errors"] == 0
                   for w in tail if w["submitted"])

    def test_books_balance_exactly(self, spike_report):
        reconciliation = spike_report["reconciliation"]
        assert reconciliation["exact"], reconciliation


# ---------------------------------------------------------------------------
# steady baseline + determinism of the replay itself
# ---------------------------------------------------------------------------
class TestSteadySoak:
    def test_clean_run_and_repeatable_schedule(self, soak_chatgraph):
        scenario = get_scenario("steady", quick=True)
        first = run_scenario(scenario, seed=0, chatgraph=soak_chatgraph)
        second = run_scenario(scenario, seed=0, chatgraph=soak_chatgraph)
        assert first["slo"]["passed"]
        assert first["overall"]["errors"] == 0
        assert first["overall"]["rejected"] == 0
        assert first["reconciliation"]["exact"]
        assert first["cache_hit_trajectory"][-1] >= 0.3
        # identical seed -> byte-identical schedule and identical books
        assert first["schedule_sha256"] == second["schedule_sha256"]
        assert first["overall"]["submitted"] \
            == second["overall"]["submitted"]
        assert first["schedule_personas"] == second["schedule_personas"]


# ---------------------------------------------------------------------------
# diurnal load exercises TTLs and token buckets organically
# ---------------------------------------------------------------------------
class TestDiurnalSoak:
    @pytest.fixture(scope="class")
    def diurnal_report(self, soak_chatgraph):
        return run_scenario(get_scenario("diurnal", quick=True),
                            seed=0, chatgraph=soak_chatgraph)

    def test_slo_passes_with_bounded_shedding(self, diurnal_report):
        assert diurnal_report["slo"]["passed"]
        assert diurnal_report["reconciliation"]["exact"]

    def test_session_ttl_eviction_happens(self, diurnal_report):
        # troughs leave multi-turn sessions idle past the 45s TTL
        assert diurnal_report["sessions"]["evicted_ttl"] >= 1

    def test_rate_limiter_sheds_at_peak(self, diurnal_report):
        assert diurnal_report["counters"]["rejected_rate_limit"] >= 1
        # idle-bucket eviction bounds memory below one-bucket-per-user
        assert (diurnal_report["rate_limiter"]["clients"]
                < diurnal_report["schedule_users"])


# ---------------------------------------------------------------------------
# real-clock discipline: the same machinery runs on wall time
# ---------------------------------------------------------------------------
class TestRealClockSanity:
    def test_tiny_real_clock_soak(self, soak_chatgraph):
        smoke = get_scenario("smoke", quick=True)
        scenario = dataclasses.replace(
            smoke, duration=3.0, window_seconds=1.5,
            arrival=ConstantRate(rate=1.0))
        report = run_scenario(scenario, seed=0, fake_clock=False,
                              chatgraph=soak_chatgraph)
        assert report["fake_clock"] is False
        assert report["slo"]["passed"]
        assert report["reconciliation"]["exact"]


# ---------------------------------------------------------------------------
# direct subsystem checks on a VirtualClock (no server involved)
# ---------------------------------------------------------------------------
class TestSessionTTLOnVirtualClock:
    def test_idle_sessions_expire_virtually(self, soak_chatgraph):
        clock = VirtualClock()
        store = SessionStore(soak_chatgraph, ttl_seconds=45.0,
                             max_sessions=64, clock=clock)
        store.get_or_create("early")
        clock.advance(30.0)
        store.get_or_create("late")
        store.get_or_create("early")  # refresh: last_used = 30
        clock.advance(50.0)  # early idle 50 > 45, late idle 50 > 45
        assert store.evict_expired() == 2
        with pytest.raises(SessionError):
            store.get("early")

    def test_refresh_defers_eviction(self, soak_chatgraph):
        clock = VirtualClock()
        store = SessionStore(soak_chatgraph, ttl_seconds=45.0,
                             max_sessions=64, clock=clock)
        store.get_or_create("chatty")
        for _ in range(4):
            clock.advance(40.0)  # always under the TTL
            store.get_or_create("chatty")
        assert store.evict_expired() == 0
        assert store.get("chatty").requests == 5


class TestRateLimiterOnVirtualClock:
    def test_bucket_drains_and_refills_virtually(self):
        clock = VirtualClock()
        limiter = RateLimiter(capacity=3, refill_per_second=0.5,
                              clock=clock, idle_seconds=60.0)
        for _ in range(3):
            limiter.admit("peak-user")
        with pytest.raises(RateLimitError) as excinfo:
            limiter.admit("peak-user")
        assert excinfo.value.retry_after > 0.0
        clock.advance(2.0)  # exactly one token refilled
        limiter.admit("peak-user")
        with pytest.raises(RateLimitError):
            limiter.admit("peak-user")

    def test_other_clients_unaffected(self):
        clock = VirtualClock()
        limiter = RateLimiter(capacity=2, refill_per_second=0.5,
                              clock=clock, idle_seconds=60.0)
        limiter.admit("greedy")
        limiter.admit("greedy")
        with pytest.raises(RateLimitError):
            limiter.admit("greedy")
        limiter.admit("polite")  # separate bucket

    def test_idle_full_buckets_are_evicted(self):
        clock = VirtualClock()
        limiter = RateLimiter(capacity=3, refill_per_second=0.5,
                              clock=clock, idle_seconds=60.0)
        for _ in range(3):
            limiter.admit("burst")
        # refill-to-full takes 6s; go long idle past the eviction bar
        clock.advance(120.0)
        limiter.admit("next-day")  # sweep runs on this admit
        assert len(limiter) == 1
