"""Tests for API specs, the registry and chain objects."""

import pytest

from repro.apis import (
    APIChain,
    APIRegistry,
    APISpec,
    Category,
    ChainNode,
    chain_to_graph,
    default_registry,
)
from repro.errors import APIError, ChainError, UnknownAPIError


def make_spec(name="demo_api", category=Category.GENERIC, **kwargs):
    return APISpec(name, "a demo api for tests", category,
                   lambda ctx: 42, **kwargs)


class TestAPISpec:
    def test_bad_name_rejected(self):
        with pytest.raises(APIError):
            APISpec("bad name!", "desc", Category.GENERIC, lambda ctx: 0)

    def test_empty_description_rejected(self):
        with pytest.raises(APIError):
            APISpec("ok_name", "   ", Category.GENERIC, lambda ctx: 0)

    def test_call_merges_params(self):
        spec = APISpec("adder", "adds", Category.GENERIC,
                       lambda ctx, a=0, b=0: a + b,
                       params={"a": 1, "b": 2})
        assert spec.call(None) == 3
        assert spec.call(None, b=10) == 11

    def test_unknown_param_rejected(self):
        spec = make_spec()
        with pytest.raises(APIError):
            spec.call(None, bogus=1)


class TestRegistry:
    def test_register_and_get(self):
        registry = APIRegistry()
        spec = registry.register(make_spec())
        assert registry.get("demo_api") is spec
        assert "demo_api" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = APIRegistry()
        registry.register(make_spec())
        with pytest.raises(APIError):
            registry.register(make_spec())

    def test_unknown_raises(self):
        with pytest.raises(UnknownAPIError):
            APIRegistry().get("nope")

    def test_by_category(self):
        registry = APIRegistry()
        registry.register(make_spec("a1", Category.SOCIAL))
        registry.register(make_spec("a2", Category.MOLECULE))
        registry.register(make_spec("a3", Category.SOCIAL))
        names = [s.name for s in registry.by_category(Category.SOCIAL)]
        assert names == ["a1", "a3"]

    def test_default_registry_complete(self, registry):
        assert len(registry) >= 30
        for required in ("graph_summary", "detect_communities",
                         "similar_molecules", "detect_incorrect_edges",
                         "remove_flagged_edges", "generate_report",
                         "predict_graph_type"):
            assert required in registry

    def test_descriptions_nonempty(self, registry):
        for name, desc in registry.descriptions().items():
            assert desc.strip(), name

    def test_every_category_populated(self, registry):
        for category in Category:
            assert registry.by_category(category), category


class TestChain:
    def test_from_names(self):
        chain = APIChain.from_names(["a", "b"])
        assert chain.api_names() == ["a", "b"]
        assert len(chain) == 2

    def test_render(self):
        chain = APIChain([ChainNode("x"), ChainNode("y", {"k": 5})])
        assert chain.render() == "x -> y(k=5)"

    def test_edit_operations(self):
        chain = APIChain.from_names(["a", "b", "c"])
        chain.remove(1)
        assert chain.api_names() == ["a", "c"]
        chain.insert(1, "z")
        assert chain.api_names() == ["a", "z", "c"]
        chain.replace(0, "q")
        assert chain.api_names() == ["q", "z", "c"]
        chain.append("end")
        assert chain.api_names()[-1] == "end"

    def test_remove_bad_index(self):
        with pytest.raises(ChainError):
            APIChain.from_names(["a"]).remove(5)

    def test_replace_bad_index(self):
        with pytest.raises(ChainError):
            APIChain.from_names(["a"]).replace(3, "x")

    def test_copy_independent(self):
        chain = APIChain.from_names(["a"])
        clone = chain.copy()
        clone.append("b")
        assert len(chain) == 1

    def test_equality(self):
        assert APIChain.from_names(["a"]) == APIChain.from_names(["a"])
        assert APIChain.from_names(["a"]) != APIChain.from_names(["b"])


class TestChainValidation:
    def test_empty_chain_invalid(self, registry):
        with pytest.raises(ChainError):
            APIChain().validate(registry)

    def test_unknown_api_invalid(self, registry):
        with pytest.raises(ChainError):
            APIChain.from_names(["not_an_api"]).validate(registry)

    def test_unknown_param_invalid(self, registry):
        chain = APIChain([ChainNode("count_nodes", {"bogus": 1})])
        with pytest.raises(ChainError):
            chain.validate(registry)

    def test_valid_params_ok(self, registry):
        chain = APIChain([ChainNode("rank_pagerank", {"top": 3})])
        chain.validate(registry)

    def test_forward_dependency_invalid(self, registry):
        chain = APIChain([
            ChainNode("count_nodes", depends_on=()),
            ChainNode("count_edges", depends_on=(5,)),
        ])
        with pytest.raises(ChainError):
            chain.validate(registry)


class TestChainToGraph:
    def test_linear_chain_graph(self):
        chain = APIChain.from_names(["a", "b", "c"])
        graph = chain_to_graph(chain)
        assert graph.number_of_nodes() == 3
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2)
        assert graph.get_node_attr(0, "label") == "a"

    def test_explicit_dependencies(self):
        chain = APIChain([
            ChainNode("a"),
            ChainNode("b"),
            ChainNode("c", depends_on=(0,)),
        ])
        graph = chain_to_graph(chain)
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)
