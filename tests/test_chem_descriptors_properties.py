"""Tests for molecular descriptors, property models and the database."""

import pytest

from repro.chem import (
    MoleculeDatabase,
    descriptor_profile,
    h_bond_acceptors,
    h_bond_donors,
    heavy_atom_count,
    logp,
    molecular_formula,
    molecular_weight,
    parse_smiles,
    predict_solubility,
    predict_toxicity,
    ring_count,
    rotatable_bonds,
    structural_alerts,
    tpsa,
)
from repro.chem.properties import druglikeness_summary, lipinski_violations
from repro.errors import ChatGraphError


class TestFormulaWeight:
    @pytest.mark.parametrize("smiles,formula,weight", [
        ("C", "CH4", 16.04),
        ("CCO", "C2H6O", 46.07),
        ("c1ccccc1", "C6H6", 78.11),
        ("CC(=O)Oc1ccccc1C(=O)O", "C9H8O4", 180.16),
        ("Cn1cnc2c1c(=O)n(C)c(=O)n2C", "C8H10N4O2", 194.19),
        ("NC(=O)N", "CH4N2O", 60.06),
        ("ClC(Cl)Cl", "CHCl3", 119.37),
    ])
    def test_known_molecules(self, smiles, formula, weight):
        mol = parse_smiles(smiles)
        assert molecular_formula(mol) == formula
        assert molecular_weight(mol) == pytest.approx(weight, abs=0.1)

    def test_hill_order(self):
        # no carbon -> alphabetical
        assert molecular_formula(parse_smiles("O")) == "H2O"


class TestDescriptors:
    def test_heavy_atoms_and_rings(self):
        mol = parse_smiles("c1ccc2ccccc2c1")  # naphthalene
        assert heavy_atom_count(mol) == 10
        assert ring_count(mol) == 2

    def test_h_bond_donors_acceptors(self):
        mol = parse_smiles("CC(=O)Nc1ccc(O)cc1")  # paracetamol
        assert h_bond_donors(mol) == 2   # N-H, O-H
        assert h_bond_acceptors(mol) == 3  # N + 2 O

    def test_rotatable_bonds_ethane_zero(self):
        assert rotatable_bonds(parse_smiles("CC")) == 0

    def test_rotatable_bonds_butane(self):
        assert rotatable_bonds(parse_smiles("CCCC")) == 1

    def test_logp_hydrophobic_ranking(self):
        # longer alkane chains are more hydrophobic
        assert logp(parse_smiles("CCCCCC")) > logp(parse_smiles("CC"))
        # alcohols are less hydrophobic than alkanes
        assert logp(parse_smiles("CCO")) < logp(parse_smiles("CCC"))

    def test_tpsa_polar_molecules_higher(self):
        assert tpsa(parse_smiles("OCC(O)C(O)CO")) > \
            tpsa(parse_smiles("CCCCC"))
        assert tpsa(parse_smiles("CCCC")) == 0.0

    def test_profile_keys(self):
        profile = descriptor_profile(parse_smiles("CCO"))
        for key in ("formula", "molecular_weight", "logp", "tpsa",
                    "h_bond_donors", "h_bond_acceptors", "rings"):
            assert key in profile


class TestProperties:
    def test_solubility_ordering(self):
        sugar = predict_solubility(parse_smiles("OCC1OC(O)C(O)C(O)C1O"))
        grease = predict_solubility(parse_smiles("CCCCCCCCCCCCCCCC"))
        assert sugar.value > grease.value

    def test_solubility_render(self):
        text = predict_solubility(parse_smiles("CCO")).render()
        assert "solubility" in text

    def test_nitro_alert(self):
        alerts = structural_alerts(parse_smiles("c1ccccc1N(=O)=O"))
        assert "nitro group" in alerts

    def test_aromatic_amine_alert(self):
        alerts = structural_alerts(parse_smiles("Nc1ccccc1"))
        assert "aromatic amine" in alerts

    def test_halogen_alert(self):
        alerts = structural_alerts(parse_smiles("ClC(Cl)Cl"))
        assert any("halogen" in a for a in alerts)

    def test_clean_molecule_no_alerts(self):
        assert structural_alerts(parse_smiles("CCO")) == []

    def test_toxicity_classes(self):
        assert predict_toxicity(parse_smiles("CCO")).value == "low"
        tnt = parse_smiles("Cc1c(N(=O)=O)cc(N(=O)=O)cc1N(=O)=O")
        assert predict_toxicity(tnt).value == "high"

    def test_lipinski(self):
        assert lipinski_violations(parse_smiles("CCO")) == 0
        big = parse_smiles("C" * 40)
        assert lipinski_violations(big) >= 1

    def test_druglikeness_summary(self):
        summary = druglikeness_summary(parse_smiles("CCO"))
        assert summary["lipinski_violations"] == 0
        assert summary["alerts"] == []


class TestDatabase:
    def test_builtin_loads(self, molecule_db):
        assert len(molecule_db) >= 40
        assert "aspirin" in molecule_db

    def test_get_and_missing(self, molecule_db):
        assert molecule_db.get("benzene").n_atoms == 6
        with pytest.raises(ChatGraphError):
            molecule_db.get("unobtainium")

    def test_duplicate_add_rejected(self):
        db = MoleculeDatabase()
        db.add("x", "C")
        with pytest.raises(ChatGraphError):
            db.add("x", "CC")

    def test_self_similarity_first(self, molecule_db):
        hits = molecule_db.similarity_search(molecule_db.get("caffeine"),
                                             k=1, method="wl")
        assert hits[0].name == "caffeine"
        assert hits[0].score == pytest.approx(1.0)

    def test_ged_reranking(self, molecule_db):
        query = parse_smiles("CCCO")  # propanol
        hits = molecule_db.similarity_search(query, k=2, method="ged")
        # butane is one label substitution away (GED 1): the closest
        assert hits[0].name == "butane"
        assert hits[0].score == pytest.approx(0.5)  # 1 / (1 + 1)
        assert hits[0].method == "ged"

    def test_bad_method(self, molecule_db):
        with pytest.raises(ChatGraphError):
            molecule_db.similarity_search(parse_smiles("C"), method="xxx")

    def test_k_larger_than_db(self):
        db = MoleculeDatabase()
        db.add("only", "C")
        hits = db.similarity_search(parse_smiles("C"), k=5)
        assert len(hits) == 1
