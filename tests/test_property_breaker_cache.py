"""Property-based tests (seeded stdlib random) for breaker and cache.

Each property run drives the real implementation and a deliberately
naive reference model through the same randomized operation sequence
and requires them to agree at every step.  Seeds are fixed, so a
failure is a deterministic repro, and the op log carried in the assert
message shows the minimal(ish) path to it.
"""

import random

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.cache import LRUCache


# ----------------------------------------------------------------------
# circuit breaker vs. reference state machine
# ----------------------------------------------------------------------
class ReferenceBreaker:
    """Straight-line model of the documented breaker semantics."""

    def __init__(self, failure_threshold, failure_rate_threshold,
                 window_size, cooldown_seconds, half_open_max_calls):
        self.failure_threshold = failure_threshold
        self.failure_rate_threshold = failure_rate_threshold
        self.window_size = window_size
        self.cooldown_seconds = cooldown_seconds
        self.half_open_max_calls = half_open_max_calls
        self.window = []  # True = success
        self.state = "closed"
        self.opened_at = 0.0
        self.probes = 0
        self.times_opened = 0

    def _roll(self, now):
        if self.state == "open" and \
                now - self.opened_at >= self.cooldown_seconds:
            self.state = "half_open"
            self.probes = 0

    def _trip(self, now):
        self.state = "open"
        self.opened_at = now
        self.times_opened += 1

    def allow(self, now):
        self._roll(now)
        if self.state == "open":
            return False
        if self.state == "half_open":
            if self.probes >= self.half_open_max_calls:
                return False
            self.probes += 1
        return True

    def record_success(self, now):
        if self.state == "half_open":
            self.state = "closed"
            self.window = []
            return
        self.window = (self.window + [True])[-self.window_size:]

    def record_failure(self, now):
        if self.state == "half_open":
            self._trip(now)
            return True
        if self.state == "open":
            return False
        self.window = (self.window + [False])[-self.window_size:]
        failures = self.window.count(False)
        if failures >= self.failure_threshold and \
                failures / len(self.window) >= self.failure_rate_threshold:
            self._trip(now)
            return True
        return False

    def observed_state(self, now):
        self._roll(now)
        return self.state


@pytest.mark.parametrize("seed", range(8))
def test_breaker_agrees_with_reference_model(seed):
    rng = random.Random(seed)
    params = dict(
        failure_threshold=rng.randint(1, 4),
        failure_rate_threshold=rng.choice((0.25, 0.5, 0.9, 1.0)),
        window_size=rng.randint(4, 10),
        cooldown_seconds=rng.uniform(1.0, 5.0),
        half_open_max_calls=rng.randint(1, 3),
    )
    params["window_size"] = max(params["window_size"],
                                params["failure_threshold"])
    now = [0.0]
    real = CircuitBreaker(clock=lambda: now[0], **params)
    model = ReferenceBreaker(**params)
    log = [f"params={params}"]
    for step in range(300):
        op = rng.choice(("success", "failure", "allow", "advance",
                         "advance_big"))
        log.append(f"t={now[0]:.2f} {op}")
        context = f"seed={seed} step={step}\n" + "\n".join(log[-12:])
        if op == "success":
            real.record_success()
            model.record_success(now[0])
        elif op == "failure":
            assert real.record_failure() == \
                model.record_failure(now[0]), context
        elif op == "allow":
            assert real.allow() == model.allow(now[0]), context
        elif op == "advance":
            now[0] += rng.uniform(0.0, 1.5)
        else:
            now[0] += params["cooldown_seconds"] + rng.uniform(0.0, 1.0)
        assert real.state.value == model.observed_state(now[0]), context
        assert real.times_opened == model.times_opened, context


@pytest.mark.parametrize("seed", range(4))
def test_breaker_open_never_allows_before_cooldown(seed):
    rng = random.Random(100 + seed)
    now = [0.0]
    breaker = CircuitBreaker(failure_threshold=2,
                             failure_rate_threshold=0.5,
                             window_size=4, cooldown_seconds=10.0,
                             clock=lambda: now[0])
    breaker.record_failure()
    assert breaker.record_failure()  # trips
    for __ in range(50):
        now[0] += rng.uniform(0.0, 9.999 / 50)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() > 0.0
    now[0] += 10.0
    assert breaker.allow()  # half-open probe
    assert breaker.retry_after() == 0.0


def test_breaker_halfopen_probe_budget():
    now = [0.0]
    breaker = CircuitBreaker(failure_threshold=1,
                             failure_rate_threshold=1.0,
                             window_size=2, cooldown_seconds=1.0,
                             half_open_max_calls=2,
                             clock=lambda: now[0])
    breaker.record_failure()
    now[0] += 1.0
    assert breaker.allow() and breaker.allow()  # two probes
    assert not breaker.allow()  # budget exhausted
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


# ----------------------------------------------------------------------
# LRU cache vs. reference model
# ----------------------------------------------------------------------
class ReferenceLRU:
    """List-based model: most recently used last, evict from front."""

    def __init__(self, maxsize):
        self.maxsize = maxsize
        self.items = []  # (key, value), LRU first
        self.hits = self.misses = self.evictions = 0

    def _find(self, key):
        for index, (k, __) in enumerate(self.items):
            if k == key:
                return index
        return -1

    def get(self, key):
        index = self._find(key)
        if index < 0:
            self.misses += 1
            return None
        entry = self.items.pop(index)
        self.items.append(entry)
        self.hits += 1
        return entry[1]

    def put(self, key, value):
        index = self._find(key)
        if index >= 0:
            self.items.pop(index)
            self.items.append((key, value))
            return
        self.items.append((key, value))
        while len(self.items) > self.maxsize:
            self.items.pop(0)
            self.evictions += 1

    def get_or_compute(self, key, compute):
        value = self.get(key)  # counts the hit or the miss, like real
        if value is not None:
            return value
        value = compute()
        self.put(key, value)
        return value


@pytest.mark.parametrize("seed", range(8))
def test_lru_agrees_with_reference_model(seed):
    rng = random.Random(seed)
    maxsize = rng.randint(1, 8)
    real = LRUCache(maxsize=maxsize)
    model = ReferenceLRU(maxsize=maxsize)
    keys = [f"k{index}" for index in range(maxsize * 3)]
    log = [f"maxsize={maxsize}"]
    for step in range(400):
        key = rng.choice(keys)
        op = rng.choice(("get", "put", "get_or_compute", "len"))
        log.append(f"{op} {key}")
        context = f"seed={seed} step={step}\n" + "\n".join(log[-10:])
        if op == "get":
            assert real.get(key) == model.get(key), context
        elif op == "put":
            value = f"v{step}"
            real.put(key, value)
            model.put(key, value)
        elif op == "get_or_compute":
            value = f"c{step}"
            assert real.get_or_compute(key, lambda: value) == \
                model.get_or_compute(key, lambda: value), context
        else:
            assert len(real) == len(model.items), context
        # invariants after every operation
        assert len(real) <= maxsize, context
        stats = real.stats()
        assert stats.hits == model.hits, context
        assert stats.misses == model.misses, context
        assert stats.evictions == model.evictions, context
        for k, v in model.items:
            assert k in real, context
            assert real.get(k) == v  # refresh both orders identically
            model.get(k)


@pytest.mark.parametrize("seed", range(4))
def test_lru_eviction_order_is_lru(seed):
    rng = random.Random(200 + seed)
    maxsize = 4
    real = LRUCache(maxsize=maxsize)
    model = ReferenceLRU(maxsize=maxsize)
    for step in range(200):
        key = f"k{rng.randint(0, 9)}"
        real.put(key, step)
        model.put(key, step)
        if rng.random() < 0.5:
            probe = f"k{rng.randint(0, 9)}"
            assert real.get(probe) == model.get(probe)
    # surviving set and its recency order agree exactly
    survivors = [k for k, __ in model.items]
    assert len(real) == len(survivors)
    assert all(k in real for k in survivors)


def test_lru_hit_rate_and_clear():
    cache = LRUCache(maxsize=2)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("zz") is None
    stats = cache.stats()
    assert stats.hit_rate == pytest.approx(0.5)
    cache.clear()
    assert len(cache) == 0
    # counters survive clear (they are lifetime totals)
    assert cache.stats().hits == 1
