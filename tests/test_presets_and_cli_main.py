"""Every model preset drives the full system; the CLI entry point works."""

import subprocess
import sys

import pytest

from repro import ChatGraph, ChatGraphConfig
from repro.config import LLMConfig
from repro.core import run_graph_understanding
from repro.graphs import social_network


class TestPresetParity:
    @pytest.mark.parametrize("preset", ["chatglm-sim", "moss-sim",
                                        "vicuna-sim"])
    def test_preset_full_scenario(self, preset):
        config = ChatGraphConfig(llm=LLMConfig(model=preset))
        chatgraph = ChatGraph.pretrained(config=config, corpus_size=600,
                                         seed=0)
        result = run_graph_understanding(
            chatgraph, social_network(30, 3, seed=1))
        assert result.response.record.ok
        assert result.details["graph_type"] == "social"
        assert "generate_report" in result.chain_names


class TestCliMain:
    def test_scripted_session(self):
        script = ("/demo social\n"
                  "how many nodes does the graph have\n"
                  "/show degrees\n"
                  "/quit\n")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--corpus", "300"],
            input=script, capture_output=True, text=True, timeout=240)
        assert completed.returncode == 0
        assert "count_nodes: 50" in completed.stdout
        assert "degree" in completed.stdout
        assert "bye" in completed.stdout

    def test_graph_flag(self, tmp_path):
        import json
        from repro.graphs.io import to_dict
        path = tmp_path / "g.json"
        path.write_text(json.dumps(to_dict(social_network(12, 2,
                                                          seed=0))))
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--corpus", "300",
             "--graph", str(path)],
            input="count the nodes\n/quit\n",
            capture_output=True, text=True, timeout=240)
        assert completed.returncode == 0
        assert "count_nodes: 12" in completed.stdout
