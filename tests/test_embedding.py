"""Tests for tokenization, TF-IDF and the hashing embedder."""

import numpy as np
import pytest

from repro.embedding import (
    HashingEmbedder,
    TfidfModel,
    Vocabulary,
    char_ngrams,
    cosine_distance,
    cosine_similarity,
    l2_distance,
    normalize,
    tokenize,
    word_ngrams,
)
from repro.errors import EmbeddingError


class TestTokenizer:
    def test_basic(self):
        assert tokenize("Count the triangles!") == ["count", "triangles"]

    def test_stop_words_kept_on_request(self):
        assert "the" in tokenize("the graph", drop_stop_words=False)

    def test_numbers_kept(self):
        assert tokenize("top 5 nodes") == ["top", "5", "nodes"]

    def test_word_ngrams(self):
        assert list(word_ngrams(["a", "b", "c"], 2)) == ["a b", "b c"]
        assert list(word_ngrams(["a"], 2)) == []
        with pytest.raises(ValueError):
            list(word_ngrams(["a"], 0))

    def test_char_ngrams_normalized(self):
        grams = list(char_ngrams("Ab, cd", 3))
        assert "ab " in grams
        with pytest.raises(ValueError):
            list(char_ngrams("abc", 0))


class TestVocabulary:
    def test_from_corpus(self):
        vocab = Vocabulary.from_corpus(["count nodes", "count edges"])
        assert vocab.n_documents == 2
        assert vocab.document_frequency("count") == 2
        assert vocab.document_frequency("edges") == 1
        assert "nodes" in vocab
        assert vocab.index("missing") is None

    def test_ids_stable(self):
        vocab = Vocabulary.from_corpus(["alpha beta"])
        assert vocab.tokens() == ["alpha", "beta"] or \
            vocab.tokens() == ["beta", "alpha"]
        assert len(vocab) == 2


class TestTfidf:
    def test_identical_texts_similarity_one(self):
        model = TfidfModel.fit(["count the nodes", "find communities"])
        assert model.similarity("count nodes", "count nodes") == \
            pytest.approx(1.0)

    def test_relevant_beats_irrelevant(self):
        model = TfidfModel.fit([
            "count the nodes of the graph",
            "detect communities in the network",
            "compute the diameter",
        ])
        target = "count nodes"
        assert model.similarity(target, "count the nodes of the graph") > \
            model.similarity(target, "compute the diameter")

    def test_oov_is_zero_vector(self):
        model = TfidfModel.fit(["alpha beta"])
        assert np.allclose(model.transform("gamma delta"), 0.0)

    def test_empty_vocab_raises(self):
        with pytest.raises(EmbeddingError):
            TfidfModel(Vocabulary())


class TestHashingEmbedder:
    def test_unit_norm(self):
        embedder = HashingEmbedder(dim=64)
        v = embedder.embed("count the triangles of G")
        assert np.linalg.norm(v) == pytest.approx(1.0)
        assert v.shape == (64,)

    def test_deterministic(self):
        e = HashingEmbedder(dim=64)
        assert np.allclose(e.embed("hello graph"), e.embed("hello graph"))

    def test_similar_texts_closer(self):
        e = HashingEmbedder(dim=256)
        a = e.embed("detect communities in the social network")
        b = e.embed("find communities of the network")
        c = e.embed("predict molecule toxicity")
        assert cosine_similarity(a, b) > cosine_similarity(a, c)

    def test_empty_text_raises(self):
        with pytest.raises(EmbeddingError):
            HashingEmbedder().embed("?!...")

    def test_stop_words_still_produce_char_features(self):
        # stop-word-only text embeds via char n-grams (robustness)
        v = HashingEmbedder().embed("the of a")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_small_dim_rejected(self):
        with pytest.raises(EmbeddingError):
            HashingEmbedder(dim=4)

    def test_batch_shape(self):
        e = HashingEmbedder(dim=32)
        matrix = e.embed_batch(["one text", "another text"])
        assert matrix.shape == (2, 32)

    def test_tfidf_weighting_changes_vector(self):
        model = TfidfModel.fit(["count nodes", "count edges",
                                "count triangles"])
        plain = HashingEmbedder(dim=128)
        weighted = HashingEmbedder(dim=128, tfidf=model)
        text = "count nodes"
        assert not np.allclose(plain.embed(text), weighted.embed(text))


class TestVectors:
    def test_normalize(self):
        v = normalize(np.array([3.0, 4.0]))
        assert np.linalg.norm(v) == pytest.approx(1.0)
        assert np.allclose(normalize(np.zeros(3)), 0.0)

    def test_l2(self):
        assert l2_distance(np.array([0, 0]), np.array([3, 4])) == 5.0

    def test_cosine(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert cosine_similarity(a, b) == pytest.approx(0.0)
        assert cosine_distance(a, a) == pytest.approx(0.0)
        assert cosine_similarity(a, np.zeros(2)) == 0.0
