"""Tests for the finetuning module: losses, rollouts, dataset, trainer."""

import random

import pytest

from repro.config import FinetuneConfig
from repro.errors import FinetuneError
from repro.finetune import (
    CorpusSpec,
    Finetuner,
    build_corpus,
    chain_ged,
    evaluate_model,
    min_matching_loss,
    node_matching_loss,
    rollout_decode,
    score_candidates,
)
from repro.llm import ChainLanguageModel, TrainingExample
from repro.llm.chain_model import GenerationState


class TestNodeMatchingLoss:
    def test_identical_zero(self):
        assert node_matching_loss(["a", "b"], ["a", "b"]) == 0.0

    def test_substitution(self):
        # one label substitution, edges preserved by the matching
        assert node_matching_loss(["a", "x"], ["a", "b"]) == 1.0

    def test_deletion_includes_regularizer(self):
        # extra node: 1 node del + 1 edge del + alpha * 1 unmatched
        assert node_matching_loss(["a", "b", "c"], ["a", "b"],
                                  alpha=1.0) == 3.0
        assert node_matching_loss(["a", "b", "c"], ["a", "b"],
                                  alpha=0.0) == 2.0

    def test_symmetric(self):
        a, b = ["a", "b", "c"], ["a", "c"]
        assert node_matching_loss(a, b) == node_matching_loss(b, a)

    def test_order_sensitivity_via_edges(self):
        # same multiset, swapped order: node matches are free but chain
        # edges mismatch
        loss = node_matching_loss(["b", "a"], ["a", "b"])
        assert loss > 0.0
        assert chain_ged(["b", "a"], ["a", "b"]) > 0

    def test_empty_chains(self):
        assert node_matching_loss([], []) == 0.0
        assert node_matching_loss(["a"], [], alpha=1.0) == 2.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            node_matching_loss(["a"], ["a"], alpha=-1)

    def test_min_over_equivalents(self):
        truths = [["a", "b"], ["b", "a"]]
        assert min_matching_loss(["b", "a"], truths) == 0.0
        assert min_matching_loss(["a", "b"], truths) == 0.0

    def test_min_requires_truths(self):
        with pytest.raises(ValueError):
            min_matching_loss(["a"], [])


class TestRollout:
    @pytest.fixture()
    def model(self):
        return ChainLanguageModel(api_names=["a", "b", "c", "d"], seed=0)

    def test_score_candidates_keys(self, model):
        s = GenerationState(prompt_text="q", retrieved=("a", "b"))
        scores = score_candidates(model, s, [("a", "b")], rollouts=2)
        assert set(scores) == {"a", "b", "<eos>"}

    def test_gold_start_scores_best(self, model):
        s = GenerationState(prompt_text="q", retrieved=("a", "b", "c"))
        scores = score_candidates(model, s, [("a",)], rollouts=4)
        assert scores["a"] <= min(scores["b"], scores["c"])

    def test_rollout_decode_recovers_gold_untrained(self, model):
        """With gold chains as guidance, rollout decoding is an oracle."""
        s = GenerationState(prompt_text="q",
                            retrieved=("a", "b", "c", "d"))
        out = rollout_decode(model, s, [("c", "a")], rollouts=4,
                             rng=random.Random(0))
        assert out == ["c", "a"]

    def test_rollout_zero_still_guided(self, model):
        s = GenerationState(prompt_text="q", retrieved=("a", "b"))
        out = rollout_decode(model, s, [("b",)], rollouts=0)
        assert out == ["b"]

    def test_eos_wins_on_complete_prefix(self, model):
        s = GenerationState(prompt_text="q", retrieved=("a", "b"),
                            prefix=("a",))
        scores = score_candidates(model, s, [("a",)], rollouts=2)
        assert scores["<eos>"] == 0.0


class TestDataset:
    def test_build_sizes(self, registry):
        train, test = build_corpus(registry,
                                   CorpusSpec(n_examples=50, seed=0))
        assert len(train) + len(test) == 50
        assert len(test) == 10

    def test_deterministic(self, registry):
        spec = CorpusSpec(n_examples=30, seed=7)
        a, __ = build_corpus(registry, spec)
        b, __ = build_corpus(registry, spec)
        assert [x.question for x in a] == [y.question for y in b]

    def test_gold_always_decodable(self, registry):
        train, __ = build_corpus(registry, CorpusSpec(n_examples=40))
        for example in train:
            decodable = set(example.allowed or example.retrieved)
            for chain in example.target_chains:
                assert set(chain) <= decodable

    def test_chains_reference_registry(self, registry):
        train, __ = build_corpus(registry, CorpusSpec(n_examples=40))
        names = set(registry.names())
        for example in train:
            for chain in example.target_chains:
                assert set(chain) <= names

    def test_too_small_rejected(self, registry):
        with pytest.raises(FinetuneError):
            build_corpus(registry, CorpusSpec(n_examples=1))

    def test_graph_tokens_attached(self, registry):
        train, __ = build_corpus(registry, CorpusSpec(n_examples=60))
        assert any(example.graph_tokens for example in train)


class TestTrainer:
    @pytest.fixture(scope="class")
    def corpus(self, registry):
        return build_corpus(registry, CorpusSpec(n_examples=200, seed=2))

    def test_token_objective_learns(self, registry, corpus):
        train, test = corpus
        model = ChainLanguageModel(api_names=registry.names(), seed=0)
        report = Finetuner(model, FinetuneConfig(epochs=4)).train(
            train, test, objective="token")
        assert report.final_metrics.exact_match > 0.6
        assert report.train_losses[-1] < report.train_losses[0]

    def test_matching_objective_learns(self, registry, corpus):
        train, test = corpus
        model = ChainLanguageModel(api_names=registry.names(), seed=0)
        report = Finetuner(model, FinetuneConfig(
            epochs=4, rollouts=2)).train(train, test, objective="matching")
        assert report.final_metrics.exact_match > 0.5

    def test_bad_objective(self, registry, corpus):
        model = ChainLanguageModel(api_names=registry.names())
        with pytest.raises(FinetuneError):
            Finetuner(model).train(corpus[0], objective="magic")

    def test_empty_corpus_rejected(self, registry):
        model = ChainLanguageModel(api_names=registry.names())
        with pytest.raises(FinetuneError):
            Finetuner(model).train([])

    def test_eval_history_length(self, registry, corpus):
        train, test = corpus
        model = ChainLanguageModel(api_names=registry.names())
        report = Finetuner(model, FinetuneConfig(epochs=2)).train(
            train[:40], test[:10], objective="token")
        assert len(report.eval_history) == 2
        assert len(report.train_losses) == 2


class TestMetrics:
    def test_perfect_decoder(self, registry):
        model = ChainLanguageModel(api_names=registry.names())
        examples = [TrainingExample("q", (("count_nodes",),))]
        metrics = evaluate_model(
            model, examples, decoder=lambda m, ex: ["count_nodes"])
        assert metrics.exact_match == 1.0
        assert metrics.mean_matching_loss == 0.0

    def test_set_match_vs_exact(self, registry):
        model = ChainLanguageModel(api_names=registry.names())
        examples = [TrainingExample(
            "q", (("count_nodes", "count_edges"),))]
        metrics = evaluate_model(
            model, examples,
            decoder=lambda m, ex: ["count_edges", "count_nodes"])
        assert metrics.exact_match == 0.0
        assert metrics.set_match == 1.0

    def test_requires_examples(self, registry):
        model = ChainLanguageModel(api_names=registry.names())
        with pytest.raises(ValueError):
            evaluate_model(model, [])

    def test_row_renders(self, registry):
        model = ChainLanguageModel(api_names=registry.names())
        examples = [TrainingExample("q", (("count_nodes",),))]
        metrics = evaluate_model(model, examples,
                                 decoder=lambda m, ex: [])
        assert "exact" in metrics.row()
