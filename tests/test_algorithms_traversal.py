"""Tests for BFS/DFS traversal and bounded simple paths."""

import pytest

from repro.algorithms import (
    bfs_distances,
    bfs_order,
    bfs_tree,
    dfs_order,
    simple_paths,
)
from repro.errors import NodeNotFoundError
from repro.graphs import DiGraph, Graph, cycle_graph, path_graph, star_graph


class TestBfs:
    def test_distances_on_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_unreachable_absent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        d = bfs_distances(g, 1)
        assert 3 not in d

    def test_order_starts_at_source(self):
        g = star_graph(4)
        order = bfs_order(g, 0)
        assert order[0] == 0
        assert set(order) == set(g.nodes())

    def test_tree_parents(self):
        g = path_graph(4)
        parents = bfs_tree(g, 0)
        assert parents == {1: 0, 2: 1, 3: 2}

    def test_directed_follows_arcs(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("c", "a")])
        assert bfs_distances(d, "a") == {"a": 0, "b": 1}

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(Graph(), "x")


class TestDfs:
    def test_preorder_on_path(self):
        g = path_graph(4)
        assert dfs_order(g, 0) == [0, 1, 2, 3]

    def test_reaches_component_only(self):
        g = Graph()
        g.add_edges([(1, 2)])
        g.add_edge(3, 4)
        assert set(dfs_order(g, 1)) == {1, 2}

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            dfs_order(Graph(), 0)


class TestSimplePaths:
    def test_includes_trivial_path(self):
        g = path_graph(3)
        paths = set(simple_paths(g, 0, 0))
        assert paths == {(0,)}

    def test_length_bound(self):
        g = path_graph(5)
        paths = set(simple_paths(g, 0, 2))
        assert (0, 1, 2) in paths
        assert (0, 1, 2, 3) not in paths

    def test_paths_are_simple(self):
        g = cycle_graph(4)
        for path in simple_paths(g, 0, 3):
            assert len(set(path)) == len(path)

    def test_count_on_cycle(self):
        g = cycle_graph(4)
        # from node 0 with l=2: (0,), (0,1), (0,1,2), (0,3), (0,3,2)
        assert len(list(simple_paths(g, 0, 2))) == 5

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            list(simple_paths(path_graph(2), 0, -1))
