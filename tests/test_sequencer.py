"""Tests for the graph sequentializer: path cover, super-graph, serializer."""

import pytest

from repro.config import SequencerConfig
from repro.errors import SequencerError
from repro.graphs import (
    DiGraph,
    Graph,
    complete_graph,
    cycle_graph,
    er_graph,
    molecule_like_graph,
    path_graph,
    social_network,
    star_graph,
)
from repro.sequencer import (
    GraphSequentializer,
    build_supergraph,
    length_constrained_path_cover,
)
from repro.sequencer.serializer import EDGE_TOKEN, node_token


class TestPathCover:
    @pytest.mark.parametrize("seed", range(4))
    def test_full_coverage_uncapped(self, seed):
        g = er_graph(25, 0.15, seed=seed)
        __, stats = length_constrained_path_cover(g, 2)
        assert stats.node_coverage == 1.0
        assert stats.edge_coverage == 1.0

    def test_path_length_respected(self):
        g = er_graph(20, 0.2, seed=1)
        paths, stats = length_constrained_path_cover(g, 2)
        assert stats.max_path_length <= 2
        assert all(len(p) - 1 <= 2 for p in paths)

    def test_paths_start_consistent(self):
        g = cycle_graph(5)
        paths, __ = length_constrained_path_cover(g, 2)
        # every path is a valid walk in g
        for path in paths:
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)

    def test_isolated_node_covered(self):
        g = Graph()
        g.add_node("alone")
        g.add_edge(1, 2)
        paths, stats = length_constrained_path_cover(g, 2)
        assert ("alone",) in paths
        assert stats.node_coverage == 1.0

    def test_bound_respected(self):
        # paper bound: O(|G| * 2^l); with node+edge cover our paths are
        # <= sum over u of (ball nodes + ball edges)
        g = er_graph(40, 0.08, seed=2)
        paths, __ = length_constrained_path_cover(g, 2)
        ball_budget = 0
        from repro.algorithms import bfs_distances
        for u in g.nodes():
            d = {n for n, dist in bfs_distances(g, u).items() if dist <= 2}
            edges = sum(1 for a, b in g.edges() if a in d and b in d)
            ball_budget += len(d) + edges
        assert len(paths) <= ball_budget

    def test_max_paths_cap(self):
        g = complete_graph(10)
        paths, stats = length_constrained_path_cover(g, 3, max_paths=20)
        assert len(paths) == 20
        assert stats.n_paths == 20

    def test_bad_length(self):
        with pytest.raises(SequencerError):
            length_constrained_path_cover(path_graph(3), 0)

    def test_directed_cover(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("b", "c"), ("c", "a")])
        __, stats = length_constrained_path_cover(d, 2)
        assert stats.edge_coverage == 1.0

    def test_deduplication(self):
        g = path_graph(3)
        paths, __ = length_constrained_path_cover(g, 2)
        assert len(paths) == len(set(paths))


class TestSuperGraph:
    def test_clique_contracts(self):
        g = complete_graph(4)
        g.add_edge(0, 99)
        sg = build_supergraph(g)
        motifs = {sg.graph.get_node_attr(n, "motif")
                  for n in sg.graph.nodes()}
        assert "clique" in motifs
        assert sg.graph.number_of_nodes() == 2

    def test_triangle_label(self):
        sg = build_supergraph(complete_graph(3))
        assert sg.graph.get_node_attr(0, "motif") == "triangle"

    def test_all_nodes_assigned(self):
        g = social_network(30, 3, seed=5)
        sg = build_supergraph(g)
        members = set().union(*sg.members.values())
        assert members == set(g.nodes())

    def test_compression_ratio(self):
        sg = build_supergraph(complete_graph(6))
        assert sg.compression_ratio == 6.0
        sg2 = build_supergraph(path_graph(4))
        assert sg2.compression_ratio == 1.0

    def test_supernode_of(self):
        sg = build_supergraph(complete_graph(3))
        assert sg.supernode_of(0) == sg.supernode_of(1)
        with pytest.raises(SequencerError):
            sg.supernode_of("ghost")

    def test_cross_edges_preserved(self):
        g = complete_graph(3)
        h = complete_graph(3)
        merged = Graph()
        for u, v in g.edges():
            merged.add_edge(("a", u), ("a", v))
            merged.add_edge(("b", u), ("b", v))
        merged.add_edge(("a", 0), ("b", 0))
        sg = build_supergraph(merged)
        assert sg.graph.number_of_edges() == 1

    def test_bad_min_size(self):
        with pytest.raises(SequencerError):
            build_supergraph(path_graph(3), min_motif_size=1)


class TestSerializer:
    def test_node_token_uses_labels(self):
        g = Graph()
        g.add_node(0, element="C")
        g.add_node(1)
        assert node_token(g, 0) == "<n:C>"
        assert node_token(g, 1) == "<n:*>"

    def test_sequences_alternate_edge_tokens(self):
        g = molecule_like_graph(1, 2, seed=0)
        out = GraphSequentializer(SequencerConfig(path_length=2)) \
            .sequentialize(g)
        for seq in out.sequences:
            for i, token in enumerate(seq):
                if i % 2 == 1:
                    assert token == EDGE_TOKEN
                else:
                    assert token.startswith("<n:")

    def test_multi_level_produces_super_sequences(self):
        g = social_network(30, 3, p_in=0.4, seed=1)
        out = GraphSequentializer(
            SequencerConfig(multi_level=True)).sequentialize(g)
        assert out.super_sequences
        assert out.supergraph is not None
        assert any(t.startswith("<m:") for seq in out.super_sequences
                   for t in seq)

    def test_single_level_mode(self):
        g = star_graph(4)
        out = GraphSequentializer(
            SequencerConfig(multi_level=False)).sequentialize(g)
        assert out.super_sequences == ()
        assert out.supergraph is None

    def test_feature_counts_cover_both_levels(self):
        g = complete_graph(4)
        out = GraphSequentializer(SequencerConfig()).sequentialize(g)
        tokens = set(out.feature_counts)
        assert any(t.startswith("<n:") for t in tokens)
        assert any(t.startswith("<m:") for t in tokens)

    def test_flat_tokens_have_level_markers(self):
        g = path_graph(3)
        out = GraphSequentializer(SequencerConfig()).sequentialize(g)
        flat = out.flat_tokens()
        assert "<level:0>" in flat

    def test_max_paths_respected(self):
        g = complete_graph(8)
        out = GraphSequentializer(
            SequencerConfig(path_length=3, max_paths=30)).sequentialize(g)
        assert len(out.sequences) <= 30
