"""Tests for the ChatGraph facade and the chat session."""

import pytest

from repro import ChatGraph, ChatGraphConfig, ChatSession
from repro.core.monitoring import ChainMonitor
from repro.errors import ChainError, SessionError
from repro.graphs import social_network


class TestChatGraphFacade:
    def test_ask_round_trip(self, chatgraph, social_graph):
        response = chatgraph.ask("write a brief report for G",
                                 graph=social_graph)
        assert response.record.ok
        assert "Graph report" in response.answer
        assert response.seconds > 0
        assert response.monitor.finished

    def test_ask_without_graph(self, chatgraph):
        response = chatgraph.ask("hello, what can you do?")
        assert isinstance(response.answer, str)

    def test_propose_does_not_execute(self, chatgraph, social_graph):
        result = chatgraph.propose("count the nodes", social_graph)
        assert result.chain.api_names() == ["count_nodes"]

    def test_execute_edited_chain(self, chatgraph, social_graph):
        from repro.apis import APIChain
        result = chatgraph.propose("count the nodes", social_graph)
        record, __ = chatgraph.execute(
            result, chain=APIChain.from_names(["count_edges"]))
        assert record.steps[0].api_name == "count_edges"

    def test_invalid_edited_chain_rejected(self, chatgraph, social_graph):
        from repro.apis import APIChain
        result = chatgraph.propose("count the nodes", social_graph)
        with pytest.raises(ChainError):
            chatgraph.execute(result,
                              chain=APIChain.from_names(["bogus"]))

    def test_results_accessor(self, chatgraph, social_graph):
        response = chatgraph.ask("count the nodes", graph=social_graph)
        assert response.results()["count_nodes"] == 40

    def test_default_database_attached(self, chatgraph):
        assert chatgraph.database is not None
        assert "aspirin" in chatgraph.database

    def test_finetune_report(self):
        cg = ChatGraph(config=ChatGraphConfig())
        from repro.finetune import CorpusSpec
        report = cg.finetune(CorpusSpec(n_examples=60, seed=3),
                             objective="token")
        assert report.final_metrics is not None
        assert report.epochs == cg.config.finetune.epochs


class TestChatSession:
    @pytest.fixture()
    def session(self, chatgraph):
        return ChatSession(chatgraph)

    def test_upload_logged(self, session, social_graph):
        session.upload_graph(social_graph)
        assert session.graph is social_graph
        assert any("uploaded" in turn.text for turn in session.history)

    def test_suggestions_follow_graph_type(self, session, social_graph,
                                           kg_graph):
        assert "Write a brief report for G" in session.suggestions()
        session.upload_graph(social_graph)
        assert any("communities" in s for s in session.suggestions())
        session.upload_graph(kg_graph)
        assert "Clean G" in session.suggestions()

    def test_send_round_trip(self, session, social_graph):
        session.upload_graph(social_graph)
        response = session.send("count the nodes")
        assert response.record.ok
        roles = [turn.role for turn in session.history]
        assert roles.count("user") == 1
        assert roles.count("assistant") == 2  # proposal + answer

    def test_propose_confirm_flow(self, session, social_graph):
        session.upload_graph(social_graph)
        proposal = session.propose("write a brief report for G")
        assert session.pending_chain is proposal.chain
        response = session.confirm()
        assert response.record.ok
        with pytest.raises(SessionError):
            session.confirm()  # nothing pending anymore

    def test_pending_chain_requires_proposal(self, session):
        with pytest.raises(SessionError):
            __ = session.pending_chain

    def test_edit_chain(self, session, social_graph):
        session.upload_graph(social_graph)
        session.propose("write a brief report for G")
        before = len(session.pending_chain)
        session.edit_chain(remove=1)
        assert len(session.pending_chain) == before - 1
        session.edit_chain(append="count_nodes")
        assert session.pending_chain.api_names()[-1] == "count_nodes"
        response = session.confirm()
        assert response.record.ok

    def test_edit_invalid_rejected(self, session, social_graph):
        session.upload_graph(social_graph)
        session.propose("count the nodes")
        with pytest.raises(ChainError):
            session.edit_chain(append="not_an_api")

    def test_reject(self, session, social_graph):
        session.upload_graph(social_graph)
        session.propose("count the nodes")
        session.reject()
        with pytest.raises(SessionError):
            session.confirm()

    def test_reject_requires_pending(self, session):
        with pytest.raises(SessionError):
            session.reject()

    def test_monitor_attached(self, session, social_graph):
        session.upload_graph(social_graph)
        session.propose("count the nodes")
        monitor = ChainMonitor()
        session.confirm(monitor=monitor)
        assert monitor.finished
        assert monitor.progress == 1.0

    def test_transcript(self, session, social_graph):
        session.upload_graph(social_graph)
        session.send("count the nodes")
        transcript = session.transcript()
        assert "user" in transcript and "assistant" in transcript

    def test_cleaning_updates_session_graph(self, chatgraph, kg_graph):
        from repro.kb import TripleStore, corrupt_store
        store = TripleStore.from_graph(kg_graph)
        noisy, injected, __ = corrupt_store(store, 0.08, 0.0, seed=1)
        session = ChatSession(chatgraph)
        noisy_graph = noisy.to_graph()
        session.upload_graph(noisy_graph)
        response = session.send("clean G")
        assert response.record.ok
        # the session graph was replaced by the cleaned export
        assert session.graph is not noisy_graph
        assert session.graph.number_of_edges() < \
            noisy_graph.number_of_edges() + 1
