"""Tracer unit tests: deterministic identity, propagation, exports."""

import json
import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    TIMING_FIELDS,
    Span,
    Tracer,
    check_trace,
    load_trace,
    render_flame,
    spans_to_jsonl,
    structural_order,
    write_trace,
)


class FakeClock:
    """Injectable clock advancing a fixed step per call."""

    def __init__(self, start=0.0, step=0.25):
        self.now = start
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def build_tree(tracer):
    """A small request -> stage -> step tree; returns the root span."""
    with tracer.span("request:ask", kind="request", key="r1") as root:
        with tracer.span("stage:intent", kind="stage"):
            pass
        with tracer.span("stage:generate", kind="stage"):
            with tracer.span("step:count_nodes", kind="step"):
                pass
    return root


class TestSpanIdentity:
    def test_same_seed_same_ids(self):
        ids = []
        for __ in range(2):
            tracer = Tracer(seed=11)
            build_tree(tracer)
            ids.append([s.span_id for s in tracer.finished_spans()])
        assert ids[0] == ids[1]

    def test_identity_is_clock_independent(self):
        slow = Tracer(seed=3, clock=FakeClock(step=5.0),
                      cpu_clock=FakeClock(step=1.0))
        fast = Tracer(seed=3, clock=FakeClock(step=0.001),
                      cpu_clock=FakeClock(step=0.0005))
        build_tree(slow)
        build_tree(fast)
        assert [s.span_id for s in slow.finished_spans()] == \
            [s.span_id for s in fast.finished_spans()]
        # but the timings themselves differ — they come from the clock
        assert slow.finished_spans()[0].wall_seconds != \
            fast.finished_spans()[0].wall_seconds

    def test_different_seed_different_ids(self):
        a, b = Tracer(seed=0), Tracer(seed=1)
        build_tree(a)
        build_tree(b)
        ids_a = {s.span_id for s in a.finished_spans()}
        ids_b = {s.span_id for s in b.finished_spans()}
        assert ids_a.isdisjoint(ids_b)

    def test_root_identity_keyed_not_arrival_ordered(self):
        """Roots with distinct keys get the same IDs in either order."""
        ab, ba = Tracer(seed=0), Tracer(seed=0)
        with ab.span("request", key="aaaa"):
            pass
        with ab.span("request", key="bbbb"):
            pass
        with ba.span("request", key="bbbb"):
            pass
        with ba.span("request", key="aaaa"):
            pass
        ids_ab = {s.span_id for s in ab.finished_spans()}
        ids_ba = {s.span_id for s in ba.finished_spans()}
        assert ids_ab == ids_ba

    def test_duplicate_key_gets_fresh_occurrence_index(self):
        tracer = Tracer(seed=0)
        with tracer.span("request", key="same"):
            pass
        with tracer.span("request", key="same"):
            pass
        first, second = tracer.finished_spans()
        assert first.span_id != second.span_id
        assert (first.index, second.index) == (0, 1)

    def test_sibling_indices_sequential(self):
        tracer = Tracer(seed=0)
        with tracer.span("parent"):
            for __ in range(3):
                with tracer.span("child"):
                    pass
        children = [s for s in tracer.finished_spans()
                    if s.name == "child"]
        assert [c.index for c in children] == [0, 1, 2]


class TestPropagation:
    def test_nesting_sets_parent(self):
        tracer = Tracer(seed=0)
        build_tree(tracer)
        spans = {s.name: s for s in tracer.finished_spans()}
        root = spans["request:ask"]
        assert root.parent_id is None
        assert spans["stage:intent"].parent_id == root.span_id
        assert spans["step:count_nodes"].parent_id == \
            spans["stage:generate"].span_id

    def test_explicit_none_forces_root(self):
        tracer = Tracer(seed=0)
        with tracer.span("outer"):
            with tracer.span("detached", parent=None) as span:
                assert span.parent_id is None

    def test_parent_by_span_id_string(self):
        """A span ID captured on one thread parents spans on another."""
        tracer = Tracer(seed=0)
        with tracer.span("submit") as submit_span:
            captured = tracer.current_id()
        assert captured == submit_span.span_id
        with tracer.span("handled", parent=captured) as span:
            assert span.parent_id == captured

    def test_stacks_are_thread_local(self):
        tracer = Tracer(seed=0)
        seen = {}

        def worker():
            seen["current"] = tracer.current()
            with tracer.span("worker-root") as span:
                seen["parent_id"] = span.parent_id

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the worker thread never saw the main thread's open span
        assert seen["current"] is None
        assert seen["parent_id"] is None

    def test_activate_adopts_without_finishing(self):
        tracer = Tracer(seed=0)
        with tracer.span("root") as root:
            pass
        before = len(tracer.finished_spans())
        with tracer.activate(root):
            assert tracer.current() is root
            with tracer.span("child") as child:
                assert child.parent_id == root.span_id
        # activate() recorded only the child, not root a second time
        assert len(tracer.finished_spans()) == before + 1

    def test_current_outside_any_span(self):
        tracer = Tracer(seed=0)
        assert tracer.current() is None
        assert tracer.current_id() is None


class TestLifecycle:
    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer(seed=0)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.finished_spans()
        assert span.status == "error"
        assert "ValueError: boom" in span.error
        assert span.wall_seconds >= 0.0

    def test_explicit_mark_error_survives_exception(self):
        tracer = Tracer(seed=0)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                span.mark_error("my own message")
                raise RuntimeError("secondary")
        (span,) = tracer.finished_spans()
        assert span.error == "my own message"

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer(seed=0)
        with tracer.span("s", api="count_nodes") as span:
            span.set(attempts=2)
        (span,) = tracer.finished_spans()
        assert span.attrs == {"api": "count_nodes", "attempts": 2}

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(seed=0, max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished_spans()) == 2
        stats = tracer.stats()
        assert stats["spans"] == 2
        assert stats["dropped"] == 3

    def test_max_spans_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_clear_resets_everything(self):
        tracer = Tracer(seed=0, max_spans=1)
        with tracer.span("a", key="k"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.finished_spans() == ()
        assert tracer.stats() == {"spans": 0, "dropped": 0,
                                  "max_spans": 1, "by_kind": {}}
        # occurrence counters reset too: same key -> same root id again
        with tracer.span("a", key="k") as span:
            pass
        assert span.index == 0

    def test_request_spans_selects_one_tree(self):
        tracer = Tracer(seed=0)
        root_a = build_tree(tracer)
        with tracer.span("request:other", key="r2"):
            with tracer.span("stage:intent", kind="stage"):
                pass
        tree = tracer.request_spans(root_a.span_id)
        assert {s.name for s in tree} == {
            "request:ask", "stage:intent", "stage:generate",
            "step:count_nodes"}

    def test_stats_by_kind(self):
        tracer = Tracer(seed=0)
        build_tree(tracer)
        assert tracer.stats()["by_kind"] == {
            "request": 1, "stage": 2, "step": 1}

    def test_cpu_profile_toggle(self):
        on = Tracer(seed=0, profile_cpu=True)
        off = Tracer(seed=0, profile_cpu=False)
        with on.span("s"):
            pass
        with off.span("s"):
            pass
        assert on.finished_spans()[0].cpu_seconds is not None
        assert off.finished_spans()[0].cpu_seconds is None

    def test_alloc_profile_opt_in(self):
        tracer = Tracer(seed=0, profile_alloc=True)
        try:
            with tracer.span("s"):
                __ = [0] * 4096
            (span,) = tracer.finished_spans()
            assert span.alloc_bytes is not None
        finally:
            tracer.shutdown()

    def test_null_span_is_inert(self):
        NULL_SPAN.set(anything=1)
        NULL_SPAN.mark_error("ignored")


class TestExport:
    def test_canonical_drops_timing_fields(self):
        tracer = Tracer(seed=0)
        build_tree(tracer)
        for line in spans_to_jsonl(tracer.finished_spans(),
                                   canonical=True).splitlines():
            data = json.loads(line)
            assert not set(TIMING_FIELDS) & set(data)

    def test_full_export_keeps_timings_and_start_order(self):
        tracer = Tracer(seed=0, clock=FakeClock())
        build_tree(tracer)
        dicts = load_trace(spans_to_jsonl(tracer.finished_spans()))
        assert all("wall_seconds" in d for d in dicts)
        starts = [d["start"] for d in dicts]
        assert starts == sorted(starts)

    def test_canonical_byte_identical_across_clocks(self):
        blobs = []
        for step in (0.001, 7.0):
            tracer = Tracer(seed=5, clock=FakeClock(step=step))
            build_tree(tracer)
            blobs.append(spans_to_jsonl(tracer.finished_spans(),
                                        canonical=True))
        assert blobs[0] == blobs[1]

    def test_structural_order_is_depth_first(self):
        tracer = Tracer(seed=0)
        build_tree(tracer)
        # feed spans in reversed completion order; structure must win
        ordered = structural_order(list(tracer.finished_spans())[::-1])
        assert [d["name"] for d in ordered] == [
            "request:ask", "stage:intent", "stage:generate",
            "step:count_nodes"]

    def test_roundtrip_write_read(self, tmp_path):
        tracer = Tracer(seed=0)
        build_tree(tracer)
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer.finished_spans())
        from repro.obs import read_trace
        spans = read_trace(path)
        assert len(spans) == 4
        assert check_trace(spans) == []

    def test_load_trace_reports_bad_line(self):
        with pytest.raises(ValueError, match="line 2"):
            load_trace('{"span_id": "a"}\nnot json\n')

    def test_check_trace_finds_structural_problems(self):
        ok = {"span_id": "a", "parent_id": None, "name": "root"}
        assert check_trace([ok]) == []
        problems = check_trace([
            ok,
            {"span_id": "a", "parent_id": None, "name": "dup"},
            {"span_id": "b", "parent_id": "missing", "name": "orphan"},
            {"span_id": "c", "parent_id": "c", "name": "loop"},
        ])
        text = "\n".join(problems)
        assert "duplicate span_id a" in text
        assert "unknown parent missing" in text
        assert "own parent" in text

    def test_render_flame_shapes(self):
        tracer = Tracer(seed=0, clock=FakeClock())
        build_tree(tracer)
        full = render_flame(tracer.finished_spans())
        assert "request:ask" in full and "ms" in full
        # canonical traces render with '-' placeholders, no crash
        canonical = load_trace(spans_to_jsonl(tracer.finished_spans(),
                                              canonical=True))
        assert "-" in render_flame(canonical)
        assert render_flame([]) == "(empty trace)"

    def test_render_flame_marks_errors(self):
        tracer = Tracer(seed=0, profile_cpu=False)
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("x")
        assert "!error" in render_flame(tracer.finished_spans())

    def test_span_to_dict_error_field_only_when_set(self):
        span = Span(span_id="a", parent_id=None, name="n", kind="span",
                    index=0, start=0.0)
        assert "error" not in span.to_dict()
        span.mark_error("bad")
        assert span.to_dict()["error"] == "bad"
