"""Tests for the core Graph/DiGraph data structures."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs import DiGraph, Graph


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert len(g) == 0
        assert g.number_of_edges() == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_add_node_with_attrs(self):
        g = Graph()
        g.add_node("a", color="red")
        assert g.has_node("a")
        assert g.get_node_attr("a", "color") == "red"

    def test_add_node_merges_attrs(self):
        g = Graph()
        g.add_node("a", color="red")
        g.add_node("a", size=3)
        assert g.node_attrs("a") == {"color": "red", "size": 3}

    def test_none_node_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node(None)

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2, weight=0.5)
        assert g.has_node(1) and g.has_node(2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.get_edge_attr(1, 2, "weight") == 0.5

    def test_undirected_edge_attrs_shared(self):
        g = Graph()
        g.add_edge("a", "b")
        g.set_edge_attr("b", "a", "w", 7)
        assert g.get_edge_attr("a", "b", "w") == 7

    def test_re_add_edge_merges_attrs(self):
        g = Graph()
        g.add_edge(1, 2, w=1)
        g.add_edge(1, 2, c="x")
        assert g.edge_attrs(1, 2) == {"w": 1, "c": "x"}
        assert g.number_of_edges() == 1

    def test_self_loop(self):
        g = Graph()
        g.add_edge("a", "a")
        assert g.has_edge("a", "a")
        assert g.number_of_edges() == 1
        assert g.degree("a") == 2  # self-loop counts twice

    def test_add_nodes_and_edges_bulk(self):
        g = Graph()
        g.add_nodes(range(3))
        g.add_edges([(0, 1), (1, 2)])
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2


class TestGraphRemoval:
    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_nodes([1, 2])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_remove_node_removes_incident_edges(self):
        g = Graph()
        g.add_edges([(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert not g.has_node(2)
        assert g.has_edge(1, 3)
        assert g.number_of_edges() == 1

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().remove_node("ghost")

    def test_remove_node_with_self_loop(self):
        g = Graph()
        g.add_edge("a", "a")
        g.remove_node("a")
        assert len(g) == 0


class TestGraphQueries:
    def test_neighbors(self):
        g = Graph()
        g.add_edges([(1, 2), (1, 3)])
        assert set(g.neighbors(1)) == {2, 3}
        assert set(g.neighbors(2)) == {1}

    def test_neighbors_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            list(Graph().neighbors("x"))

    def test_degree_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().degree("x")

    def test_edges_reported_once(self):
        g = Graph()
        g.add_edges([(1, 2), (2, 3)])
        edges = list(g.edges())
        assert len(edges) == 2
        assert {frozenset(e) for e in edges} == {frozenset((1, 2)),
                                                 frozenset((2, 3))}

    def test_contains_and_iter(self):
        g = Graph()
        g.add_nodes("abc")
        assert "a" in g
        assert "z" not in g
        assert sorted(g) == ["a", "b", "c"]

    def test_equality_structural(self):
        g1 = Graph()
        g1.add_edge(1, 2, w=1)
        g2 = Graph()
        g2.add_edge(1, 2, w=1)
        assert g1 == g2
        g2.set_edge_attr(1, 2, "w", 2)
        assert g1 != g2

    def test_graphs_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())


class TestGraphDerived:
    def test_copy_is_deep_for_attrs(self):
        g = Graph()
        g.add_edge(1, 2, w=1)
        clone = g.copy()
        clone.set_edge_attr(1, 2, "w", 99)
        assert g.get_edge_attr(1, 2, "w") == 1

    def test_subgraph_induced(self):
        g = Graph()
        g.add_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
        sub = g.subgraph([1, 2, 3])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 3

    def test_subgraph_missing_node_raises(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(NodeNotFoundError):
            g.subgraph([1, 99])

    def test_to_directed_doubles_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        d = g.to_directed()
        assert d.has_edge(1, 2) and d.has_edge(2, 1)
        assert d.number_of_edges() == 2


class TestDiGraph:
    def test_directed_edge_one_way(self):
        d = DiGraph()
        d.add_edge("a", "b")
        assert d.has_edge("a", "b")
        assert not d.has_edge("b", "a")

    def test_successors_predecessors(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("c", "b")])
        assert set(d.successors("a")) == {"b"}
        assert set(d.predecessors("b")) == {"a", "c"}
        assert d.in_degree("b") == 2
        assert d.out_degree("b") == 0
        assert d.degree("b") == 2

    def test_remove_node_cleans_pred(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("b", "c")])
        d.remove_node("b")
        assert set(d.successors("a")) == set()
        assert set(d.predecessors("c")) == set()

    def test_remove_edge_directed(self):
        d = DiGraph()
        d.add_edge("a", "b")
        with pytest.raises(EdgeNotFoundError):
            d.remove_edge("b", "a")
        d.remove_edge("a", "b")
        assert d.number_of_edges() == 0

    def test_reverse(self):
        d = DiGraph()
        d.add_edge("a", "b", relation="r")
        r = d.reverse()
        assert r.has_edge("b", "a")
        assert r.get_edge_attr("b", "a", "relation") == "r"

    def test_to_undirected(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("b", "a")])
        g = d.to_undirected()
        assert g.number_of_edges() == 1

    def test_number_of_edges_counts_arcs(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("b", "a"), ("b", "c")])
        assert d.number_of_edges() == 3

    def test_repr_mentions_counts(self):
        d = DiGraph(name="kg")
        d.add_edge(1, 2)
        assert "kg" in repr(d)
        assert "2 nodes" in repr(d)
