"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    connected_components,
    core_number,
    graph_edit_distance,
    hungarian,
    is_isomorphic,
    wl_kernel_similarity,
)
from repro.embedding import HashingEmbedder
from repro.finetune.losses import min_matching_loss, node_matching_loss
from repro.graphs import Graph
from repro.sequencer import length_constrained_path_cover

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
        lambda e: e[0] != e[1]),
    min_size=0, max_size=25)

small_edge_lists = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(
        lambda e: e[0] != e[1]),
    min_size=0, max_size=8)

api_chains = st.lists(st.sampled_from(["a", "b", "c", "d", "e"]),
                      min_size=0, max_size=6)


def graph_from_edges(edges):
    g = Graph()
    for u, v in edges:
        g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# graph invariants
# ---------------------------------------------------------------------------

@given(edge_lists)
def test_components_partition_nodes(edges):
    g = graph_from_edges(edges)
    components = connected_components(g)
    union = set().union(*components) if components else set()
    assert union == set(g.nodes())
    assert sum(len(c) for c in components) == g.number_of_nodes()


@given(edge_lists)
def test_core_number_bounded_by_degree(edges):
    g = graph_from_edges(edges)
    numbers = core_number(g)
    for node, core in numbers.items():
        assert 0 <= core <= g.degree(node)


@given(edge_lists)
def test_subgraph_of_all_nodes_is_equal(edges):
    g = graph_from_edges(edges)
    assert g.subgraph(list(g.nodes())) == g


@given(edge_lists)
def test_copy_equals_original(edges):
    g = graph_from_edges(edges)
    assert g.copy() == g


@given(edge_lists)
def test_degree_sum_is_twice_edges(edges):
    g = graph_from_edges(edges)
    assert sum(g.degree(n) for n in g.nodes()) == 2 * g.number_of_edges()


# ---------------------------------------------------------------------------
# hungarian vs scipy
# ---------------------------------------------------------------------------

@given(st.integers(1, 6), st.integers(1, 6), st.randoms(use_true_random=False))
@settings(deadline=None)
def test_hungarian_matches_scipy(n, m, rnd):
    from scipy.optimize import linear_sum_assignment
    cost = [[rnd.random() for __ in range(m)] for __ in range(n)]
    __, total = hungarian(cost)
    rows, cols = linear_sum_assignment(np.array(cost))
    assert math.isclose(total, float(np.array(cost)[rows, cols].sum()),
                        abs_tol=1e-9)


# ---------------------------------------------------------------------------
# GED metric-like properties
# ---------------------------------------------------------------------------

@given(small_edge_lists)
def test_ged_identity(edges):
    g = graph_from_edges(edges)
    assert graph_edit_distance(g, g).cost == 0.0


@given(small_edge_lists, small_edge_lists)
@settings(max_examples=40, deadline=None)
def test_ged_symmetry_and_nonnegativity(e1, e2):
    g1, g2 = graph_from_edges(e1), graph_from_edges(e2)
    d12 = graph_edit_distance(g1, g2).cost
    d21 = graph_edit_distance(g2, g1).cost
    assert d12 >= 0
    assert math.isclose(d12, d21, abs_tol=1e-9)


@given(small_edge_lists, small_edge_lists)
@settings(max_examples=30, deadline=None)
def test_ged_zero_iff_isomorphic(e1, e2):
    g1, g2 = graph_from_edges(e1), graph_from_edges(e2)
    if graph_edit_distance(g1, g2).cost == 0.0:
        assert is_isomorphic(g1, g2)


@given(small_edge_lists, small_edge_lists)
@settings(max_examples=30, deadline=None)
def test_wl_similarity_bounds(e1, e2):
    g1, g2 = graph_from_edges(e1), graph_from_edges(e2)
    sim = wl_kernel_similarity(g1, g2)
    assert -1e-9 <= sim <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# path cover invariants (paper Sec. II-B)
# ---------------------------------------------------------------------------

@given(edge_lists, st.integers(1, 3))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_path_cover_complete_and_bounded(edges, max_length):
    g = graph_from_edges(edges)
    if g.number_of_nodes() == 0:
        return
    paths, stats = length_constrained_path_cover(g, max_length)
    assert stats.node_coverage == 1.0
    assert stats.edge_coverage == 1.0
    assert stats.max_path_length <= max_length
    for path in paths:
        assert len(set(path)) == len(path)  # simple
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)  # valid walk


# ---------------------------------------------------------------------------
# node matching-based loss (paper Def. 1)
# ---------------------------------------------------------------------------

@given(api_chains)
def test_matching_loss_identity(chain):
    assert node_matching_loss(chain, chain) == 0.0


@given(api_chains, api_chains)
def test_matching_loss_symmetric_nonnegative(c1, c2):
    loss = node_matching_loss(c1, c2)
    assert loss >= 0.0
    assert math.isclose(loss, node_matching_loss(c2, c1), abs_tol=1e-9)


@given(api_chains, api_chains, st.floats(0.0, 5.0))
def test_matching_loss_monotone_in_alpha(c1, c2, alpha):
    base = node_matching_loss(c1, c2, alpha=0.0)
    assert node_matching_loss(c1, c2, alpha=alpha) >= base - 1e-9


@given(api_chains, st.lists(api_chains, min_size=1, max_size=3))
def test_min_matching_loss_is_minimum(generated, truths):
    best = min_matching_loss(generated, truths)
    assert all(best <= node_matching_loss(generated, t) + 1e-9
               for t in truths)
    assert any(math.isclose(best, node_matching_loss(generated, t),
                            abs_tol=1e-9) for t in truths)


# ---------------------------------------------------------------------------
# embedding invariants
# ---------------------------------------------------------------------------

@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               min_size=3, max_size=40))
@settings(max_examples=50)
def test_embedding_unit_norm_and_deterministic(text):
    embedder = HashingEmbedder(dim=64)
    try:
        v1 = embedder.embed(text)
    except Exception:
        return  # stop-word-only or degenerate text is allowed to raise
    v2 = embedder.embed(text)
    assert np.allclose(v1, v2)
    assert math.isclose(float(np.linalg.norm(v1)), 1.0, abs_tol=1e-9)
