"""Consistent-hash ring properties (hypothesis-driven).

The coordinator's routing correctness rests on three ring properties:
determinism (same key, same owner), stability (removing a shard only
remaps the keys it owned), and well-formed preference walks (distinct
shards, owner first, full coverage).  Hypothesis drives them across
arbitrary shard sets and key populations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.shard import HashRing

shard_sets = st.sets(st.integers(min_value=0, max_value=31),
                     min_size=1, max_size=8)
keys = st.lists(st.text(min_size=1, max_size=16), min_size=1,
                max_size=40, unique=True)


@given(shards=shard_sets, key=st.text(min_size=1, max_size=16))
def test_lookup_deterministic(shards, key):
    a = HashRing(shards)
    b = HashRing(sorted(shards, reverse=True))
    assert a.lookup(key) == b.lookup(key)
    assert a.lookup(key) in shards


@settings(max_examples=50)
@given(shards=st.sets(st.integers(min_value=0, max_value=31),
                      min_size=2, max_size=8),
       key_list=keys)
def test_remove_only_remaps_owned_keys(shards, key_list):
    ring = HashRing(shards)
    before = {key: ring.lookup(key) for key in key_list}
    victim = sorted(shards)[0]
    ring.remove(victim)
    for key, owner in before.items():
        after = ring.lookup(key)
        if owner != victim:
            # stability: keys the victim never owned keep their shard
            assert after == owner
        else:
            assert after != victim
            # the orphaned key moves to its next preference, which the
            # pre-removal walk already predicted
            full = HashRing(shards)
            walk = list(full.preference(key))
            assert after == walk[1]


@settings(max_examples=50)
@given(shards=shard_sets, key_list=keys)
def test_add_back_restores_ownership(shards, key_list):
    ring = HashRing(shards)
    before = {key: ring.lookup(key) for key in key_list}
    extra = max(shards) + 1
    ring.add(extra)
    ring.remove(extra)
    assert {key: ring.lookup(key) for key in key_list} == before


@given(shards=shard_sets, key=st.text(min_size=1, max_size=16))
def test_preference_walk_is_well_formed(shards, key):
    ring = HashRing(shards)
    walk = list(ring.preference(key))
    assert walk[0] == ring.lookup(key)
    assert sorted(walk) == sorted(shards)  # distinct, full coverage
    assert ring.preferred(key, 2) == walk[:2]


def test_membership_errors():
    ring = HashRing([0, 1])
    with pytest.raises(ConfigError):
        ring.add(0)
    with pytest.raises(ConfigError):
        ring.remove(7)
    with pytest.raises(ConfigError):
        HashRing([]).lookup("anything")
    with pytest.raises(ConfigError):
        HashRing(vnodes=0)
    assert list(HashRing([]).preference("k")) == []


def test_vnodes_spread_load():
    ring = HashRing(range(4))
    owners = {ring.lookup(f"key-{i}") for i in range(200)}
    assert owners == {0, 1, 2, 3}
    assert len(ring) == 4
    assert 2 in ring and 9 not in ring
    assert ring.shards == (0, 1, 2, 3)
