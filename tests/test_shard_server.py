"""End-to-end sharded serving: parity, routing, stats, observability.

One module-scoped 2-shard fleet (real worker processes) serves every
test; a small corpus keeps the boot cheap.  The parity tests are the
acceptance core: a sharded response must flatten to the same canonical
bytes as the single-process server's for the same content-seeded
request.
"""

from __future__ import annotations

import pytest

from repro import ChatGraph, ChatGraphServer, ServeConfig, ServeRequest
from repro.errors import ServeError
from repro.shard import ShardModelSpec, ShardedChatGraphServer
from repro.shard.protocol import dumps_canonical, value_to_wire
from repro.testing.workloads import PROMPTS, bench_graphs

CORPUS = 150


@pytest.fixture(scope="module")
def fleet():
    server = ShardedChatGraphServer(
        ShardModelSpec(corpus_size=CORPUS, seed=0),
        ServeConfig(shards=2, workers=1, queue_depth=64))
    with server:
        yield server


@pytest.fixture(scope="module")
def single():
    chatgraph = ChatGraph.pretrained(corpus_size=CORPUS, seed=0)
    server = ChatGraphServer(chatgraph,
                             ServeConfig(workers=1, queue_depth=64))
    with server:
        yield server


def test_fleet_boots_and_serves(fleet):
    graph = bench_graphs(1)[0]
    response = fleet.ask("how many nodes are there", graph=graph)
    assert response.ok
    assert response.worker.startswith("shard-")
    assert "count_nodes" in response.value.answer


def test_parity_with_single_process(fleet, single):
    graphs = bench_graphs(2)
    for op in ("ask", "propose"):
        for text in PROMPTS[:3]:
            for graph in graphs:
                local = single.request(
                    ServeRequest(op=op, text=text, graph=graph))
                remote = fleet.request(
                    ServeRequest(op=op, text=text, graph=graph))
                assert local.ok and remote.ok
                assert dumps_canonical(
                    value_to_wire(op, local.value)) == dumps_canonical(
                    value_to_wire(op, remote.value)), (op, text)


def test_sessions_stick_to_one_shard(fleet):
    graph = bench_graphs(1)[0]
    shards = set()
    for _ in range(3):
        response = fleet.ask("how many nodes are there", graph=graph,
                             session_id="sticky-session")
        assert response.ok
        shards.add(response.worker.split("/")[0])
    assert len(shards) == 1


def test_repeated_queries_reuse_one_shard(fleet):
    graph = bench_graphs(1)[0]
    workers = {fleet.ask("which node is most central",
                         graph=graph).worker.split("/")[0]
               for _ in range(3)}
    assert len(workers) == 1  # q:<graph>|<text> is a stable ring key


def test_execute_is_rejected(fleet):
    proposal = object()  # a live PipelineResult stand-in
    with pytest.raises(ServeError, match="not shardable"):
        fleet.submit(ServeRequest(op="execute", session_id="s-1",
                                  pipeline_result=proposal))


def test_stats_shards_section(fleet):
    stats = fleet.stats()
    shards = stats["shards"]
    assert shards["count"] == 2 and shards["alive"] == 2
    for entry in shards["per_shard"].values():
        assert entry["alive"] is True
        assert entry["pid"] > 0
        assert entry["breaker"]["state"] == "closed"
        assert "counters" in entry  # shard-local detail is nested...
    # ...and coordinator counters stay authoritative (no double count)
    ops = sum(value for name, value in stats["counters"].items()
              if name.startswith("op_"))
    assert stats["counters"]["admitted"] == ops
    assert stats["queue"]["depth"] == 64
    assert "epochs" in stats["store"]


def test_metrics_merge_across_processes(fleet):
    assert fleet.ask("how many nodes are there",
                     graph=bench_graphs(1)[0]).ok
    snapshot = fleet.metrics_snapshot()
    # shard-side counters (executor events from requests served inside
    # worker processes) reach the merged fleet view alongside
    # coordinator-side scatter metrics
    assert snapshot["counters"].get("events_chain_finished", 0) > 0
    assert "scatter_batch_size" in snapshot["histograms"]


def test_single_process_stats_has_empty_shards_section(single):
    shards = single.stats()["shards"]
    assert shards == {"count": 0, "alive": 0, "per_shard": {}}
