"""Tests for VF2 isomorphism and graph similarity measures."""

import pytest

from repro.algorithms import (
    degree_sequence_similarity,
    find_subgraph_isomorphisms,
    is_isomorphic,
    jaccard_edge_similarity,
    subgraph_is_isomorphic,
    wl_kernel_similarity,
)
from repro.errors import GraphError
from repro.graphs import (
    DiGraph,
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)


def element_label(graph, node):
    return graph.get_node_attr(node, "element")


class TestIsomorphism:
    def test_self_isomorphic(self):
        assert is_isomorphic(cycle_graph(5), cycle_graph(5))

    def test_relabeled_isomorphic(self):
        g1 = Graph()
        g1.add_edges([("a", "b"), ("b", "c")])
        g2 = path_graph(3)
        assert is_isomorphic(g1, g2)

    def test_different_structure(self):
        assert not is_isomorphic(cycle_graph(6), path_graph(6))
        assert not is_isomorphic(star_graph(3), path_graph(4))

    def test_size_mismatch_fast_reject(self):
        assert not is_isomorphic(path_graph(3), path_graph(4))

    def test_label_aware(self):
        g1 = Graph()
        g1.add_node(0, element="C")
        g1.add_node(1, element="O")
        g1.add_edge(0, 1)
        g2 = Graph()
        g2.add_node(0, element="C")
        g2.add_node(1, element="N")
        g2.add_edge(0, 1)
        assert is_isomorphic(g1, g2)  # unlabeled view matches
        assert not is_isomorphic(g1, g2, node_label=element_label)


class TestSubgraphIsomorphism:
    def test_path_in_cycle(self):
        assert subgraph_is_isomorphic(path_graph(3), cycle_graph(5))

    def test_triangle_not_in_cycle(self):
        assert not subgraph_is_isomorphic(complete_graph(3), cycle_graph(6))

    def test_induced_vs_monomorphism(self):
        # path_3 is a (non-induced) subgraph of K3 but not induced
        assert not subgraph_is_isomorphic(path_graph(3), complete_graph(3),
                                          induced=True)
        assert subgraph_is_isomorphic(path_graph(3), complete_graph(3),
                                      induced=False)

    def test_embedding_count_triangle_in_k4(self):
        # K4 has 4 triangles x 6 automorphisms = 24 embeddings
        embeddings = find_subgraph_isomorphisms(complete_graph(3),
                                                complete_graph(4))
        assert len(embeddings) == 24

    def test_limit(self):
        embeddings = find_subgraph_isomorphisms(
            path_graph(2), complete_graph(5), limit=3)
        assert len(embeddings) == 3

    def test_pattern_larger_than_target(self):
        assert find_subgraph_isomorphisms(path_graph(5),
                                          path_graph(3)) == []

    def test_mixed_directedness_rejected(self):
        d = DiGraph()
        d.add_edge(1, 2)
        with pytest.raises(GraphError):
            subgraph_is_isomorphic(d, path_graph(3))

    def test_directed_embedding(self):
        p = DiGraph()
        p.add_edge("x", "y")
        t = DiGraph()
        t.add_edges([(1, 2), (3, 2)])
        embeddings = find_subgraph_isomorphisms(p, t, induced=False)
        targets = {(e["x"], e["y"]) for e in embeddings}
        assert targets == {(1, 2), (3, 2)}


class TestSimilarity:
    def test_wl_identical_is_one(self):
        assert wl_kernel_similarity(cycle_graph(6),
                                    cycle_graph(6)) == pytest.approx(1.0)

    def test_wl_isomorphism_invariant(self):
        g1 = Graph()
        g1.add_edges([("a", "b"), ("b", "c"), ("c", "a")])
        assert wl_kernel_similarity(g1,
                                    complete_graph(3)) == pytest.approx(1.0)

    def test_wl_discriminates(self):
        sim_close = wl_kernel_similarity(path_graph(6), path_graph(7))
        sim_far = wl_kernel_similarity(path_graph(6), complete_graph(6))
        assert sim_close > sim_far

    def test_wl_label_sensitive(self):
        g1 = Graph()
        g1.add_node(0, label="C")
        g2 = Graph()
        g2.add_node(0, label="O")
        assert wl_kernel_similarity(g1, g2) < 1.0

    def test_wl_empty_graphs(self):
        assert wl_kernel_similarity(Graph(), Graph()) == 1.0

    def test_jaccard(self):
        g1 = Graph()
        g1.add_edges([(1, 2), (2, 3)])
        g2 = Graph()
        g2.add_edges([(1, 2), (3, 4)])
        assert jaccard_edge_similarity(g1, g2) == pytest.approx(1 / 3)
        assert jaccard_edge_similarity(Graph(), Graph()) == 1.0

    def test_degree_sequence(self):
        assert degree_sequence_similarity(
            cycle_graph(5), cycle_graph(9)) == pytest.approx(1.0)
        assert degree_sequence_similarity(
            star_graph(5), cycle_graph(5)) < 1.0
