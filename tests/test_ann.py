"""Tests for the ANN indexes (brute force, MRNG, tau-MG, HNSW)."""

import numpy as np
import pytest

from repro.ann import (
    BruteForceIndex,
    HNSWIndex,
    MRNGIndex,
    TauMGIndex,
    evaluate_index,
    recall_at_k,
)
from repro.ann.evaluation import ground_truth
from repro.errors import IndexError_


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.normal(size=(600, 12))


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(43)
    return rng.normal(size=(25, 12))


class TestBruteForce:
    def test_exact_nearest(self, data):
        index = BruteForceIndex().build(data)
        hits = index.search(data[17], k=1)
        assert hits[0].vector_id == 17
        assert hits[0].distance == pytest.approx(0.0)

    def test_sorted_by_distance(self, data):
        index = BruteForceIndex().build(data)
        hits = index.search(np.zeros(12), k=10)
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)

    def test_k_capped_at_n(self):
        index = BruteForceIndex().build(np.eye(3))
        assert len(index.search(np.zeros(3), k=10)) == 3

    def test_counts_distances(self, data):
        index = BruteForceIndex().build(data)
        index.reset_counters()
        index.search(np.zeros(12), k=1)
        assert index.distance_computations == len(data)


class TestValidation:
    def test_search_before_build(self):
        with pytest.raises(IndexError_):
            BruteForceIndex().search(np.zeros(3))

    def test_bad_data_shape(self):
        with pytest.raises(IndexError_):
            BruteForceIndex().build(np.zeros((0, 4)))
        with pytest.raises(IndexError_):
            BruteForceIndex().build(np.zeros(5))

    def test_bad_query_dim(self, data):
        index = BruteForceIndex().build(data)
        with pytest.raises(IndexError_):
            index.search(np.zeros(5))

    def test_bad_k(self, data):
        index = BruteForceIndex().build(data)
        with pytest.raises(IndexError_):
            index.search(np.zeros(12), k=0)

    def test_bad_tau(self):
        with pytest.raises(IndexError_):
            TauMGIndex(tau=-0.1)


class TestProximityGraphs:
    @pytest.mark.parametrize("index_cls", [MRNGIndex, TauMGIndex])
    def test_high_recall(self, data, queries, index_cls):
        index = index_cls().build(data)
        truth = ground_truth(data, queries, 10)
        result = evaluate_index(index, data, queries, k=10, truth=truth)
        assert result.recall > 0.85

    def test_tau_mg_superset_of_mrng_edges(self, data):
        """Def. 3 with tau>0 occludes *less*, so tau-MG keeps >= edges."""
        mrng = MRNGIndex(max_degree=16).build(data)
        taumg = TauMGIndex(tau=0.1, max_degree=16).build(data)
        assert taumg.n_edges() >= mrng.n_edges()

    def test_every_node_reachable(self, data):
        index = TauMGIndex().build(data)
        reachable = index._reachable_from_entry(len(data))
        assert len(reachable) == len(data)

    def test_single_point(self):
        index = TauMGIndex().build(np.array([[1.0, 2.0]]))
        hits = index.search(np.array([0.0, 0.0]), k=1)
        assert hits[0].vector_id == 0

    def test_self_query_found(self, data):
        index = TauMGIndex().build(data)
        hits = index.search(data[5], k=1)
        assert hits[0].vector_id == 5

    def test_routing_hops_bounded(self, data, queries):
        index = TauMGIndex().build(data)
        for q in queries[:5]:
            assert index.routing_hops(q) < len(data)

    def test_fewer_distances_than_brute_force(self, data, queries):
        index = TauMGIndex().build(data)
        index.reset_counters()
        for q in queries:
            index.search(q, k=10)
        per_query = index.distance_computations / len(queries)
        assert per_query < len(data) / 2


class TestHNSW:
    def test_high_recall(self, data, queries):
        index = HNSWIndex(seed=1).build(data)
        truth = ground_truth(data, queries, 10)
        result = evaluate_index(index, data, queries, k=10, truth=truth)
        assert result.recall > 0.85

    def test_deterministic_per_seed(self, data):
        a = HNSWIndex(seed=7).build(data)
        b = HNSWIndex(seed=7).build(data)
        q = np.zeros(12)
        assert [h.vector_id for h in a.search(q, 5)] == \
            [h.vector_id for h in b.search(q, 5)]

    def test_bad_params(self):
        with pytest.raises(IndexError_):
            HNSWIndex(m=0)


class TestEvaluation:
    def test_recall_at_k(self):
        assert recall_at_k([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)
        assert recall_at_k([], []) == 1.0

    def test_brute_force_perfect(self, data, queries):
        index = BruteForceIndex().build(data)
        result = evaluate_index(index, data, queries, k=5)
        assert result.recall == 1.0
        assert result.epsilon_satisfaction == 1.0

    def test_result_row_renders(self, data, queries):
        index = BruteForceIndex().build(data)
        result = evaluate_index(index, data, queries[:3], k=5, name="bf")
        assert "bf" in result.row()
        assert "recall" in result.row()
