"""The stage-graph runtime: validation, middleware, type hints."""

import inspect
import typing

import pytest

from repro.config import ChatGraphConfig
from repro.errors import ConfigError
from repro.llm.prompts import Prompt
from repro.obs import StageProfiler, Tracer
from repro.serve.cache import LRUCache, PipelineCaches
from repro.core import chatgraph as chatgraph_module
from repro.core import pipeline as pipeline_module
from repro.core import stages as stages_module
from repro.core.pipeline import ChatPipeline
from repro.core.stages import (
    CacheMiddleware,
    CANONICAL_STAGE_NAMES,
    Stage,
    StageContext,
    StageGraph,
    StageMiddleware,
    TimingMiddleware,
    TracingMiddleware,
)


class _Producer(Stage):
    name = "produce"
    inputs = ("seed",)
    outputs = ("value",)

    def run(self, ctx):
        ctx["value"] = ctx.seed * 2


class _Consumer(Stage):
    name = "consume"
    inputs = ("value",)
    outputs = ("result",)

    def run(self, ctx):
        ctx["result"] = ctx.value + 1


class TestStageGraphValidation:
    def test_valid_graph_runs(self):
        graph = StageGraph([_Producer(), _Consumer()], seeds=("seed",))
        ctx = graph.run(StageContext({"seed": 3}))
        assert ctx.result == 7
        assert graph.stage_names == ("produce", "consume")

    def test_missing_input_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="consume.*value"):
            StageGraph([_Consumer()], seeds=("seed",))

    def test_order_matters(self):
        with pytest.raises(ConfigError):
            StageGraph([_Consumer(), _Producer()], seeds=("seed",))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            StageGraph([_Producer(), _Producer()], seeds=("seed",))

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigError):
            StageGraph([])

    def test_cache_output_must_be_an_output(self):
        class Bad(_Producer):
            cache_name = "x"
            cache_output = "not_an_output"

        with pytest.raises(ConfigError, match="memoizes"):
            StageGraph([Bad()], seeds=("seed",))

    def test_chat_graph_dataflow_is_valid(self, chatgraph):
        graph = chatgraph.pipeline.graph
        assert graph.stage_names == CANONICAL_STAGE_NAMES
        # the repair stage stays out of the observability contract
        assert set(graph.stage_names) - set(graph.observed_stage_names) \
            == {"repair"}

    def test_batch_default_maps_scalar(self):
        graph = StageGraph([_Producer(), _Consumer()], seeds=("seed",))
        ctxs = [StageContext({"seed": i}) for i in range(4)]
        graph.run_batch(ctxs)
        assert [ctx.result for ctx in ctxs] == [1, 3, 5, 7]


class _Recorder(StageMiddleware):
    """Logs enter/exit order to verify onion nesting."""

    def __init__(self, tag, log):
        self.tag = tag
        self.log = log

    def run(self, stage, ctx, call):
        self.log.append(f"{self.tag}>{stage.name}")
        call(ctx)
        self.log.append(f"{self.tag}<{stage.name}")


class TestMiddlewareComposition:
    def test_onion_ordering_outermost_first(self):
        log = []
        graph = StageGraph([_Producer()], seeds=("seed",))
        graph.run(StageContext({"seed": 1}),
                  [_Recorder("a", log), _Recorder("b", log)])
        assert log == ["a>produce", "b>produce", "b<produce", "a<produce"]

    def test_timing_records_observed_stages_only(self):
        class Silent(_Consumer):
            observed = False

        graph = StageGraph([_Producer(), Silent()], seeds=("seed",))
        ctx = graph.run(StageContext({"seed": 1}), [TimingMiddleware()])
        assert set(ctx.timings) == {"produce"}
        assert ctx.timings["produce"] >= 0.0

    def test_batch_timing_is_amortized_share(self):
        graph = StageGraph([_Producer()], seeds=("seed",))
        ctxs = [StageContext({"seed": i}) for i in range(4)]
        graph.run_batch(ctxs, [TimingMiddleware()])
        shares = {ctx.timings["produce"] for ctx in ctxs}
        assert len(shares) == 1  # every item gets the same share

    def test_cache_hit_skips_stage_but_not_outer_middleware(self):
        calls = []

        class Cached(Stage):
            name = "cached"
            inputs = ("seed",)
            outputs = ("value",)
            cache_name = "values"
            cache_output = "value"

            def run(self, ctx):
                calls.append(ctx.seed)
                ctx["value"] = ctx.seed * 10

            def cache_key(self, ctx):
                return ctx.seed

        log = []
        cache = LRUCache(8)
        graph = StageGraph([Cached()], seeds=("seed",))
        chain = [TimingMiddleware(), _Recorder("t", log),
                 CacheMiddleware({"values": cache})]
        first = graph.run(StageContext({"seed": 5}), chain)
        second = graph.run(StageContext({"seed": 5}), chain)
        assert calls == [5]  # body ran once
        assert first.value == second.value == 50
        # the hit still flowed through outer middleware and timing
        assert log == ["t>cached", "t<cached"] * 2
        assert "cached" in second.timings

    def test_cached_falsy_value_is_a_hit(self):
        """The MISS sentinel keeps a cached ``()`` distinct from absent."""
        calls = []

        class Cached(Stage):
            name = "cached"
            inputs = ("seed",)
            outputs = ("value",)
            cache_name = "values"
            cache_output = "value"

            def run(self, ctx):
                calls.append(ctx.seed)
                ctx["value"] = ()

            def cache_key(self, ctx):
                return ctx.seed

        cache = LRUCache(8)
        cache.put(1, ())
        graph = StageGraph([Cached()], seeds=("seed",))
        ctxs = [StageContext({"seed": s}) for s in (1, 1, 2)]
        graph.run_batch(ctxs, [CacheMiddleware({"values": cache})])
        assert calls == [2]  # only the genuinely absent key ran
        assert all(ctx.value == () for ctx in ctxs)

    def test_batch_cache_runs_stage_on_miss_subset_only(self):
        batches = []

        class Cached(Stage):
            name = "cached"
            inputs = ("seed",)
            outputs = ("value",)
            cache_name = "values"
            cache_output = "value"

            def run_batch(self, ctxs):
                batches.append([ctx.seed for ctx in ctxs])
                for ctx in ctxs:
                    ctx["value"] = ctx.seed * 10

            def run(self, ctx):
                self.run_batch([ctx])

            def cache_key(self, ctx):
                return ctx.seed

        cache = LRUCache(8)
        cache.put(2, 20)
        graph = StageGraph([Cached()], seeds=("seed",))
        ctxs = [StageContext({"seed": s}) for s in (1, 2, 3)]
        graph.run_batch(ctxs, [CacheMiddleware({"values": cache})])
        assert batches == [[1, 3]]
        assert [ctx.value for ctx in ctxs] == [10, 20, 30]

    def test_may_cache_false_is_never_stored(self):
        class Degraded(Stage):
            name = "degraded"
            inputs = ("seed",)
            outputs = ("value",)
            cache_name = "values"
            cache_output = "value"

            def run(self, ctx):
                ctx["value"] = ()

            def cache_key(self, ctx):
                return ctx.seed

            def may_cache(self, ctx):
                return False

        cache = LRUCache(8)
        graph = StageGraph([Degraded()], seeds=("seed",))
        graph.run(StageContext({"seed": 9}),
                  [CacheMiddleware({"values": cache})])
        assert len(cache) == 0


class TestPipelineMiddlewareWiring:
    """The ChatPipeline assembles its chain from what is attached."""

    def _types(self, pipeline):
        return [type(mw) for mw in pipeline.middlewares]

    def test_detached_pipeline_has_only_timing(self, chatgraph):
        # The session fixture may arrive with attachments from earlier
        # test modules; detach, assert the bare chain, then restore.
        pipeline = chatgraph.pipeline
        prior = (pipeline.tracer, pipeline.profiler, pipeline.caches)
        try:
            chatgraph.set_tracer(None)
            chatgraph.set_profiler(None)
            chatgraph.enable_caches(None)
            assert self._types(pipeline) == [TimingMiddleware]
        finally:
            chatgraph.set_tracer(prior[0])
            chatgraph.set_profiler(prior[1])
            chatgraph.enable_caches(prior[2])

    def test_attachments_rebuild_the_chain(self, chatgraph):
        pipeline = chatgraph.pipeline
        tracer = Tracer(seed=0)
        profiler = StageProfiler()
        caches = PipelineCaches.with_sizes()
        try:
            chatgraph.set_tracer(tracer)
            chatgraph.set_profiler(profiler)
            chatgraph.enable_caches(caches)
            from repro.core.stages import ProfilingMiddleware
            assert self._types(pipeline) == [
                TimingMiddleware, ProfilingMiddleware, TracingMiddleware,
                CacheMiddleware]
        finally:
            chatgraph.set_tracer(None)
            chatgraph.set_profiler(None)
            chatgraph.enable_caches(None)
        # detaching leaves zero overhead objects on the hot path
        assert self._types(pipeline) == [TimingMiddleware]
        assert pipeline.sequentializer.cache is None
        assert pipeline.retriever.embed_cache is None

    def test_cache_hit_request_still_traced_and_timed(self, chatgraph,
                                                      social_graph):
        pipeline = chatgraph.pipeline
        tracer = Tracer(seed=0)
        caches = PipelineCaches.with_sizes()
        prompt_text = "write a brief report for G"
        try:
            chatgraph.enable_caches(caches)
            chatgraph.set_tracer(tracer)
            first = pipeline.process(Prompt(prompt_text, social_graph))
            warm = caches.retrieval.stats().hits
            second = pipeline.process(Prompt(prompt_text, social_graph))
        finally:
            chatgraph.set_tracer(None)
            chatgraph.enable_caches(None)
        assert caches.retrieval.stats().hits > warm
        assert second.chain.api_names() == first.chain.api_names()
        assert set(second.timings) == \
            set(pipeline.graph.observed_stage_names)
        # both requests emitted the full per-stage span set
        stage_spans = [s for s in tracer.finished_spans()
                       if s.kind == "stage"]
        per_request = len(pipeline.graph.observed_stage_names)
        assert len(stage_spans) == 2 * per_request

    def test_repair_stage_emits_no_span_or_timing(self, chatgraph,
                                                  social_graph):
        pipeline = chatgraph.pipeline
        tracer = Tracer(seed=0)
        try:
            chatgraph.set_tracer(tracer)
            result = pipeline.process(
                Prompt("write a brief report for G", social_graph))
        finally:
            chatgraph.set_tracer(None)
        assert "repair" not in result.timings
        names = {s.name for s in tracer.finished_spans()
                 if s.kind == "stage"}
        assert names == {f"stage:{n}"
                         for n in pipeline.graph.observed_stage_names}


class TestTypeHintsResolve:
    """Regression for the old ``Iterator[Span | NullSpan]`` annotation
    that referenced a never-imported name (a latent
    ``typing.get_type_hints`` failure): every public symbol of the
    pipeline modules must resolve its hints."""

    @pytest.mark.parametrize("module", [pipeline_module, stages_module,
                                        chatgraph_module],
                             ids=lambda m: m.__name__)
    def test_public_symbols_resolve(self, module):
        for name in dir(module):
            if name.startswith("_"):
                continue
            obj = getattr(module, name)
            if inspect.isfunction(obj) and obj.__module__ == \
                    module.__name__:
                typing.get_type_hints(obj)
            elif inspect.isclass(obj) and obj.__module__ == \
                    module.__name__:
                typing.get_type_hints(obj)
                for __, member in inspect.getmembers(
                        obj, inspect.isfunction):
                    typing.get_type_hints(member)
                for __, prop in inspect.getmembers(
                        obj, lambda m: isinstance(m, property)):
                    if prop.fget is not None:
                        typing.get_type_hints(prop.fget)
