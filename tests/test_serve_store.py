"""Serving against the durable graph catalog.

Requests name a stored graph (``graph_name``) instead of shipping an
inline copy; sessions pin the epoch they uploaded; compaction evicts
sessions whose epoch was pruned; and a restarted server resumes serving
the same catalog.  Also guards the seed-stability contract: store-less
requests compute the exact seeds they did before the catalog existed.
"""

from __future__ import annotations

import pytest

from repro import ChatGraph, ChatGraphServer, ServeConfig, ServeRequest
from repro.errors import ServeError, SessionError
from repro.graphs import social_network
from repro.store import GraphCatalog


@pytest.fixture()
def catalog(tmp_path):
    cat = GraphCatalog(tmp_path / "store")
    handle = cat.create("social")
    handle.ingest(social_network(20, 3, seed=1))
    return cat


def make_server(chatgraph, catalog=None, **overrides):
    defaults = dict(workers=2, queue_depth=32)
    defaults.update(overrides)
    return ChatGraphServer(chatgraph, ServeConfig(**defaults),
                           catalog=catalog)


# ----------------------------------------------------------------------
# ChatGraph-level resolution
# ----------------------------------------------------------------------
def test_chatgraph_resolves_graph_names(chatgraph, catalog):
    chatgraph.use_catalog(catalog)
    try:
        result = chatgraph.propose("how many nodes are there?", "social")
        assert result.chain.nodes  # resolved and proposed a chain
        response = chatgraph.ask("how many nodes are there?", "social")
        assert "20" in response.answer
    finally:
        chatgraph.use_catalog(None)


def test_graph_name_without_catalog_is_a_session_error(chatgraph):
    with pytest.raises(SessionError):
        chatgraph.propose("count nodes", "social")


# ----------------------------------------------------------------------
# server-level resolution
# ----------------------------------------------------------------------
def test_server_serves_requests_by_graph_name(chatgraph, catalog):
    server = make_server(chatgraph, catalog=catalog)
    with server:
        response = server.request(ServeRequest(
            op="ask", text="how many nodes are there?",
            graph_name="social"))
    assert response.ok
    assert "20" in response.value.answer
    assert server.stats()["store"]["social"]["nodes"] == 20


def test_store_root_config_builds_the_catalog(chatgraph, tmp_path):
    root = tmp_path / "store"
    GraphCatalog(root).create("g").add_edge("a", "b")
    server = make_server(chatgraph, store_root=str(root))
    with server:
        response = server.request(ServeRequest(
            op="ask", text="how many nodes are there?", graph_name="g"))
    assert response.ok and "2" in response.value.answer


def test_graph_and_graph_name_are_mutually_exclusive(catalog):
    request = ServeRequest(op="ask", text="x",
                           graph=social_network(5, 2, seed=0),
                           graph_name="social")
    with pytest.raises(ServeError):
        request.validate()


def test_unknown_name_and_missing_catalog_fail_cleanly(chatgraph,
                                                       catalog):
    server = make_server(chatgraph, catalog=catalog)
    with server:
        response = server.request(ServeRequest(
            op="ask", text="count", graph_name="nope"))
    assert not response.ok and response.error_type == "StoreError"

    bare = make_server(chatgraph)
    with bare:
        response = bare.request(ServeRequest(
            op="ask", text="count", graph_name="social"))
    assert not response.ok and response.error_type == "ServeError"
    assert "no graph catalog" in response.error


# ----------------------------------------------------------------------
# sessions: epoch pinning, restart survival, compaction eviction
# ----------------------------------------------------------------------
def test_session_pins_graph_ref_and_survives_restart(chatgraph, catalog):
    server = make_server(chatgraph, catalog=catalog)
    with server:
        response = server.request(ServeRequest(
            op="ask", text="how many nodes are there?",
            graph_name="social", session_id="s1"))
        assert response.ok
        entry = server.sessions.get_or_create("s1")
        assert entry.graph_ref == ("social", 0)

    # a new server over the same catalog serves the same graph: the
    # session's graph lives in the durable store, not server memory
    revived = make_server(chatgraph, catalog=catalog)
    with revived:
        response = revived.request(ServeRequest(
            op="ask", text="how many nodes are there?",
            graph_name="social", session_id="s1"))
    assert response.ok and "20" in response.value.answer


def test_compaction_evicts_sessions_pinned_to_pruned_epochs(chatgraph,
                                                            catalog):
    server = make_server(chatgraph, catalog=catalog)
    with server:
        assert server.request(ServeRequest(
            op="ask", text="count the nodes", graph_name="social",
            session_id="pinned")).ok
        assert server.sessions.get("pinned") is not None
        catalog.open("social").compact()
        with pytest.raises(SessionError):
            server.sessions.get("pinned")
        assert server.sessions.stats()["evicted_epoch"] == 1
        # a fresh session immediately pins the compacted epoch
        assert server.request(ServeRequest(
            op="ask", text="count the nodes", graph_name="social",
            session_id="fresh")).ok
        entry = server.sessions.get_or_create("fresh")
        assert entry.graph_ref == ("social", 1)
    # stop() detaches the listener: later compactions are ignored
    catalog.open("social").compact()
    assert server.sessions.get("fresh") is not None


# ----------------------------------------------------------------------
# seed stability (golden-trace safety)
# ----------------------------------------------------------------------
def test_storeless_content_seed_is_unchanged():
    request = ServeRequest(op="ask", text="hello", session_id="s",
                           client_id="c")
    # the exact pre-catalog material: graph_name must not contribute
    import hashlib
    material = "\x1f".join(("7", "ask", "hello", "s", "c"))
    expected = int.from_bytes(
        hashlib.sha256(material.encode("utf-8")).digest()[:8], "little")
    assert request.content_seed(7) == expected


def test_graph_name_contributes_to_the_seed():
    base = ServeRequest(op="ask", text="hello")
    named = ServeRequest(op="ask", text="hello", graph_name="social")
    other = ServeRequest(op="ask", text="hello", graph_name="cites")
    seeds = {base.content_seed(0), named.content_seed(0),
             other.content_seed(0)}
    assert len(seeds) == 3
