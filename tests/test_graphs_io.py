"""Tests for graph serialization (edge lists, adjacency, JSON dicts)."""

import pytest

from repro.errors import GraphIOError
from repro.graphs import (
    DiGraph,
    Graph,
    from_adjacency,
    from_dict,
    from_edgelist,
    parse_edgelist_text,
    read_edgelist,
    to_adjacency,
    to_dict,
    to_edgelist,
    write_edgelist,
)


class TestEdgelist:
    def test_roundtrip_list(self):
        g = from_edgelist([(1, 2), (2, 3)])
        assert sorted(map(sorted, to_edgelist(g))) == [[1, 2], [2, 3]]

    def test_directed_flag(self):
        g = from_edgelist([("a", "b")], directed=True)
        assert isinstance(g, DiGraph)
        assert not g.has_edge("b", "a")

    def test_parse_text_basic(self):
        g = parse_edgelist_text("a b\nb c\n")
        assert g.number_of_edges() == 2

    def test_parse_text_comments_and_blanks(self):
        g = parse_edgelist_text("# comment\n\na b\n")
        assert g.number_of_edges() == 1

    def test_parse_text_attrs(self):
        g = parse_edgelist_text('a b weight=2.5 kind="road"')
        assert g.get_edge_attr("a", "b", "weight") == 2.5
        assert g.get_edge_attr("a", "b", "kind") == "road"

    def test_parse_text_isolated_node(self):
        g = parse_edgelist_text("lonely\na b\n")
        assert g.has_node("lonely")
        assert g.degree("lonely") == 0

    def test_parse_text_bad_attr_raises(self):
        with pytest.raises(GraphIOError):
            parse_edgelist_text("a b notakv")

    def test_file_roundtrip(self, tmp_path):
        g = Graph()
        g.add_edge("x", "y", w=1)
        g.add_node("solo")
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        g2 = read_edgelist(path)
        assert g2.has_edge("x", "y")
        assert g2.get_edge_attr("x", "y", "w") == 1
        assert g2.has_node("solo")


class TestAdjacency:
    def test_roundtrip(self):
        g = from_adjacency({1: [2, 3], 2: [1], 3: []})
        adj = to_adjacency(g)
        assert adj[1] == [2, 3]
        assert adj[3] == [1]

    def test_directed_adjacency(self):
        d = from_adjacency({"a": ["b"], "b": []}, directed=True)
        assert to_adjacency(d) == {"a": ["b"], "b": []}


class TestDictFormat:
    def test_roundtrip_with_attrs(self):
        g = Graph(name="test")
        g.add_node(1, color="red")
        g.add_edge(1, 2, w=3)
        doc = to_dict(g)
        g2 = from_dict(doc)
        assert g2 == g
        assert g2.name == "test"

    def test_directed_roundtrip(self):
        d = DiGraph()
        d.add_edge("a", "b", relation="works_at")
        d2 = from_dict(to_dict(d))
        assert isinstance(d2, DiGraph)
        assert d2.get_edge_attr("a", "b", "relation") == "works_at"

    def test_json_serializable(self):
        import json
        g = Graph()
        g.add_edge("a", "b", weight=1.5)
        text = json.dumps(to_dict(g))
        assert from_dict(json.loads(text)) == g

    def test_malformed_raises(self):
        with pytest.raises(GraphIOError):
            from_dict({"nodes": [{"no_id": 1}]})

    def test_edge_without_source_raises(self):
        with pytest.raises(GraphIOError):
            from_dict({"nodes": [{"id": 1}], "edges": [{"target": 1}]})
