"""Shared fixtures: registries, graphs, and a pretrained ChatGraph."""

from __future__ import annotations

import pytest

from repro import ChatGraph
from repro.apis import default_registry
from repro.chem import MoleculeDatabase
from repro.graphs import (
    er_graph,
    knowledge_graph,
    molecule_like_graph,
    social_network,
)


@pytest.fixture(scope="session")
def registry():
    """The full API catalog (shared; tests must not mutate it)."""
    return default_registry()


@pytest.fixture(scope="session")
def molecule_db():
    return MoleculeDatabase.builtin()


@pytest.fixture(scope="session")
def chatgraph():
    """A pretrained ChatGraph (shared; tests must not re-finetune it)."""
    return ChatGraph.pretrained(corpus_size=600, seed=0)


@pytest.fixture()
def social_graph():
    return social_network(40, 4, p_in=0.3, p_out=0.02, seed=1)


@pytest.fixture()
def kg_graph():
    return knowledge_graph(n_entities=40, n_facts=150, seed=3)


@pytest.fixture()
def molecule_graph():
    return molecule_like_graph(n_rings=2, chain_length=3, seed=0)


@pytest.fixture()
def random_graph():
    return er_graph(30, 0.12, seed=7)
