"""Tests for the knowledge-graph substrate (triples, rules, inference)."""

import pytest

from repro.errors import KnowledgeBaseError
from repro.graphs import knowledge_graph
from repro.kb import (
    CleaningPlan,
    KnowledgeInferencer,
    RuleMiner,
    Triple,
    TripleStore,
    apply_cleaning_plan,
    corrupt_store,
)
from repro.kb.inference import EdgeFinding


@pytest.fixture()
def toy_store():
    store = TripleStore()
    for entity, etype in (("alice", "person"), ("bob", "person"),
                          ("carol", "person"), ("acme", "organization"),
                          ("globex", "organization"), ("rome", "city"),
                          ("oslo", "city")):
        store.set_entity_type(entity, etype)
    for head, relation, tail in (
        ("alice", "works_at", "acme"),
        ("bob", "works_at", "acme"),
        ("carol", "works_at", "globex"),
        ("acme", "located_in", "rome"),
        ("globex", "located_in", "oslo"),
        ("alice", "lives_in", "rome"),
        ("bob", "lives_in", "rome"),
    ):
        store.add(Triple(head, relation, tail))
    return store


class TestTripleStore:
    def test_add_idempotent(self, toy_store):
        n = len(toy_store)
        toy_store.add(Triple("alice", "works_at", "acme"))
        assert len(toy_store) == n

    def test_remove(self, toy_store):
        toy_store.remove(Triple("alice", "works_at", "acme"))
        assert Triple("alice", "works_at", "acme") not in toy_store

    def test_remove_missing_raises(self, toy_store):
        with pytest.raises(KnowledgeBaseError):
            toy_store.remove(Triple("x", "y", "z"))

    def test_indexes(self, toy_store):
        assert len(toy_store.by_relation("works_at")) == 3
        assert len(toy_store.outgoing("alice")) == 2
        assert len(toy_store.incoming("acme")) == 2

    def test_entities_and_relations(self, toy_store):
        assert "alice" in toy_store.entities()
        assert toy_store.relations() == sorted(
            {"works_at", "located_in", "lives_in"})

    def test_copy_independent(self, toy_store):
        clone = toy_store.copy()
        clone.add(Triple("new", "works_at", "acme"))
        assert Triple("new", "works_at", "acme") not in toy_store

    def test_graph_roundtrip(self, toy_store):
        graph = toy_store.to_graph()
        back = TripleStore.from_graph(graph)
        assert set(back) == set(toy_store)
        assert back.entity_type("alice") == "person"

    def test_from_undirected_rejected(self):
        from repro.graphs import Graph
        with pytest.raises(KnowledgeBaseError):
            TripleStore.from_graph(Graph())

    def test_from_triples(self):
        store = TripleStore.from_triples(
            [("a", "r", "b")], entity_types={"a": "person"})
        assert len(store) == 1
        assert store.entity_type("a") == "person"


class TestRuleMining:
    def test_type_signatures(self, toy_store):
        signatures = RuleMiner().mine_type_signatures(toy_store)
        assert signatures["works_at"].head_type == "person"
        assert signatures["works_at"].tail_type == "organization"
        assert signatures["works_at"].confidence == 1.0

    def test_signature_below_threshold_dropped(self):
        store = TripleStore.from_triples(
            [("a", "r", "b"), ("c", "r", "d")],
            entity_types={"a": "t1", "b": "t2", "c": "t3", "d": "t4"})
        signatures = RuleMiner(
            min_signature_confidence=0.7).mine_type_signatures(store)
        assert "r" not in signatures

    def test_path_rules_found(self, toy_store):
        # lives_in(x, y) <= works_at(x, z), located_in(z, y) holds for
        # alice and bob (2 of 3 body instantiations)
        rules = RuleMiner(min_rule_support=2,
                          min_rule_confidence=0.5).mine_path_rules(toy_store)
        assert any(r.head_relation == "lives_in"
                   and r.body_first == "works_at"
                   and r.body_second == "located_in" for r in rules)

    def test_rule_confidence_value(self, toy_store):
        rules = RuleMiner(min_rule_support=1,
                          min_rule_confidence=0.1).mine_path_rules(toy_store)
        rule = next(r for r in rules if r.head_relation == "lives_in")
        assert rule.support == 2
        assert rule.confidence == pytest.approx(2 / 3)

    def test_rule_render(self, toy_store):
        rules = RuleMiner(min_rule_support=1,
                          min_rule_confidence=0.1).mine_path_rules(toy_store)
        assert "lives_in(x, y)" in rules[0].render() or rules


class TestInference:
    def test_detects_type_violation(self, toy_store):
        toy_store.add(Triple("alice", "works_at", "rome"))  # wrong: city
        inferencer = KnowledgeInferencer.fit(toy_store)
        findings = inferencer.detect_incorrect_edges()
        assert any(f.triple == Triple("alice", "works_at", "rome")
                   for f in findings)

    def test_clean_store_no_findings(self, toy_store):
        inferencer = KnowledgeInferencer.fit(toy_store)
        assert inferencer.detect_incorrect_edges() == []

    def test_predicts_missing_from_rule(self, toy_store):
        inferencer = KnowledgeInferencer.fit(
            toy_store, RuleMiner(min_rule_support=2,
                                 min_rule_confidence=0.5))
        findings = inferencer.predict_missing_edges(min_confidence=0.5)
        predicted = {f.triple for f in findings}
        # carol works at globex located in oslo => carol lives_in oslo
        assert Triple("carol", "lives_in", "oslo") in predicted

    def test_predictions_absent_from_store(self, toy_store):
        inferencer = KnowledgeInferencer.fit(toy_store)
        for finding in inferencer.predict_missing_edges():
            assert finding.triple not in toy_store

    def test_limit(self, toy_store):
        inferencer = KnowledgeInferencer.fit(
            toy_store, RuleMiner(min_rule_support=1,
                                 min_rule_confidence=0.1))
        assert len(inferencer.predict_missing_edges(
            min_confidence=0.0, limit=1)) <= 1


class TestCleaning:
    def test_corruption_recall(self, kg_graph):
        store = TripleStore.from_graph(kg_graph)
        noisy, injected, __ = corrupt_store(store, 0.1, 0.0, seed=2)
        inferencer = KnowledgeInferencer.fit(noisy)
        flagged = {f.triple for f in inferencer.detect_incorrect_edges()}
        assert injected <= flagged          # full recall of injected noise
        precision = len(flagged & injected) / len(flagged)
        assert precision > 0.8

    def test_corrupt_store_rates(self, kg_graph):
        store = TripleStore.from_graph(kg_graph)
        noisy, injected, removed = corrupt_store(store, 0.1, 0.1, seed=0)
        assert len(noisy) == len(store) - (len(removed) - len(injected))
        assert all(t in noisy for t in injected)
        assert all(t not in noisy for t in removed)

    def test_corrupt_bad_rate(self, toy_store):
        with pytest.raises(KnowledgeBaseError):
            corrupt_store(toy_store, corruption_rate=2.0)

    def test_apply_plan(self, toy_store):
        bad = Triple("alice", "works_at", "rome")
        toy_store.add(bad)
        inferencer = KnowledgeInferencer.fit(toy_store)
        plan = CleaningPlan(
            removals=inferencer.detect_incorrect_edges(),
            additions=inferencer.predict_missing_edges())
        cleaned = apply_cleaning_plan(toy_store, plan)
        assert bad not in cleaned
        assert bad in toy_store  # original untouched

    def test_apply_plan_with_confirmation(self, toy_store):
        toy_store.add(Triple("alice", "works_at", "rome"))
        inferencer = KnowledgeInferencer.fit(toy_store)
        plan = CleaningPlan(removals=inferencer.detect_incorrect_edges())
        cleaned = apply_cleaning_plan(toy_store, plan,
                                      confirm=lambda q, f: False)
        assert set(cleaned) == set(toy_store)

    def test_plan_kind_validation(self, toy_store):
        wrong = EdgeFinding(Triple("a", "b", "c"), "missing", 1.0, "x")
        with pytest.raises(KnowledgeBaseError):
            apply_cleaning_plan(toy_store, CleaningPlan(removals=[wrong]))

    def test_plan_render(self):
        finding = EdgeFinding(Triple("a", "r", "b"), "incorrect", 0.9, "why")
        plan = CleaningPlan(removals=[finding])
        assert "1 removals" in plan.render()
        assert "a" in plan.render()
