"""The ``repro store`` command-line surface."""

import json

import pytest

from repro.cli import main
from repro.graphs import social_network
from repro.graphs.io import to_dict
from repro.store import GraphCatalog


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "store")


def run(capsys, *argv):
    code = main(["store", *argv])
    captured = capsys.readouterr()
    return code, captured.out + captured.err


def test_create_ingest_ls_verify_compact(root, tmp_path, capsys):
    graph_file = tmp_path / "g.json"
    graph_file.write_text(json.dumps(to_dict(social_network(
        12, 3, seed=2))))

    code, __ = run(capsys, "create", "--root", root, "social")
    assert code == 0
    code, __ = run(capsys, "ingest", "--root", root, "social",
                   str(graph_file))
    assert code == 0

    code, out = run(capsys, "ls", "--root", root)
    assert code == 0 and "social" in out and "12" in out

    code, out = run(capsys, "ls", "--root", root, "social")
    assert code == 0
    assert json.loads(out)["nodes"] == 12

    code, out = run(capsys, "verify", "--root", root, "--index")
    assert code == 0 and "OK" in out

    code, out = run(capsys, "compact", "--root", root, "social")
    assert code == 0
    assert GraphCatalog(root).open("social").epoch == 1

    code, out = run(capsys, "verify", "--root", root, "social")
    assert code == 0 and "OK" in out


def test_ingest_with_create_flag(root, tmp_path, capsys):
    graph_file = tmp_path / "g.edges"
    graph_file.write_text("a b\nb c w=2\n")
    code, __ = run(capsys, "ingest", "--root", root, "fresh",
                   str(graph_file), "--create")
    assert code == 0
    graph = GraphCatalog(root).open("fresh").graph
    assert graph.number_of_nodes() == 3
    assert graph.edge_attrs("b", "c") == {"w": 2}


def test_errors_exit_nonzero(root, capsys):
    code, __ = run(capsys, "compact", "--root", root, "missing")
    assert code == 1
    code, __ = run(capsys, "create", "--root", root, "bad/name")
    assert code == 1


def test_verify_reports_a_torn_log(root, capsys):
    code, __ = run(capsys, "create", "--root", root, "g")
    assert code == 0
    handle = GraphCatalog(root).open("g")
    handle.add_edge("a", "b")
    handle.close()
    from pathlib import Path

    from repro.store import layout
    log_file = layout.log_path(Path(root), "g", 0)
    log_file.write_bytes(log_file.read_bytes()[:-2])
    code, out = run(capsys, "verify", "--root", root)
    assert code == 1
    assert "dropped" in out
