"""Tests for clustering coefficients and community detection."""

import networkx as nx
import pytest

from repro.algorithms import (
    average_clustering,
    clustering_coefficient,
    greedy_modularity_communities,
    label_propagation,
    modularity,
    transitivity,
    triangles,
)
from repro.errors import GraphError
from repro.graphs import (
    DiGraph,
    Graph,
    complete_graph,
    cycle_graph,
    er_graph,
    path_graph,
    social_network,
    star_graph,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(g.nodes())
    G.add_edges_from(g.edges())
    return G


class TestClustering:
    def test_triangle_counts_complete(self):
        tri = triangles(complete_graph(4))
        assert all(v == 3 for v in tri.values())

    def test_no_triangles_in_star(self):
        assert all(v == 0 for v in triangles(star_graph(5)).values())

    def test_coefficient_complete_one(self):
        cc = clustering_coefficient(complete_graph(5))
        assert all(v == pytest.approx(1.0) for v in cc.values())

    def test_coefficient_degree_below_two_zero(self):
        cc = clustering_coefficient(path_graph(3))
        assert cc[0] == 0.0

    def test_matches_networkx(self):
        for seed in range(5):
            g = er_graph(25, 0.2, seed=seed)
            ours = clustering_coefficient(g)
            theirs = nx.clustering(to_nx(g))
            for node in ours:
                assert ours[node] == pytest.approx(theirs[node])
            assert transitivity(g) == pytest.approx(
                nx.transitivity(to_nx(g)))
            assert average_clustering(g) == pytest.approx(
                nx.average_clustering(to_nx(g)))

    def test_empty_average(self):
        assert average_clustering(Graph()) == 0.0

    def test_transitivity_no_triads(self):
        g = Graph()
        g.add_edge(1, 2)
        assert transitivity(g) == 0.0

    def test_directed_rejected(self):
        d = DiGraph()
        d.add_edge(1, 2)
        with pytest.raises(GraphError):
            triangles(d)


class TestModularity:
    def test_perfect_split(self):
        g = Graph()
        g.add_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        q = modularity(g, [{0, 1, 2}, {3, 4, 5}])
        assert q == pytest.approx(0.5)

    def test_single_community_zero(self):
        g = complete_graph(4)
        assert modularity(g, [set(g.nodes())]) == pytest.approx(0.0)

    def test_matches_networkx(self):
        g = social_network(40, 4, seed=2)
        communities = label_propagation(g, seed=0)
        ours = modularity(g, communities)
        theirs = nx.algorithms.community.modularity(
            to_nx(g), [set(c) for c in communities])
        assert ours == pytest.approx(theirs)

    def test_overlapping_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            modularity(g, [{0, 1}, {1, 2}])

    def test_incomplete_cover_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            modularity(g, [{0, 1}])

    def test_empty_graph(self):
        assert modularity(Graph(), []) == 0.0


class TestDetection:
    def test_label_prop_recovers_planted(self):
        g = social_network(60, 3, p_in=0.35, p_out=0.01, seed=4)
        communities = label_propagation(g, seed=1)
        assert modularity(g, communities) > 0.4

    def test_label_prop_deterministic(self):
        g = social_network(30, 3, seed=1)
        assert label_propagation(g, seed=5) == label_propagation(g, seed=5)

    def test_greedy_modularity_positive(self):
        g = social_network(45, 3, p_in=0.35, p_out=0.02, seed=0)
        communities = greedy_modularity_communities(g)
        assert modularity(g, communities) > 0.3

    def test_greedy_covers_all_nodes(self):
        g = er_graph(20, 0.15, seed=2)
        communities = greedy_modularity_communities(g)
        covered = set().union(*communities)
        assert covered == set(g.nodes())

    def test_greedy_no_edges(self):
        g = Graph()
        g.add_nodes(range(4))
        assert len(greedy_modularity_communities(g)) == 4

    def test_sorted_by_size(self):
        g = social_network(40, 2, p_in=0.3, p_out=0.02, seed=3)
        communities = label_propagation(g, seed=0)
        sizes = [len(c) for c in communities]
        assert sizes == sorted(sizes, reverse=True)
