"""End-to-end observability: traced servers, determinism, stress.

The tentpole guarantees under test:

* a seeded run through :class:`ChatGraphServer` yields a hierarchical
  trace covering every pipeline stage and every executed API step,
  including retry attempts;
* the canonical export of that trace is byte-identical across runs
  with the same seed, even under a multi-worker pool;
* under an 8-worker stress run with injected faults, the metrics
  counters reconcile *exactly* with the events the executor emitted.
"""

import threading
from collections import Counter

import pytest

from repro import ChatGraph
from repro.apis import default_registry
from repro.config import ObsConfig, ServeConfig
from repro.finetune.dataset import CorpusSpec
from repro.graphs import knowledge_graph, social_network
from repro.obs import check_trace, spans_to_jsonl
from repro.obs.metrics import OBSERVED_EVENT_KINDS
from repro.serve import ChatGraphServer, ServeRequest
from repro.serve.stats import ROBUSTNESS_EVENT_COUNTERS
from repro.testing import FaultInjector, FaultSpec, canonical_workload

PIPELINE_STAGES = ("stage:intent", "stage:graph_type", "stage:retrieval",
                   "stage:sequentialize", "stage:generate")


def traced_config(**overrides):
    defaults = dict(workers=1, seed=0,
                    obs=ObsConfig(enable_tracing=True))
    defaults.update(overrides)
    return ServeConfig(**defaults)


def span_trees(tracer):
    """``(root_span, tree_spans)`` pairs for every request root."""
    spans = tracer.finished_spans()
    return [(root, tracer.request_spans(root.span_id))
            for root in spans if root.parent_id is None]


@pytest.fixture(scope="module")
def chaos_stack():
    """A small ChatGraph whose hottest APIs fail deterministically."""
    injector = FaultInjector(seed=11)
    faults = {
        "count_nodes": FaultSpec(fail_times=2),
        "graph_density": FaultSpec(fail_times=2),
        "count_edges": FaultSpec(fail_times=1),
    }
    registry = injector.wrap_registry(default_registry(), faults)
    chatgraph = ChatGraph(registry=registry)
    chatgraph.finetune(CorpusSpec(n_examples=150, seed=0))
    return chatgraph, injector, faults


class TestTraceCoverage:
    def test_every_stage_and_step_covered(self, chatgraph):
        responses = []
        config = traced_config(workers=2)
        with ChatGraphServer(chatgraph, config) as server:
            for __, text, graph in canonical_workload():
                responses.append(server.ask(text, graph=graph))
            tracer = server.tracer
            trees = span_trees(tracer)
        assert all(r.ok for r in responses)
        assert check_trace([s.to_dict()
                            for s in tracer.finished_spans()]) == []
        assert len(trees) == len(responses)
        for root, tree in trees:
            assert root.kind == "request"
            assert root.attrs["ok"] is True
            stage_names = {s.name for s in tree if s.kind == "stage"}
            assert stage_names == set(PIPELINE_STAGES)
            # exactly one op and one pipeline span per request
            assert sum(1 for s in tree if s.kind == "op") == 1
            assert sum(1 for s in tree if s.kind == "pipeline") == 1
        # step spans match the executed chains exactly
        executed = Counter(step.api_name for r in responses
                           for step in r.value.record.steps)
        covered = Counter(s.attrs["api"]
                          for s in tracer.finished_spans()
                          if s.kind == "step")
        assert executed == covered

    def test_attempt_spans_match_recorded_attempts(self, chaos_stack):
        chatgraph, __, __ = chaos_stack
        config = traced_config(step_max_retries=3,
                               retry_backoff_seconds=0.002)
        graph = social_network(25, 3, seed=2)
        with ChatGraphServer(chatgraph, config) as server:
            responses = [server.ask(text, graph=graph)
                         for text in ("write a brief report for G",
                                      "count the nodes",
                                      "compute the graph density")]
            tracer = server.tracer
        assert all(r.ok for r in responses)
        spans = tracer.finished_spans()
        attempts_by_parent = Counter(
            s.parent_id for s in spans if s.kind == "attempt")
        step_spans = [s for s in spans if s.kind == "step"]
        assert step_spans
        for step_span in step_spans:
            if step_span.attrs.get("used_fallback"):
                continue
            assert attempts_by_parent[step_span.span_id] == \
                step_span.attrs["attempts"]
        # the injected faults were absorbed by retries that the trace
        # records: some step needed more than one attempt
        retried = [s for s in step_spans if s.attrs.get("attempts", 1) > 1]
        assert retried
        counters = server.metrics.snapshot()["counters"]
        assert counters["events_step_retried"] >= len(retried)
        assert counters["events_step_retried"] == \
            sum(r.value.monitor.retries for r in responses)


class TestTraceDeterminism:
    def workload(self):
        graphs = (social_network(30, 3, seed=7),
                  knowledge_graph(25, 80, seed=7))
        prompts = ("write a brief report for G",
                   "clean up the knowledge graph",
                   "count the nodes", "find communities",
                   "compute the graph density", "how many edges")
        return [ServeRequest(op="ask", text=text,
                             graph=graphs[index % 2],
                             client_id=f"det-{index % 3}")
                for index, text in enumerate(prompts)]

    def run_once(self, chatgraph, order):
        config = traced_config(workers=4)
        requests = self.workload()
        if order == "reversed":
            requests = requests[::-1]
        with ChatGraphServer(chatgraph, config) as server:
            pending = [server.submit(request) for request in requests]
            for item in pending:
                assert item.result(timeout=60.0).ok
            return spans_to_jsonl(server.tracer.finished_spans(),
                                  canonical=True)

    def test_canonical_export_byte_identical(self, chatgraph):
        first = self.run_once(chatgraph, order="forward")
        second = self.run_once(chatgraph, order="reversed")
        assert first == second
        assert first  # non-trivial trace

    def test_full_export_same_structure_different_timings(self, chatgraph):
        config = traced_config()
        with ChatGraphServer(chatgraph, config) as server:
            assert server.ask("count the nodes",
                              graph=social_network(20, 2, seed=1)).ok
            full = spans_to_jsonl(server.tracer.finished_spans())
        assert '"wall_seconds"' in full


class TestStressReconciliation:
    def test_8_worker_chaos_counters_reconcile_exactly(self, chaos_stack):
        """Every executor event lands in exactly one of each ledger."""
        chatgraph, injector, __ = chaos_stack
        injector.reset()
        collected = Counter()
        lock = threading.Lock()

        def collector(event):
            with lock:
                collected[event.kind] += 1

        graphs = (social_network(25, 3, seed=2),
                  knowledge_graph(20, 60, seed=2))
        prompts = ("write a brief report for G", "count the nodes",
                   "find communities", "compute the graph density")
        config = traced_config(workers=8, queue_depth=64,
                               step_max_retries=3,
                               retry_backoff_seconds=0.002,
                               breaker_failure_threshold=10,
                               breaker_window=20)
        chatgraph.executor.add_listener(collector)
        try:
            with ChatGraphServer(chatgraph, config) as server:
                pending = [server.submit(ServeRequest(
                    op="ask", text=prompts[index % len(prompts)],
                    graph=graphs[index % 2],
                    client_id=f"stress-{index % 5}"))
                    for index in range(24)]
                responses = [item.result(timeout=120.0)
                             for item in pending]
                stats = server.stats()
                metrics = server.metrics_snapshot()
                tracer = server.tracer
        finally:
            chatgraph.executor.remove_listener(collector)
        assert all(r.ok for r in responses)

        # 1. the metrics registry counted the same events we did
        for kind in OBSERVED_EVENT_KINDS:
            assert metrics["counters"].get(f"events_{kind}", 0) == \
                collected.get(kind, 0), kind
        # 2. the server's robustness counters agree
        for kind, name in ROBUSTNESS_EVENT_COUNTERS.items():
            assert stats["counters"].get(name, 0) == \
                collected.get(kind, 0), kind
        # 3. per-request monitors partition the event stream exactly
        monitor_totals = Counter()
        for response in responses:
            monitor_totals.update(response.value.monitor.event_counts())
        assert monitor_totals == collected
        # 4. chain accounting is exact: one started+finished per request
        assert collected["chain_started"] == len(responses)
        assert collected["chain_finished"] == len(responses)
        assert collected["step_finished"] == sum(
            len(r.value.record.steps) for r in responses)
        # 5. the trace saw every executed step too
        step_spans = sum(1 for s in tracer.finished_spans()
                         if s.kind == "step")
        assert step_spans == collected["step_started"]
        # 6. injected faults showed up as retries
        injected = sum(injector.stats()["injected_failures"].values())
        assert injected > 0
        assert collected["step_retried"] == injected

    def test_tracer_restored_after_stop(self, chatgraph):
        assert chatgraph.tracer is None
        with ChatGraphServer(chatgraph, traced_config()) as server:
            assert chatgraph.tracer is server.tracer
        assert chatgraph.tracer is None

    def test_untraced_server_has_no_tracer(self, chatgraph):
        config = ServeConfig(workers=1, seed=0)
        with ChatGraphServer(chatgraph, config) as server:
            assert server.tracer is None
            assert server.ask("count the nodes",
                              graph=social_network(15, 2, seed=3)).ok
            snapshot = server.metrics_snapshot()
        assert snapshot["trace"] == {}
        # event counters still flow without tracing
        assert snapshot["counters"]["events_chain_finished"] >= 1
