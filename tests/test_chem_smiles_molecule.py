"""Tests for the SMILES-lite parser/writer and the Molecule type."""

import pytest

from repro.algorithms import is_isomorphic
from repro.chem import BUILTIN_LIBRARY, Molecule, parse_smiles, write_smiles
from repro.errors import SmilesError


def element_label(graph, node):
    return graph.get_node_attr(node, "element")


class TestParser:
    def test_linear_alkane(self):
        mol = parse_smiles("CCC")
        assert mol.n_atoms == 3
        assert mol.n_bonds == 2
        assert all(atom.element == "C" for atom in mol.atoms)

    def test_double_and_triple_bonds(self):
        assert parse_smiles("C=O").bonds[0].order == 2.0
        assert parse_smiles("C#N").bonds[0].order == 3.0

    def test_branching(self):
        mol = parse_smiles("CC(C)C")  # isobutane
        degrees = sorted(len(mol.neighbors(i)) for i in range(4))
        assert degrees == [1, 1, 1, 3]

    def test_ring_closure(self):
        mol = parse_smiles("C1CCCCC1")
        assert mol.n_atoms == 6
        assert mol.n_bonds == 6
        assert mol.ring_count() == 1

    def test_aromatic_ring(self):
        mol = parse_smiles("c1ccccc1")
        assert all(atom.aromatic for atom in mol.atoms)
        assert all(bond.order == 1.5 for bond in mol.bonds)

    def test_two_letter_elements(self):
        mol = parse_smiles("ClCCl")
        assert [a.element for a in mol.atoms] == ["Cl", "C", "Cl"]

    def test_bracket_atom_charge_h(self):
        mol = parse_smiles("[NH4+]")
        atom = mol.atoms[0]
        assert atom.element == "N"
        assert atom.charge == 1
        assert atom.explicit_h == 4

    def test_bracket_negative(self):
        assert parse_smiles("[O-]").atoms[0].charge == -1

    def test_bracket_aromatic_nh(self):
        mol = parse_smiles("c1cc[nH]c1")
        n = [a for a in mol.atoms if a.element == "N"][0]
        assert n.aromatic and n.explicit_h == 1

    def test_disconnected_components(self):
        mol = parse_smiles("C.C")
        assert mol.n_atoms == 2
        assert mol.n_bonds == 0
        assert not mol.is_connected()

    def test_percent_ring_closure(self):
        mol = parse_smiles("C%11CC%11")
        assert mol.ring_count() == 1

    @pytest.mark.parametrize("bad", [
        "", "C(", "C)", "C1CC", "[X]", "C=", "C==C", "C@", "[]", "1CC",
    ])
    def test_malformed_raises(self, bad):
        with pytest.raises(SmilesError):
            parse_smiles(bad)


class TestWriter:
    @pytest.mark.parametrize("name", sorted(BUILTIN_LIBRARY))
    def test_roundtrip_builtin(self, name):
        mol = parse_smiles(BUILTIN_LIBRARY[name], name=name)
        text = write_smiles(mol)
        mol2 = parse_smiles(text)
        assert mol2.n_atoms == mol.n_atoms
        assert mol2.n_bonds == mol.n_bonds
        assert is_isomorphic(mol.to_graph(), mol2.to_graph(),
                             node_label=element_label)

    def test_empty_molecule_raises(self):
        with pytest.raises(SmilesError):
            write_smiles(Molecule())

    def test_charge_preserved(self):
        mol = parse_smiles("[NH4+]")
        assert parse_smiles(write_smiles(mol)).atoms[0].charge == 1


class TestMolecule:
    def test_implicit_hydrogens_methane(self):
        mol = parse_smiles("C")
        assert mol.implicit_hydrogens(0) == 4
        assert mol.total_hydrogens() == 4

    def test_implicit_hydrogens_water_like(self):
        assert parse_smiles("O").implicit_hydrogens(0) == 2

    def test_implicit_hydrogens_benzene(self):
        mol = parse_smiles("c1ccccc1")
        assert all(mol.implicit_hydrogens(i) == 1 for i in range(6))

    def test_bond_order_sum(self):
        mol = parse_smiles("C=O")
        assert mol.bond_order_sum(0) == 2.0

    def test_ring_membership(self):
        mol = parse_smiles("C1CCCCC1CC")  # cyclohexane + ethyl tail
        members = mol.ring_membership()
        assert len(members) == 6

    def test_to_graph_attrs(self):
        mol = parse_smiles("CO")
        graph = mol.to_graph()
        assert graph.get_node_attr(0, "element") == "C"
        assert graph.get_node_attr(1, "element") == "O"
        assert graph.get_node_attr(0, "kind") == "atom"
        assert graph.get_edge_attr(0, 1, "order") == 1.0

    def test_bad_bond_rejected(self):
        mol = Molecule()
        mol.add_atom("C")
        with pytest.raises(SmilesError):
            mol.add_bond(0, 0)
        with pytest.raises(SmilesError):
            mol.add_bond(0, 5)

    def test_unknown_element_rejected(self):
        with pytest.raises(SmilesError):
            Molecule().add_atom("Xx")
