"""Tests for the chain-execution robustness layer (ISSUE 2).

Covers the acceptance points: a step that fails twice then succeeds
completes via retries; a hung step is cut off by its timeout; a
persistently failing API opens its circuit breaker and later chains
degrade gracefully with a populated ``degraded`` report — all
deterministic under a fixed seed, with the retry/timeout/breaker
counters visible in ``server.stats()`` and the new monitor events
rendered in the transcript.
"""

from __future__ import annotations

import time

import pytest

from repro import ChatGraph, ChatGraphServer, ServeConfig, ServeRequest
from repro.apis import (
    APIChain,
    APIRegistry,
    APISpec,
    Category,
    ChainContext,
    ChainExecutor,
    ExecutionPolicy,
    StepPolicy,
    default_registry,
)
from repro.errors import (
    ChainExecutionError,
    ChatGraphError,
    CircuitOpenError,
    FaultInjectionError,
    StepTimeoutError,
)
from repro.finetune.dataset import CorpusSpec
from repro.graphs import social_network
from repro.serve.breaker import BreakerRegistry, BreakerState, CircuitBreaker
from repro.testing.faults import FaultInjector, FaultSpec, chaos_registry


def no_sleep(_seconds: float) -> None:
    """Injectable sleep for instant retries."""


@pytest.fixture()
def flaky_registry():
    """Toy registry with deterministic failure profiles."""
    registry = APIRegistry()
    state = {"flaky_calls": 0}

    def flaky(ctx):
        state["flaky_calls"] += 1
        if state["flaky_calls"] <= 2:
            raise RuntimeError("transient boom")
        return "recovered"

    registry.register(APISpec(
        "flaky_api", "fails twice then succeeds", Category.GENERIC, flaky))
    registry.register(APISpec(
        "down_api", "always fails", Category.GENERIC,
        lambda ctx: (_ for _ in ()).throw(RuntimeError("down"))))
    registry.register(APISpec(
        "slow_api", "sleeps forever-ish", Category.GENERIC,
        lambda ctx: time.sleep(5.0)))
    registry.register(APISpec(
        "ok_api", "always works", Category.GENERIC, lambda ctx: "fine"))
    registry.register(APISpec(
        "fallback_api", "stand-in result", Category.GENERIC,
        lambda ctx: "from-fallback"))
    return registry


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
class TestStepPolicy:
    def test_validation(self):
        with pytest.raises(ChatGraphError):
            StepPolicy(timeout_seconds=0.0)
        with pytest.raises(ChatGraphError):
            StepPolicy(max_retries=-1)
        with pytest.raises(ChatGraphError):
            StepPolicy(backoff_multiplier=0.5)
        with pytest.raises(ChatGraphError):
            StepPolicy(jitter_fraction=1.5)

    def test_backoff_grows_exponentially(self):
        policy = StepPolicy(backoff_base_seconds=0.1,
                            backoff_multiplier=2.0, jitter_fraction=0.0)
        rng = ExecutionPolicy(seed=0).jitter_rng("a", 0)
        delays = [policy.backoff_seconds(k, rng) for k in range(3)]
        assert delays == [pytest.approx(0.1), pytest.approx(0.2),
                          pytest.approx(0.4)]

    def test_jitter_is_seeded_and_bounded(self):
        policy = StepPolicy(backoff_base_seconds=0.1,
                            backoff_multiplier=1.0, jitter_fraction=0.5)
        first = [policy.backoff_seconds(
            k, ExecutionPolicy(seed=7).jitter_rng("api", 2))
            for k in range(4)]
        second = [policy.backoff_seconds(
            k, ExecutionPolicy(seed=7).jitter_rng("api", 2))
            for k in range(4)]
        assert first == second  # deterministic under a fixed seed
        assert all(0.1 <= d <= 0.15 for d in first)
        different = [policy.backoff_seconds(
            k, ExecutionPolicy(seed=8).jitter_rng("api", 2))
            for k in range(4)]
        assert first != different

    def test_per_api_overrides(self):
        policy = ExecutionPolicy(
            default=StepPolicy(max_retries=1),
            per_api={"slow_api": StepPolicy(timeout_seconds=0.5)})
        assert policy.for_api("slow_api").timeout_seconds == 0.5
        assert policy.for_api("other").max_retries == 1


# ----------------------------------------------------------------------
# executor: retries, timeouts, fallbacks, degradation
# ----------------------------------------------------------------------
class TestRetries:
    def test_fails_twice_then_succeeds_via_retries(self, flaky_registry):
        events = []
        policy = ExecutionPolicy(default=StepPolicy(
            max_retries=3, backoff_base_seconds=0.001))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 sleep=no_sleep)
        executor.add_listener(events.append)
        record = executor.execute(APIChain.from_names(["flaky_api"]),
                                  ChainContext())
        assert record.ok and not record.is_degraded
        assert record.final_result == "recovered"
        assert record.steps[0].attempts == 3
        kinds = [e.kind for e in events]
        assert kinds.count("step_retried") == 2
        assert kinds[-1] == "chain_finished"

    def test_retry_budget_exhausted_raises_when_critical(
            self, flaky_registry):
        policy = ExecutionPolicy(default=StepPolicy(
            max_retries=2, backoff_base_seconds=0.0))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 sleep=no_sleep)
        with pytest.raises(ChainExecutionError):
            executor.execute(APIChain.from_names(["down_api"]),
                             ChainContext())

    def test_backoff_delays_are_deterministic(self, flaky_registry):
        def run():
            slept = []
            policy = ExecutionPolicy(default=StepPolicy(
                max_retries=2, backoff_base_seconds=0.01), seed=5)
            executor = ChainExecutor(flaky_registry, policy=policy,
                                     sleep=slept.append)
            record = executor.execute(
                APIChain.from_names(["down_api"]), ChainContext(),
                stop_on_error=False)
            assert not record.ok
            return slept

        assert run() == run()

    def test_per_call_policy_overrides_executor_default(
            self, flaky_registry):
        executor = ChainExecutor(flaky_registry, sleep=no_sleep)
        override = ExecutionPolicy(default=StepPolicy(
            max_retries=5, backoff_base_seconds=0.0))
        record = executor.execute(APIChain.from_names(["flaky_api"]),
                                  ChainContext(), policy=override)
        assert record.ok and record.steps[0].attempts == 3


class TestTimeouts:
    def test_hung_step_cut_off_by_timeout(self, flaky_registry):
        events = []
        policy = ExecutionPolicy(default=StepPolicy(
            timeout_seconds=0.05, max_retries=0, critical=False))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 sleep=no_sleep)
        executor.add_listener(events.append)
        start = time.perf_counter()
        record = executor.execute(
            APIChain.from_names(["slow_api", "ok_api"]), ChainContext())
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # nowhere near slow_api's 5s sleep
        assert not record.ok
        assert record.steps[0].timed_out
        assert record.degraded[0].reason == "timeout"
        assert "step_timed_out" in [e.kind for e in events]
        # the chain continued past the hung step
        assert record.steps[1].ok and record.final_result == "fine"

    def test_timeout_error_raised_when_critical(self, flaky_registry):
        policy = ExecutionPolicy(default=StepPolicy(
            timeout_seconds=0.05, max_retries=0))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 sleep=no_sleep)
        with pytest.raises(ChainExecutionError) as excinfo:
            executor.execute(APIChain.from_names(["slow_api"]),
                             ChainContext())
        assert isinstance(excinfo.value.cause, StepTimeoutError)


class TestFallbacks:
    def test_fallback_serves_exhausted_step(self, flaky_registry):
        policy = ExecutionPolicy(default=StepPolicy(
            max_retries=1, backoff_base_seconds=0.0,
            fallback_api="fallback_api"))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 sleep=no_sleep)
        context = ChainContext()
        record = executor.execute(APIChain.from_names(["down_api"]),
                                  context)
        assert record.ok
        assert record.steps[0].used_fallback
        assert record.final_result == "from-fallback"
        # downstream lookups still resolve through the chain's name
        assert context.latest("down_api") == "from-fallback"

    def test_failing_fallback_still_degrades(self, flaky_registry):
        # down_api is its own fallback: the fallback attempt also fails,
        # so the step degrades and the report names the fallback tried
        policy = ExecutionPolicy(default=StepPolicy(
            max_retries=0, fallback_api="down_api", critical=False))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 sleep=no_sleep)
        record = executor.execute(APIChain.from_names(["down_api"]),
                                  ChainContext())
        assert not record.ok
        entry = record.degraded[0]
        assert entry.reason == "retries_exhausted"
        assert entry.fallback_api == "down_api"


class TestDegradation:
    def test_non_critical_failure_returns_partial_record(
            self, flaky_registry):
        policy = ExecutionPolicy(
            default=StepPolicy(),
            per_api={"down_api": StepPolicy(
                max_retries=1, backoff_base_seconds=0.0,
                critical=False)})
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 sleep=no_sleep)
        record = executor.execute(
            APIChain.from_names(["ok_api", "down_api", "ok_api"]),
            ChainContext())  # stop_on_error=True, yet no raise
        assert not record.ok
        assert record.is_degraded
        entry = record.degraded[0]
        assert entry.api_name == "down_api"
        assert entry.reason == "retries_exhausted"
        assert entry.attempts == 2
        report = record.degraded_report()
        assert report["degraded"] is True
        assert report["steps"][0]["index"] == 1
        assert report["retries"] >= 1
        assert record.final_result == "fine"


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **overrides):
        self.now = 0.0
        kwargs = dict(failure_threshold=3, failure_rate_threshold=0.5,
                      window_size=6, cooldown_seconds=10.0,
                      clock=lambda: self.now)
        kwargs.update(overrides)
        return CircuitBreaker(**kwargs)

    def test_trips_after_threshold_failures(self):
        breaker = self.make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # opened on this call
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_low_failure_rate_does_not_trip(self):
        # enough failures in absolute count, but the windowed rate
        # stays below the threshold -> circuit stays closed
        breaker = self.make(window_size=8)
        for _ in range(5):
            breaker.record_success()
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False  # 3/8 < 0.5
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_then_close(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        self.now = 10.0  # cooldown elapsed
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # concurrent calls stay blocked
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        self.now = 10.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # re-opened
        assert breaker.state is BreakerState.OPEN
        self.now = 15.0  # cooldown restarted at t=10
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2

    def test_registry_shares_per_api_breakers(self):
        registry = BreakerRegistry(failure_threshold=2,
                                   failure_rate_threshold=0.5,
                                   window_size=4, cooldown_seconds=5.0)
        assert registry.allow("api_a")
        registry.record_failure("api_a")
        opened = registry.record_failure("api_a")
        assert opened
        assert not registry.allow("api_a")
        assert registry.allow("api_b")  # independent circuit
        snapshot = registry.snapshot()
        assert snapshot["api_a"]["state"] == "open"
        assert registry.open_names() == ["api_a"]
        registry.reset()
        assert registry.allow("api_a")


class TestExecutorWithBreaker:
    def test_open_breaker_short_circuits_step(self, flaky_registry):
        events = []
        breakers = BreakerRegistry(failure_threshold=2,
                                   failure_rate_threshold=0.5,
                                   window_size=4, cooldown_seconds=60.0)
        policy = ExecutionPolicy(default=StepPolicy(
            max_retries=1, backoff_base_seconds=0.0, critical=False))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 breakers=breakers, sleep=no_sleep)
        executor.add_listener(events.append)
        first = executor.execute(APIChain.from_names(["down_api"]),
                                 ChainContext())
        assert first.degraded[0].reason == "retries_exhausted"
        assert "breaker_opened" in [e.kind for e in events]
        # circuit now open: the API is not even called
        second = executor.execute(APIChain.from_names(["down_api"]),
                                  ChainContext())
        assert second.degraded[0].reason == "breaker_open"
        assert second.steps[0].error.startswith("circuit breaker")
        # successes of other APIs are unaffected
        ok = executor.execute(APIChain.from_names(["ok_api"]),
                              ChainContext())
        assert ok.ok

    def test_breaker_open_raises_when_critical(self, flaky_registry):
        breakers = BreakerRegistry(failure_threshold=1,
                                   failure_rate_threshold=0.5,
                                   window_size=2, cooldown_seconds=60.0)
        policy = ExecutionPolicy(default=StepPolicy(max_retries=0))
        executor = ChainExecutor(flaky_registry, policy=policy,
                                 breakers=breakers, sleep=no_sleep)
        with pytest.raises(ChainExecutionError):
            executor.execute(APIChain.from_names(["down_api"]),
                             ChainContext())
        with pytest.raises(ChainExecutionError) as excinfo:
            executor.execute(APIChain.from_names(["down_api"]),
                             ChainContext())
        assert isinstance(excinfo.value.cause, CircuitOpenError)


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_fail_times_is_deterministic(self, flaky_registry):
        injector = FaultInjector(seed=3)
        wrapped = injector.wrap_registry(
            flaky_registry, {"ok_api": FaultSpec(fail_times=2)})
        executor = ChainExecutor(
            wrapped,
            policy=ExecutionPolicy(default=StepPolicy(
                max_retries=3, backoff_base_seconds=0.0)),
            sleep=no_sleep)
        record = executor.execute(APIChain.from_names(["ok_api"]),
                                  ChainContext())
        assert record.ok and record.steps[0].attempts == 3
        stats = injector.stats()
        assert stats["injected_failures"] == {"ok_api": 2}
        assert stats["calls"] == {"ok_api": 3}

    def test_injected_error_type(self, flaky_registry):
        injector = FaultInjector(seed=0)
        wrapped = injector.wrap_registry(
            flaky_registry, {"ok_api": FaultSpec(fail_times=1)})
        executor = ChainExecutor(wrapped, sleep=no_sleep)
        with pytest.raises(ChainExecutionError) as excinfo:
            executor.execute(APIChain.from_names(["ok_api"]),
                             ChainContext())
        assert isinstance(excinfo.value.cause, FaultInjectionError)

    def test_seeded_failure_rate_reproducible(self, flaky_registry):
        def outcomes(seed):
            injector = FaultInjector(seed=seed)
            wrapped = injector.wrap_registry(
                flaky_registry, {"ok_api": FaultSpec(failure_rate=0.5)})
            spec = wrapped.get("ok_api")
            out = []
            for _ in range(20):
                try:
                    spec.call(ChainContext())
                    out.append(True)
                except FaultInjectionError:
                    out.append(False)
            return out

        assert outcomes(11) == outcomes(11)
        assert outcomes(11) != outcomes(12)

    def test_hang_delay_triggers_timeout(self, flaky_registry):
        injector = FaultInjector(seed=0)
        wrapped = injector.wrap_registry(
            flaky_registry,
            {"ok_api": FaultSpec(delay_seconds=0.3, hang=True,
                                 delay_times=1)})
        policy = ExecutionPolicy(default=StepPolicy(
            timeout_seconds=0.05, max_retries=1,
            backoff_base_seconds=0.0, critical=False))
        executor = ChainExecutor(wrapped, policy=policy, sleep=no_sleep)
        record = executor.execute(APIChain.from_names(["ok_api"]),
                                  ChainContext())
        # first attempt hangs and is cut off; the retry succeeds
        assert record.ok
        assert record.steps[0].attempts == 2

    def test_unknown_api_rejected(self, flaky_registry):
        injector = FaultInjector()
        with pytest.raises(ChatGraphError):
            injector.wrap_registry(flaky_registry,
                                   {"nope": FaultSpec(fail_times=1)})

    def test_chaos_registry_sampling_deterministic(self):
        base = default_registry()
        _, _, faults_a = chaos_registry(base, seed=4, n_faulty=5)
        _, _, faults_b = chaos_registry(default_registry(), seed=4,
                                        n_faulty=5)
        assert sorted(faults_a) == sorted(faults_b)
        assert len(faults_a) == 5


# ----------------------------------------------------------------------
# serve-level: the whole stack under injected faults
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fault_stack():
    """A small ChatGraph over a fault-wrapped full catalog."""
    injector = FaultInjector(seed=9)
    faults = {
        "count_nodes": FaultSpec(fail_times=2),
        "graph_density": FaultSpec(fail_times=10 ** 9,
                                   message="backend down"),
        "count_edges": FaultSpec(delay_seconds=1.0, hang=True),
    }
    registry = injector.wrap_registry(default_registry(), faults)
    chatgraph = ChatGraph(registry=registry)
    chatgraph.finetune(CorpusSpec(n_examples=150, seed=0))
    return chatgraph, injector


def fault_server(chatgraph, **overrides) -> ChatGraphServer:
    defaults = dict(workers=2, queue_depth=32,
                    step_timeout_seconds=0.2, step_max_retries=2,
                    retry_backoff_seconds=0.005,
                    breaker_failure_threshold=3,
                    breaker_failure_rate=0.5, breaker_window=6,
                    breaker_cooldown_seconds=60.0, seed=0)
    defaults.update(overrides)
    return ChatGraphServer(chatgraph, ServeConfig(**defaults))


def execute_chain(server, graph, names):
    proposal = server.propose("count the nodes", graph=graph)
    assert proposal.ok
    return server.request(ServeRequest(
        op="execute", pipeline_result=proposal.value,
        chain=APIChain.from_names(names)))


class TestServeUnderFaults:
    def test_retries_absorb_transient_faults(self, fault_stack):
        chatgraph, injector = fault_stack
        graph = social_network(25, 3, seed=2)
        with fault_server(chatgraph) as server:
            response = execute_chain(server, graph, ["count_nodes"])
            assert response.ok
            record = response.value.record
            assert record.ok and not record.is_degraded
            assert record.steps[0].attempts == 3
            snapshot = server.stats()
        assert snapshot["counters"]["step_retried"] >= 2
        # the recovery is visible in the monitor transcript
        transcript = response.value.monitor.transcript()
        assert "step_retried" in transcript
        assert response.value.monitor.retries == 2
        assert injector.stats()["injected_failures"]["count_nodes"] == 2

    def test_hung_step_times_out_and_degrades(self, fault_stack):
        chatgraph, _ = fault_stack
        graph = social_network(25, 3, seed=2)
        with fault_server(chatgraph, step_max_retries=1) as server:
            response = execute_chain(server, graph,
                                     ["count_edges", "graph_summary"])
            assert response.ok  # the *request* resolves
            record = response.value.record
            assert record.is_degraded
            assert record.degraded[0].reason == "timeout"
            assert record.steps[1].ok  # chain continued
            snapshot = server.stats()
        assert snapshot["counters"]["step_timed_out"] >= 1
        assert snapshot["counters"]["degraded_responses"] >= 1
        assert "step_timed_out" in response.value.monitor.transcript()

    def test_persistent_failure_opens_breaker_then_degrades(
            self, fault_stack):
        chatgraph, _ = fault_stack
        graph = social_network(25, 3, seed=2)
        with fault_server(chatgraph) as server:
            # 3 attempts per chain; threshold 3 -> first chain trips it
            first = execute_chain(server, graph,
                                  ["graph_density", "graph_summary"])
            record = first.value.record
            assert record.degraded[0].reason == "retries_exhausted"
            second = execute_chain(server, graph,
                                   ["graph_density", "graph_summary"])
            degraded = second.value.record.degraded[0]
            assert degraded.reason == "breaker_open"
            # partial results still flow: the healthy step ran
            assert second.value.record.steps[1].ok
            snapshot = server.stats()
        assert snapshot["counters"]["breaker_opened"] >= 1
        assert snapshot["breakers"]["graph_density"]["state"] == "open"
        assert "breaker_opened" in second.value.monitor.transcript() or \
            "breaker_opened" in first.value.monitor.transcript()

    def test_robustness_settings_restored_after_stop(self, fault_stack):
        chatgraph, _ = fault_stack
        before = (chatgraph.robustness_policy, chatgraph.breakers)
        server = fault_server(chatgraph)
        with server:
            assert chatgraph.robustness_policy is server.policy
            assert chatgraph.breakers is server.breakers
        assert (chatgraph.robustness_policy, chatgraph.breakers) == before
