"""Tests for category routing and fallback chains (pipeline policy)."""

import pytest

from repro.apis.registry import Category
from repro.core.pipeline import DEFAULT_FALLBACK, FALLBACK_CHAINS
from repro.llm.intent import CATEGORY_ROUTING, GRAPH_TYPES, INTENTS


class TestCategoryRouting:
    def test_every_graph_type_routed(self):
        for graph_type in GRAPH_TYPES:
            assert graph_type in CATEGORY_ROUTING

    def test_every_route_includes_generic_and_report(self):
        for categories in CATEGORY_ROUTING.values():
            assert Category.GENERIC in categories
            assert Category.REPORT in categories

    def test_molecule_route_excludes_social(self):
        assert Category.SOCIAL not in CATEGORY_ROUTING["molecule"]
        assert Category.KNOWLEDGE not in CATEGORY_ROUTING["molecule"]

    def test_generic_route_is_everything(self):
        assert set(CATEGORY_ROUTING["generic"]) == set(Category)


class TestFallbackChains:
    def test_all_fallbacks_validate(self, registry):
        from repro.apis import APIChain
        for chain_names in list(FALLBACK_CHAINS.values()) \
                + [DEFAULT_FALLBACK]:
            APIChain.from_names(list(chain_names)).validate(registry)

    def test_fallback_apis_within_routed_categories(self, registry):
        for (graph_type, __), chain_names in FALLBACK_CHAINS.items():
            allowed = set(CATEGORY_ROUTING[graph_type])
            for name in chain_names:
                assert registry.get(name).category in allowed, \
                    (graph_type, name)

    def test_fallback_keys_are_known(self):
        for graph_type, intent in FALLBACK_CHAINS:
            assert graph_type in GRAPH_TYPES
            assert intent in INTENTS

    def test_nonsense_prompt_falls_back_per_type(self, chatgraph,
                                                 social_graph, kg_graph):
        """Gibberish prompts still produce type-appropriate chains."""
        for graph, graph_type in ((social_graph, "social"),
                                  (kg_graph, "knowledge")):
            result = chatgraph.propose("qqq zzz xyzzy plugh", graph)
            allowed = set(CATEGORY_ROUTING[graph_type])
            for name in result.chain.api_names():
                assert chatgraph.registry.get(name).category in allowed

    def test_default_fallback_needs_only_a_graph(self, chatgraph,
                                                 random_graph):
        from repro.apis import APIChain, ChainContext
        chain = APIChain.from_names(list(DEFAULT_FALLBACK))
        record = chatgraph.executor.execute(
            chain, ChainContext(graph=random_graph))
        assert record.ok


class TestSuggestionsAnswerable:
    """Every suggested question for every graph type yields a valid,
    executable chain — panel 2 never suggests something that breaks."""

    @pytest.mark.parametrize("kind", ["social", "molecule", "knowledge"])
    def test_suggestions_execute(self, chatgraph, kind):
        from repro.core.suggestions import _SUGGESTIONS
        from repro.graphs import knowledge_graph, social_network
        from repro.chem import parse_smiles
        graphs = {
            "social": social_network(25, 2, seed=0),
            "molecule": parse_smiles("CC(=O)Oc1ccccc1C(=O)O").to_graph(),
            "knowledge": knowledge_graph(20, 60, seed=0),
        }
        for question in _SUGGESTIONS[kind]:
            response = chatgraph.ask(question, graph=graphs[kind])
            assert response.record is not None
            assert response.record.ok, (kind, question,
                                        [s.error for s in
                                         response.record.steps if not s.ok])
