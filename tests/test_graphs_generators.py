"""Tests for synthetic graph generators."""

import pytest

from repro.graphs import (
    ba_graph,
    complete_graph,
    cycle_graph,
    er_graph,
    grid_graph,
    knowledge_graph,
    molecule_like_graph,
    path_graph,
    planted_partition_graph,
    social_network,
    star_graph,
)
from repro.graphs.generators import KG_ENTITY_TYPES, KG_RELATIONS


class TestDeterministicShapes:
    def test_path_graph(self):
        g = path_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.number_of_edges() == 6
        assert all(g.degree(n) == 2 for n in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.number_of_edges() == 10

    def test_star_graph(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.number_of_edges() == 4

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4


class TestRandomGraphs:
    def test_er_deterministic_per_seed(self):
        assert er_graph(20, 0.2, seed=5) == er_graph(20, 0.2, seed=5)

    def test_er_seed_changes_graph(self):
        assert er_graph(20, 0.2, seed=1) != er_graph(20, 0.2, seed=2)

    def test_er_p_bounds(self):
        with pytest.raises(ValueError):
            er_graph(10, 1.5)
        assert er_graph(10, 0.0).number_of_edges() == 0
        assert er_graph(6, 1.0).number_of_edges() == 15

    def test_ba_graph_size(self):
        g = ba_graph(50, 2, seed=0)
        assert g.number_of_nodes() == 50
        # clique edges + 2 per new node
        assert g.number_of_edges() == 3 + 2 * 47

    def test_ba_bad_params(self):
        with pytest.raises(ValueError):
            ba_graph(3, 3)

    def test_ba_has_hubs(self):
        g = ba_graph(200, 2, seed=1)
        degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
        assert degrees[0] > 10  # preferential attachment creates hubs


class TestDomainGraphs:
    def test_planted_partition_membership(self):
        g = planted_partition_graph([10, 10], 0.5, 0.01, seed=0)
        communities = {g.get_node_attr(n, "community") for n in g.nodes()}
        assert communities == {0, 1}

    def test_social_network_attrs(self):
        g = social_network(30, 3, seed=0)
        assert g.number_of_nodes() == 30
        node = next(iter(g.nodes()))
        assert g.get_node_attr(node, "kind") == "person"
        assert g.get_node_attr(node, "name").startswith("user_")

    def test_social_network_bad_params(self):
        with pytest.raises(ValueError):
            social_network(2, 5)

    def test_knowledge_graph_typed(self):
        kg = knowledge_graph(20, 60, seed=0)
        for node in kg.nodes():
            assert kg.get_node_attr(node, "entity_type") in KG_ENTITY_TYPES
        for u, v in kg.edges():
            assert kg.get_edge_attr(u, v, "relation") in KG_RELATIONS

    def test_knowledge_graph_signature_respected(self):
        kg = knowledge_graph(40, 120, seed=1)
        for u, v in kg.edges():
            if kg.get_edge_attr(u, v, "relation") == "works_at":
                assert kg.get_node_attr(u, "entity_type") == "person"
                assert kg.get_node_attr(v, "entity_type") == "organization"

    def test_molecule_like_graph(self):
        g = molecule_like_graph(2, 3, seed=0)
        elements = {g.get_node_attr(n, "element") for n in g.nodes()}
        assert "C" in elements
        assert all(g.get_node_attr(n, "kind") == "atom" for n in g.nodes())
        # two fused 6-rings plus chain
        assert g.number_of_nodes() == 15

    def test_molecule_like_no_rings(self):
        g = molecule_like_graph(0, 4, seed=0)
        assert g.number_of_edges() == g.number_of_nodes() - 1
