"""Property tests: GraphML and edge-list round trips.

The store's guarantee is that any attribute value accepted by the edit
log (``repro.store.records.make_record``) survives export/import.
Hypothesis generates arbitrary JSON attribute values — including
nested lists/dicts, ``None``, and keys whose type conflicts across
elements — and the round trip must restore them exactly.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import DiGraph, Graph
from repro.graphs.graphml import read_graphml, write_graphml
from repro.graphs.io import parse_edgelist_text, write_edgelist
from repro.store.records import make_record

# printable ASCII without the XML/JSON troublemakers the formats do not
# promise to carry (control chars, \r normalization in XML)
_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=12)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-10**9, max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | _text,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(_text, children, max_size=3),
    max_leaves=6)

node_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1,
    max_size=8)

attr_keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8)

attr_dicts = st.dictionaries(attr_keys, json_values, max_size=3)


def assert_attrs_equal(got, want):
    assert set(got) == set(want)
    for key in want:
        a, b = got[key], want[key]
        if isinstance(b, float) and not isinstance(b, bool):
            assert isinstance(a, float) and math.isclose(
                a, b, rel_tol=0, abs_tol=0) or a == b
        else:
            assert a == b and type(a) is type(b)


@settings(max_examples=60, deadline=None)
@given(
    nodes=st.lists(st.tuples(node_ids, attr_dicts), min_size=1,
                   max_size=5, unique_by=lambda item: item[0]),
    extra_edge_attrs=attr_dicts,
    directed=st.booleans(),
)
def test_graphml_round_trips_any_loggable_attrs(nodes, extra_edge_attrs,
                                                directed):
    graph = DiGraph() if directed else Graph()
    for node, attrs in nodes:
        # the store gate: values must be loggable to be in scope
        make_record("add_node", id=node, attrs=attrs)
        graph.add_node(node)
        for key, value in attrs.items():
            graph.set_node_attr(node, key, value)
    ordered = [node for node, __ in nodes]
    for u, v in zip(ordered, ordered[1:]):
        graph.add_edge(u, v)
        for key, value in extra_edge_attrs.items():
            graph.set_edge_attr(u, v, key, value)

    restored = read_graphml_via_tmp(graph)
    assert restored.directed == directed
    assert sorted(restored.nodes(), key=str) == sorted(
        graph.nodes(), key=str)
    for node, attrs in nodes:
        assert_attrs_equal(restored.node_attrs(node), attrs)
    for u, v in graph.edges():
        assert_attrs_equal(restored.edge_attrs(u, v), extra_edge_attrs)


def read_graphml_via_tmp(graph):
    import tempfile
    from pathlib import Path
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "g.graphml"
        write_graphml(graph, path)
        return read_graphml(path)


def test_graphml_widens_conflicting_key_types(tmp_path):
    graph = Graph()
    graph.add_node("a", x=1)
    graph.add_node("b", x="one")
    graph.add_node("c", x=[1, "one"])
    graph.add_node("d", x=None)
    graph.add_node("e", x=True)
    path = tmp_path / "widen.graphml"
    write_graphml(graph, path)
    restored = read_graphml(path)
    for node in graph.nodes():
        got = restored.node_attrs(node)["x"]
        want = graph.node_attrs(node)["x"]
        assert got == want and type(got) is type(want)


@settings(max_examples=60, deadline=None)
@given(
    edges=st.lists(st.tuples(node_ids, node_ids, attr_dicts),
                   min_size=1, max_size=5),
)
def test_edgelist_round_trips_json_attrs(edges, tmp_path_factory):
    graph = Graph()
    for u, v, attrs in edges:
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        # setters, not kwargs: keys like "u" are valid attribute names
        for key, value in attrs.items():
            make_record("set_edge_attr", u=u, v=v, key=key, value=value)
            graph.set_edge_attr(u, v, key, value)
    if graph.number_of_edges() == 0:
        return
    path = tmp_path_factory.mktemp("el") / "g.edgelist"
    write_edgelist(graph, path)
    restored = parse_edgelist_text(path.read_text(encoding="utf-8"))
    assert sorted(map(str, restored.nodes())) == sorted(
        map(str, graph.nodes()))
    for u, v in graph.edges():
        assert_attrs_equal(restored.edge_attrs(u, v),
                           graph.edge_attrs(u, v))


def test_edgelist_attr_values_with_spaces_stay_one_token(tmp_path):
    graph = Graph()
    graph.add_edge("a", "b", label="two words",
                   data=[1, "x y", {"a b": None}])
    path = tmp_path / "g.edgelist"
    write_edgelist(graph, path)
    line = next(line for line in path.read_text().splitlines()
                if line.startswith("a b "))
    # each key=value token is whitespace-free, so the line re-splits
    # into exactly u, v, and one token per attribute
    assert len(line.split()) == 2 + len(graph.edge_attrs("a", "b"))
    restored = parse_edgelist_text(path.read_text())
    assert restored.edge_attrs("a", "b") == graph.edge_attrs("a", "b")
