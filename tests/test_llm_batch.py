"""Batched decode kernels vs their scalar references.

The batched model surface (``next_distribution_batch``,
``greedy_decode_batch``, the ``BatchScorer`` behind beam search) must
make the *same decoding decisions* as the scalar path — these tests pin
that down with property-based state generation, a 10-step beam
regression against an independent reference implementation, and the
masked-token expansion rule.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.llm import (
    BatchScorer,
    ChainLanguageModel,
    TrainingExample,
    beam_decode,
    greedy_decode,
    greedy_decode_batch,
)
from repro.llm.chain_model import GenerationState

APIS = ["load_graph", "count_nodes", "count_edges", "pagerank",
        "find_communities", "shortest_path", "visualize", "report"]

PROMPTS = [
    "how many people are in this network",
    "who is the most influential node",
    "find tightly knit groups",
    "shortest route between two members",
    "draw the graph and summarize it",
    "count all the relationships",
]


def _state(text, retrieved=(), prefix=(), allowed=(), graph_tokens=()):
    return GenerationState(prompt_text=text, retrieved=tuple(retrieved),
                           prefix=tuple(prefix), allowed=tuple(allowed),
                           graph_tokens=tuple(graph_tokens))


@pytest.fixture(scope="module")
def trained_model():
    """A model with non-trivial weights (a few SGD epochs)."""
    model = ChainLanguageModel(api_names=APIS, seed=3)
    examples = [
        TrainingExample(question=PROMPTS[0],
                        target_chains=(("load_graph", "count_nodes"),)),
        TrainingExample(question=PROMPTS[1],
                        target_chains=(("load_graph", "pagerank",
                                        "report"),)),
        TrainingExample(question=PROMPTS[2],
                        target_chains=(("load_graph", "find_communities",
                                        "visualize"),)),
        TrainingExample(question=PROMPTS[3],
                        target_chains=(("load_graph", "shortest_path"),)),
    ]
    for __ in range(8):
        for example in examples:
            state = example.state()
            for target in example.target_chains[0] + ("<eos>",):
                model.train_step(state, target)
                if target != "<eos>":
                    state = state.advance(target)
    return model


# ---------------------------------------------------------------------------
# next_distribution_batch == per-state next_distribution
# ---------------------------------------------------------------------------

subsets = st.lists(st.sampled_from(APIS), unique=True, max_size=5)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(texts=st.lists(st.sampled_from(PROMPTS), min_size=1, max_size=6),
       retrieved=subsets, allowed=subsets,
       prefix=st.lists(st.sampled_from(APIS), max_size=3),
       seed=st.integers(0, 3))
def test_batch_distribution_matches_scalar(texts, retrieved, allowed,
                                           prefix, seed):
    model = ChainLanguageModel(api_names=APIS, seed=seed)
    states = [_state(text, retrieved=retrieved, allowed=allowed,
                     prefix=tuple(prefix),
                     graph_tokens=(("nodes", len(text)),))
              for text in texts]
    batch = model.next_distribution_batch(states)
    assert batch.shape == (len(states), model.vocab_size)
    for row, state in enumerate(states):
        scalar = model.next_distribution(state)
        np.testing.assert_allclose(batch[row], scalar,
                                   rtol=1e-12, atol=1e-15)
        # the decisions decoding actually takes must be identical
        assert int(np.argmax(batch[row])) == int(np.argmax(scalar))
        # masked (disallowed) candidates are exactly zero in both
        assert np.array_equal(batch[row] == 0.0, scalar == 0.0)


def test_batch_distribution_empty_input():
    model = ChainLanguageModel(api_names=APIS, seed=0)
    out = model.next_distribution_batch([])
    assert out.shape == (0, model.vocab_size)


def test_batch_scorer_matches_scalar(trained_model):
    states = [_state(p, retrieved=("pagerank", "report"))
              for p in PROMPTS]
    scorer = BatchScorer(trained_model, states)
    probs = scorer.distributions(states, list(range(len(states))))
    for row, state in enumerate(states):
        np.testing.assert_allclose(
            probs[row], trained_model.next_distribution(state),
            rtol=1e-12, atol=1e-15)


# ---------------------------------------------------------------------------
# greedy_decode_batch == per-state greedy_decode
# ---------------------------------------------------------------------------

def test_greedy_batch_matches_scalar(trained_model):
    states = [_state(text, retrieved=retrieved, allowed=allowed)
              for text in PROMPTS
              for retrieved in ((), ("load_graph", "pagerank", "report"))
              for allowed in ((), tuple(APIS[:4]))]
    scalar = [greedy_decode(trained_model, s, max_length=6)
              for s in states]
    batched = greedy_decode_batch(trained_model, states, max_length=6)
    assert scalar == batched


def test_greedy_batch_singleton_and_empty(trained_model):
    assert greedy_decode_batch(trained_model, [], max_length=4) == []
    state = _state(PROMPTS[0])
    assert greedy_decode_batch(trained_model, [state], max_length=4) == [
        greedy_decode(trained_model, state, max_length=4)]


# ---------------------------------------------------------------------------
# beam search: 10-step regression vs an exact reference
# ---------------------------------------------------------------------------

def _reference_beam(model, state, beam_width, max_length):
    """Independent beam search carrying per-step log-prob lists.

    Totals are recomputed by a fresh left-to-right sum each step, so a
    production implementation that accumulates drift (e.g. one that
    reconstructs the total from the length-normalized score) diverges
    from it over long decodes.
    """
    beams = [((), state, [], False)]  # chain, state, logps, finished
    tie = 0
    scored = [(0.0, 0, beams[0])]
    for __ in range(max_length + 1):
        if all(entry[2][3] for entry in scored):
            break
        expanded = []
        tie_local = tie
        for score, t, (chain, current, logps, finished) in scored:
            if finished:
                expanded.append((score, t, (chain, current, logps, True)))
                continue
            probs = model.next_distribution(current)
            order = np.argsort(probs)[::-1][:beam_width]
            for token_id in order:
                p = float(probs[token_id])
                if p == 0.0:
                    continue
                logp = float(np.log(p))
                tie_local += 1
                new_logps = logps + [logp]
                total = 0.0
                for value in new_logps:  # fresh left-to-right sum
                    total += value
                if int(token_id) == model.eos_id:
                    new_score = -total / (len(chain) + 2)
                    expanded.append((new_score, tie_local,
                                     (chain, current, new_logps, True)))
                else:
                    name = model.token_name(int(token_id))
                    new_chain = chain + (name,)
                    new_score = -total / (len(new_chain) + 1)
                    expanded.append((new_score, tie_local,
                                     (new_chain, current.advance(name),
                                      new_logps, False)))
        tie = tie_local
        scored = sorted(expanded)[:beam_width]
    finished = [e for e in scored if e[2][3]] or scored
    best = min(finished)
    return list(best[2][0])


@pytest.mark.parametrize("beam_width", [1, 2, 4])
def test_beam_matches_reference_10_steps(trained_model, beam_width):
    for text in PROMPTS:
        state = _state(text)
        got = beam_decode(trained_model, state, beam_width=beam_width,
                          max_length=10)
        want = _reference_beam(trained_model, state, beam_width, 10)
        assert got == want, (text, beam_width)


def test_beam_long_chain_no_score_drift(trained_model):
    # force long chains: EOS only competitive at max length
    state = _state("walk through every analysis step",
                   allowed=tuple(APIS))
    got = beam_decode(trained_model, state, beam_width=3, max_length=10)
    want = _reference_beam(trained_model, state, 3, 10)
    assert got == want


# ---------------------------------------------------------------------------
# masked tokens are never expanded
# ---------------------------------------------------------------------------

def test_beam_never_expands_masked_tokens(trained_model):
    allowed = ("load_graph", "count_nodes")
    state = _state("count the nodes please", allowed=allowed)
    # beam_width far larger than the candidate set: a buggy expansion
    # would pull in probability-0.0 (masked) tokens
    chain = beam_decode(trained_model, state, beam_width=16,
                        max_length=10)
    assert set(chain) <= set(allowed)


def test_beam_masked_probability_exactly_zero(trained_model):
    state = _state("count the nodes please",
                   allowed=("load_graph", "count_nodes"))
    probs = trained_model.next_distribution(state)
    allowed_ids = {trained_model._vocab["load_graph"],
                   trained_model._vocab["count_nodes"],
                   trained_model.eos_id}
    for token_id, p in enumerate(probs):
        if token_id not in allowed_ids:
            assert p == 0.0
    assert math.isclose(float(probs.sum()), 1.0, rel_tol=1e-12)
