"""Lint: the store's on-disk layout is private to ``repro/store``.

``repro/store/layout.py`` is the single definition of the store's file
names (``*.editlog``, ``*.snap``, ``manifest.json``).  Any other module
that spells those names in a string literal is reaching into the store
directory by hand and will drift silently if the layout changes — it
must go through the catalog API (or ``repro.store.layout``) instead.

This lint walks every module under ``src/repro`` except the store
package itself and rejects any string literal containing a reserved
layout token.  A token only counts when it ends the word it appears in
(``"x.snap"`` violates, prose mentioning ``.snapshot()`` does not).
"""

import re

import ast
from pathlib import Path

from repro.store.layout import RESERVED_TOKENS

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
OWNER = SRC / "store"


def iter_source_files():
    return sorted(path for path in SRC.rglob("*.py")
                  if OWNER not in path.parents)


_PATTERNS = [(token, re.compile(re.escape(token) + r"(?![A-Za-z0-9_])"))
             for token in RESERVED_TOKENS]


def violations_in(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, str):
            for token, pattern in _PATTERNS:
                if pattern.search(node.value):
                    found.append(
                        (node.lineno,
                         f"store-layout literal {node.value!r} "
                         f"(contains {token!r})"))
    return found


def test_source_files_exist():
    files = iter_source_files()
    assert len(files) > 50  # sanity: we are really walking the tree
    assert OWNER.is_dir()
    assert RESERVED_TOKENS  # the token table is non-empty


def test_no_store_path_literals_outside_the_store_package():
    problems = []
    for path in iter_source_files():
        for lineno, message in violations_in(path):
            problems.append(
                f"{path.relative_to(SRC.parent.parent)}:{lineno}: "
                f"{message}")
    assert not problems, (
        "store file names are defined once, in repro/store/layout.py; "
        "use GraphCatalog or repro.store.layout helpers instead of "
        "spelling paths by hand:\n" + "\n".join(problems))


def test_lint_catches_a_planted_violation(tmp_path):
    planted = tmp_path / "bad.py"
    planted.write_text(
        "LOG = root / 'epoch-000000.editlog'\n"
        "MANIFEST = str(root) + '/manifest.json'\n", encoding="utf-8")
    found = violations_in(planted)
    assert len(found) == 2
