"""Tests for the extension modules: assortativity, VP-tree, model
persistence, GraphML, the new catalog APIs and the random molecule
generator."""

import io

import numpy as np
import pytest

from repro.algorithms import (
    attribute_assortativity,
    degree_assortativity,
)
from repro.ann import BruteForceIndex, VPTreeIndex
from repro.apis import APIChain, ChainContext, ChainExecutor, ChainNode
from repro.chem import parse_smiles, random_molecule, write_smiles
from repro.errors import ChatGraphError, GraphError, GraphIOError, ModelError
from repro.graphs import (
    Graph,
    complete_graph,
    read_graphml,
    social_network,
    star_graph,
    write_graphml,
)
from repro.llm import ChainLanguageModel, load_model, save_model
from repro.llm.chain_model import GenerationState


class TestAssortativity:
    def test_star_disassortative(self):
        assert degree_assortativity(star_graph(6)) < -0.9

    def test_regular_graph_neutral(self):
        # all degrees equal -> zero variance -> 0.0 by convention
        assert degree_assortativity(complete_graph(5)) == 0.0

    def test_tiny_graph_zero(self):
        g = Graph()
        g.add_edge(1, 2)
        assert degree_assortativity(g) == 0.0

    def test_matches_networkx(self):
        import networkx as nx
        from repro.graphs import er_graph
        for seed in range(4):
            g = er_graph(30, 0.12, seed=seed)
            G = nx.Graph()
            G.add_nodes_from(g.nodes())
            G.add_edges_from(g.edges())
            theirs = nx.degree_assortativity_coefficient(G)
            assert degree_assortativity(g) == pytest.approx(theirs,
                                                            abs=1e-6)

    def test_attribute_homophily(self):
        g = social_network(40, 2, p_in=0.5, p_out=0.01, seed=1)
        r = attribute_assortativity(g, "community")
        assert r > 0.7

    def test_attribute_missing_raises(self):
        with pytest.raises(GraphError):
            attribute_assortativity(complete_graph(3), "nope")

    def test_perfectly_mixed_attribute(self):
        g = Graph()
        g.add_node(1, team="a")
        g.add_node(2, team="a")
        g.add_edge(1, 2)
        assert attribute_assortativity(g, "team") == 1.0


class TestVPTree:
    def test_exact_agreement_with_brute_force(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(300, 8))
        queries = rng.normal(size=(15, 8))
        vp = VPTreeIndex().build(data)
        bf = BruteForceIndex().build(data)
        for q in queries:
            assert [h.vector_id for h in vp.search(q, 5)] == \
                [h.vector_id for h in bf.search(q, 5)]

    def test_prunes_in_low_dimension(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(2000, 2))
        vp = VPTreeIndex().build(data)
        vp.reset_counters()
        for q in rng.normal(size=(20, 2)):
            vp.search(q, 1)
        assert vp.distance_computations / 20 < len(data) / 2

    def test_single_point(self):
        vp = VPTreeIndex().build(np.array([[1.0, 1.0]]))
        assert vp.search(np.zeros(2), 1)[0].vector_id == 0


class TestModelPersistence:
    def test_roundtrip_identical_distributions(self, tmp_path):
        model = ChainLanguageModel(api_names=["a", "b", "c"], seed=3)
        state = GenerationState(prompt_text="do a thing")
        for __ in range(10):
            model.train_step(state, "b")
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert np.allclose(loaded.next_distribution(state),
                           model.next_distribution(state))
        assert loaded.learning_rate == model.learning_rate
        assert loaded.token_id("c") == model.token_id("c")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_model(tmp_path / "missing.npz")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ModelError):
            load_model(path)

    def test_finetuned_chatgraph_model_roundtrip(self, chatgraph,
                                                 tmp_path):
        path = tmp_path / "chain_model.npz"
        save_model(chatgraph.model, path)
        loaded = load_model(path)
        assert loaded.vocab_size == chatgraph.model.vocab_size


class TestGraphml:
    def test_roundtrip_counts_and_attrs(self, tmp_path):
        g = social_network(15, 2, seed=4)
        path = tmp_path / "g.graphml"
        write_graphml(g, path)
        g2 = read_graphml(path)
        assert g2.number_of_nodes() == g.number_of_nodes()
        assert g2.number_of_edges() == g.number_of_edges()
        node = next(iter(g2.nodes()))
        assert g2.get_node_attr(node, "kind") == "person"
        assert isinstance(g2.get_node_attr(node, "community"), int)

    def test_directed_roundtrip(self, tmp_path, kg_graph):
        path = tmp_path / "kg.graphml"
        write_graphml(kg_graph, path)
        back = read_graphml(path)
        assert back.directed
        assert back.number_of_edges() == kg_graph.number_of_edges()
        u, v = next(iter(back.edges()))
        assert back.get_edge_attr(u, v, "relation") is not None

    def test_invalid_xml_raises(self, tmp_path):
        path = tmp_path / "broken.graphml"
        path.write_text("<graphml><graph>")
        with pytest.raises(GraphIOError):
            read_graphml(path)

    def test_json_attrs_roundtrip_and_non_json_rejected(self, tmp_path):
        # lists/dicts/None ride the "json" extension type (see
        # docs/STORE.md: everything the edit log accepts must survive)
        g = Graph()
        g.add_node(1, stuff=[1, 2], extra={"a": None})
        path = tmp_path / "x.graphml"
        write_graphml(g, path)
        back = read_graphml(path)
        node = next(iter(back.nodes()))
        assert back.get_edge_attr is not None  # api smoke
        assert back.node_attrs(node)["stuff"] == [1, 2]
        assert back.node_attrs(node)["extra"] == {"a": None}
        g.add_node(2, bad=object())
        with pytest.raises(GraphIOError):
            write_graphml(g, tmp_path / "y.graphml")


class TestNewApis:
    @pytest.fixture()
    def executor(self, registry):
        return ChainExecutor(registry)

    def run_one(self, executor, api_name, context, **params):
        chain = APIChain([ChainNode(api_name, dict(params))])
        return executor.execute(chain, context).final_result

    def test_assortativity_api(self, executor):
        result = self.run_one(executor, "assortativity",
                              ChainContext(graph=star_graph(5)))
        assert result["degree_assortativity"] < -0.9
        assert "disassortative" in result["tendency"]

    def test_homophily_api(self, executor, social_graph):
        result = self.run_one(executor, "homophily",
                              ChainContext(graph=social_graph))
        assert result["homophilous"] is True

    def test_substructure_count_carboxyl(self, executor):
        aspirin = parse_smiles("CC(=O)Oc1ccccc1C(=O)O")
        result = self.run_one(executor, "substructure_count",
                              ChainContext(graph=aspirin.to_graph()),
                              pattern="C(=O)O")
        assert result["n_distinct_sites"] == 2

    def test_substructure_count_requires_pattern(self, executor):
        from repro.errors import ChainExecutionError
        with pytest.raises(ChainExecutionError):
            self.run_one(executor, "substructure_count",
                         ChainContext(graph=parse_smiles("C").to_graph()))

    def test_find_substructure_labeled(self, executor):
        mol = parse_smiles("CCO")
        result = self.run_one(
            executor, "find_substructure",
            ChainContext(graph=mol.to_graph()),
            pattern_edges=[("C1", "O1")], label_key="element")
        assert result["n_matches"] == 1  # the single C-O bond

    def test_find_substructure_symmetric_pattern(self, executor):
        mol = parse_smiles("CCO")
        result = self.run_one(
            executor, "find_substructure",
            ChainContext(graph=mol.to_graph()),
            pattern_edges=[("C1", "C2")], label_key="element")
        assert result["n_matches"] == 2  # C-C in both orientations

    def test_find_substructure_unlabeled(self, executor):
        result = self.run_one(
            executor, "find_substructure",
            ChainContext(graph=complete_graph(4)),
            pattern_edges=[(0, 1), (1, 2), (0, 2)], max_matches=100)
        assert result["n_matches"] == 24  # 4 triangles x 6 automorphisms


class TestRandomMolecule:
    def test_valence_respected(self):
        from repro.chem.elements import ELEMENTS
        for seed in range(20):
            mol = random_molecule(n_atoms=15, n_rings=2, seed=seed)
            for atom in mol.atoms:
                valence = ELEMENTS[atom.element].valence
                assert mol.bond_order_sum(atom.index) <= valence + 1e-9

    def test_connected(self):
        for seed in range(10):
            assert random_molecule(10, 1, seed=seed).is_connected()

    def test_writable(self):
        for seed in range(10):
            mol = random_molecule(12, 2, seed=seed)
            text = write_smiles(mol)
            back = parse_smiles(text)
            assert back.n_atoms == mol.n_atoms

    def test_deterministic(self):
        a = write_smiles(random_molecule(10, 1, seed=5))
        b = write_smiles(random_molecule(10, 1, seed=5))
        assert a == b

    def test_bad_size(self):
        with pytest.raises(ValueError):
            random_molecule(0)


class TestCli:
    @pytest.fixture()
    def cli(self, chatgraph):
        from repro.cli import ChatCli
        return ChatCli(chatgraph, out=io.StringIO())

    def run_script(self, cli, *lines):
        for line in lines:
            cli.handle(line)
        return cli.out.getvalue()

    def test_demo_and_question(self, cli):
        output = self.run_script(
            cli, "/demo social", "how many nodes does the graph have")
        assert "count_nodes: 50" in output

    def test_suggest(self, cli):
        output = self.run_script(cli, "/demo kg", "/suggest")
        assert "Clean G" in output

    def test_manual_confirm_flow(self, cli):
        output = self.run_script(
            cli, "/demo social", "/manual",
            "Write a brief report for G", "/chain",
            "/edit remove 1", "/confirm")
        assert "Graph report" in output
        assert "(confirm with /confirm" in output

    def test_reject(self, cli):
        output = self.run_script(
            cli, "/demo social", "/manual", "count the nodes", "/reject")
        assert "chain discarded" in output

    def test_unknown_command(self, cli):
        assert "unknown command" in self.run_script(cli, "/bogus")

    def test_error_reported_not_raised(self, cli):
        output = self.run_script(cli, "/upload /no/such/file.json")
        assert "error:" in output

    def test_apis_listing(self, cli):
        output = self.run_script(cli, "/apis")
        assert "detect_communities" in output

    def test_config_shown(self, cli):
        output = self.run_script(cli, "/config")
        assert "top_k_apis" in output

    def test_quit_stops(self, cli):
        self.run_script(cli, "/quit")
        assert not cli.running

    def test_load_graph_kinds(self, tmp_path, chatgraph):
        from repro.cli import load_graph
        import json as json_mod
        from repro.graphs.io import to_dict
        g = social_network(10, 2, seed=0)
        json_path = tmp_path / "g.json"
        json_path.write_text(json_mod.dumps(to_dict(g)))
        assert load_graph(str(json_path)).number_of_nodes() == 10
        smi_path = tmp_path / "m.smi"
        smi_path.write_text("CCO\n")
        assert load_graph(str(smi_path)).number_of_nodes() == 3
        with pytest.raises(ChatGraphError):
            load_graph(str(tmp_path / "missing.json"))
