"""Scalar/batch parity at the stage-graph level.

``process_batch(prompts)`` must equal ``[process(p) for p in prompts]``
field by field — chains, retrieved names, fallback flags, routing —
across mixed graph/no-graph prompts, unembeddable texts and
invalid-chain (nonsense) inputs, for all three model presets.  The
hypothesis strategy draws arbitrary mixed batches from that input
space; a warmed-cache case covers the batched MISS-sentinel path.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ChatGraph
from repro.config import MODEL_PRESETS, ChatGraphConfig, LLMConfig
from repro.graphs import knowledge_graph, molecule_like_graph, social_network
from repro.llm.prompts import Prompt
from repro.serve.cache import PipelineCaches

#: Mixed input space: routable prompts, compute questions, nonsense
#: that forces the repair fallback, and unembeddable punctuation-only
#: text that degrades retrieval.
TEXTS = (
    "write a brief report for G",
    "count the nodes",
    "find communities",
    "clean up the knowledge graph",
    "is this molecule toxic",
    "zzz qqq xxx yyy",          # invalid chain -> repair fallback
    "?!. ,,,",                  # unembeddable -> empty retrieval
)

GRAPHS = (
    None,                       # no-graph prompt
    social_network(25, 3, p_in=0.3, p_out=0.02, seed=1),
    knowledge_graph(n_entities=25, n_facts=80, seed=3),
    molecule_like_graph(n_rings=2, chain_length=3, seed=0),
)

prompt_indices = st.lists(
    st.tuples(st.integers(0, len(TEXTS) - 1),
              st.integers(0, len(GRAPHS) - 1)),
    min_size=1, max_size=6)


@pytest.fixture(scope="module", params=MODEL_PRESETS)
def preset_chatgraph(request):
    config = ChatGraphConfig(llm=LLMConfig(model=request.param))
    return ChatGraph.pretrained(config=config, corpus_size=300, seed=0)


def build_prompts(indices):
    return [Prompt(TEXTS[t], GRAPHS[g]) for t, g in indices]


def assert_result_parity(scalar, batched):
    assert len(scalar) == len(batched)
    for expected, actual in zip(scalar, batched):
        assert actual.intent == expected.intent
        assert actual.graph_type == expected.graph_type
        assert actual.retrieved == expected.retrieved
        assert actual.used_fallback == expected.used_fallback
        assert actual.chain.api_names() == expected.chain.api_names()
        if expected.type_prediction is None:
            assert actual.type_prediction is None
        else:
            assert actual.type_prediction.graph_type == \
                expected.type_prediction.graph_type
        if expected.sequences is None:
            assert actual.sequences is None
        else:
            assert actual.sequences.n_sequences == \
                expected.sequences.n_sequences
        assert set(actual.timings) == set(expected.timings)


class TestScalarBatchParity:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(indices=prompt_indices)
    def test_batch_equals_mapped_scalar(self, preset_chatgraph, indices):
        pipeline = preset_chatgraph.pipeline
        prompts = build_prompts(indices)
        scalar = [pipeline.process(p) for p in prompts]
        batched = pipeline.process_batch(build_prompts(indices))
        assert_result_parity(scalar, batched)

    def test_empty_batch(self, preset_chatgraph):
        assert preset_chatgraph.pipeline.process_batch([]) == []

    def test_parity_with_warm_and_cold_caches(self, preset_chatgraph):
        """Batched cache misses (MISS sentinel) match the scalar path."""
        pipeline = preset_chatgraph.pipeline
        prompts = build_prompts([(0, 1), (6, 1), (1, 0), (0, 1), (5, 2)])
        scalar = [pipeline.process(p) for p in prompts]
        caches = PipelineCaches.with_sizes()
        try:
            preset_chatgraph.enable_caches(caches)
            # warm a strict subset so the batch mixes hits and misses
            pipeline.process(prompts[0])
            batched = pipeline.process_batch(prompts)
        finally:
            preset_chatgraph.enable_caches(None)
        assert_result_parity(scalar, batched)
        stats = caches.retrieval.stats()
        assert stats.hits > 0 and stats.misses > 0
        # the unembeddable text's degraded () was never memoized
        assert all(key[0] != TEXTS[6]
                   for key in caches.retrieval._data)


class TestBeamParity:
    def test_beam_decoding_batch_matches_scalar(self):
        config = ChatGraphConfig(llm=LLMConfig(beam_width=3))
        cg = ChatGraph.pretrained(config=config, corpus_size=300, seed=1)
        prompts = build_prompts([(0, 1), (2, 1), (3, 2), (5, 0)])
        scalar = [cg.pipeline.process(p) for p in prompts]
        batched = cg.pipeline.process_batch(prompts)
        assert_result_parity(scalar, batched)
