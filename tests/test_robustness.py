"""Robustness tests: typo noise, odd graphs, adversarial-ish inputs."""

import pytest

from repro.apis import default_registry
from repro.config import FinetuneConfig
from repro.finetune import CorpusSpec, Finetuner, build_corpus, evaluate_model
from repro.finetune.dataset import _inject_typo
from repro.graphs import Graph, complete_graph, star_graph
from repro.llm import build_model


class TestTypoInjection:
    def test_typo_changes_text(self):
        import random
        rng = random.Random(0)
        changed = sum(
            _inject_typo("count the triangles of this graph", rng)
            != "count the triangles of this graph"
            for __ in range(20))
        assert changed >= 18

    def test_short_text_untouched(self):
        import random
        assert _inject_typo("abc", random.Random(0)) == "abc"

    def test_corpus_typo_rate(self, registry):
        from repro.finetune.dataset import (
            AMBIGUOUS_TEMPLATES,
            TEMPLATES,
            _FILLERS_PREFIX,
            _FILLERS_SUFFIX,
        )
        noisy, noisy_test = build_corpus(
            registry, CorpusSpec(n_examples=100, seed=5, typo_rate=1.0))
        pristine = {
            prefix + phrasing + suffix
            for template in TEMPLATES + AMBIGUOUS_TEMPLATES
            for phrasing in template.phrasings
            for prefix in _FILLERS_PREFIX
            for suffix in _FILLERS_SUFFIX}
        typod = sum(example.question not in pristine
                    for example in noisy + noisy_test)
        assert typod > 85  # nearly every question carries a typo

    def test_model_robust_to_typos(self):
        """Train clean, evaluate on typo'd questions: accuracy degrades
        gracefully (char n-gram features catch misspellings)."""
        registry = default_registry()
        train, __ = build_corpus(registry,
                                 CorpusSpec(n_examples=400, seed=0))
        __, noisy_test = build_corpus(registry,
                                      CorpusSpec(n_examples=400, seed=0,
                                                 typo_rate=1.0))
        model = build_model("chatglm-sim", registry.names(), seed=0)
        Finetuner(model, FinetuneConfig(epochs=5)).train(
            train, objective="token")
        clean_metrics = evaluate_model(model, train[:80])
        noisy_metrics = evaluate_model(model, noisy_test)
        assert clean_metrics.exact_match > 0.9
        assert noisy_metrics.exact_match >= \
            clean_metrics.exact_match - 0.3


class TestOddGraphs:
    """The chat surface must survive degenerate uploads."""

    def test_single_node_graph(self, chatgraph):
        g = Graph()
        g.add_node("alone")
        response = chatgraph.ask("write a brief report for G", graph=g)
        assert isinstance(response.answer, str)

    def test_self_loop_graph(self, chatgraph):
        g = Graph()
        g.add_edge("a", "a")
        g.add_edge("a", "b")
        response = chatgraph.ask("count the nodes", graph=g)
        assert response.results().get("count_nodes") == 2

    def test_huge_star(self, chatgraph):
        response = chatgraph.ask("count the edges",
                                 graph=star_graph(500))
        assert response.results().get("count_edges") == 500

    def test_dense_clique(self, chatgraph):
        response = chatgraph.ask("how many triangles does the graph "
                                 "contain", graph=complete_graph(12))
        assert response.results().get("count_triangles") == 220

    def test_string_and_tuple_node_ids(self, chatgraph):
        g = Graph()
        g.add_edge(("a", 1), ("b", 2))
        g.add_edge("plain", ("a", 1))
        response = chatgraph.ask("count the nodes", graph=g)
        assert response.results().get("count_nodes") == 3


class TestAdversarialText:
    def test_empty_question_survives(self, chatgraph, social_graph):
        response = chatgraph.ask("?", graph=social_graph)
        assert isinstance(response.answer, str)

    def test_very_long_question(self, chatgraph, social_graph):
        question = "count the nodes " * 200
        response = chatgraph.ask(question, graph=social_graph)
        assert response.record is not None

    def test_unicode_question(self, chatgraph, social_graph):
        response = chatgraph.ask("how many nodes does the graph have — "
                                 "s'il vous plaît ✨", graph=social_graph)
        assert response.results().get("count_nodes") == 40
