"""Tests for the second extension round: ring motifs, entity-type
inference, chain serialization and IDF-weighted retrieval."""

import json

import pytest

from repro.apis import APIChain, ChainNode, default_registry
from repro.chem import parse_smiles
from repro.errors import ChainError
from repro.graphs import complete_graph, cycle_graph, path_graph
from repro.kb import KnowledgeInferencer, Triple, TripleStore
from repro.retrieval import APIRetriever
from repro.sequencer import build_supergraph
from repro.sequencer.motifs import find_rings


class TestFindRings:
    def test_single_cycle(self):
        rings = find_rings(cycle_graph(6))
        assert rings == [frozenset(range(6))]

    def test_tree_has_no_rings(self):
        assert find_rings(path_graph(6)) == []

    def test_max_size_filter(self):
        assert find_rings(cycle_graph(10), max_size=8) == []
        assert len(find_rings(cycle_graph(8), max_size=8)) == 1

    def test_fused_rings_found(self):
        naphthalene = parse_smiles("c1ccc2ccccc2c1").to_graph()
        rings = find_rings(naphthalene)
        assert rings  # basis yields at least one small ring
        assert all(3 <= len(ring) <= 8 for ring in rings)

    def test_clique_rings_are_triangles(self):
        rings = find_rings(complete_graph(4))
        assert all(len(ring) == 3 for ring in rings)
        assert len(rings) == 3  # m - n + 1 = 6 - 4 + 1

    def test_directed_input_accepted(self):
        from repro.graphs import DiGraph
        d = DiGraph()
        d.add_edges([(1, 2), (2, 3), (3, 1)])
        assert len(find_rings(d)) == 1


class TestRingSupergraph:
    def test_benzene_contracts_to_one_supernode(self):
        benzene = parse_smiles("c1ccccc1").to_graph()
        sg = build_supergraph(benzene)
        assert sg.graph.number_of_nodes() == 1
        assert sg.graph.get_node_attr(0, "motif") == "ring"

    def test_aspirin_ring_plus_singletons(self):
        aspirin = parse_smiles("CC(=O)Oc1ccccc1C(=O)O").to_graph()
        sg = build_supergraph(aspirin)
        motifs = sorted(sg.graph.get_node_attr(n, "motif")
                        for n in sg.graph.nodes())
        assert motifs.count("ring") == 1
        assert sg.compression_ratio > 1.5

    def test_molecule_sequences_get_ring_tokens(self):
        from repro.config import SequencerConfig
        from repro.sequencer import GraphSequentializer
        naphthalene = parse_smiles("c1ccc2ccccc2c1").to_graph()
        out = GraphSequentializer(
            SequencerConfig(multi_level=True)).sequentialize(naphthalene)
        tokens = set(out.feature_counts)
        assert any(token.startswith("<m:ring") for token in tokens)


class TestEntityTypeInference:
    @pytest.fixture()
    def store(self):
        store = TripleStore()
        for entity, etype in (("alice", "person"), ("bob", "person"),
                              ("acme", "organization"),
                              ("globex", "organization")):
            store.set_entity_type(entity, etype)
        for head, tail in (("alice", "acme"), ("bob", "acme"),
                           ("alice", "globex"), ("bob", "globex")):
            store.add(Triple(head, "works_at", tail))
        # mystery entity participating as a works_at head
        store.add(Triple("carol", "works_at", "acme"))
        return store

    def test_untyped_entity_gets_type(self, store):
        inferencer = KnowledgeInferencer.fit(store)
        inferred = inferencer.infer_entity_types()
        assert inferred["carol"][0] == "person"
        assert inferred["carol"][1] == 1.0

    def test_typed_entities_not_retyped(self, store):
        inferencer = KnowledgeInferencer.fit(store)
        assert "alice" not in inferencer.infer_entity_types()

    def test_no_signatures_no_inference(self):
        store = TripleStore.from_triples([("a", "r", "b")])
        inferencer = KnowledgeInferencer.fit(store)
        assert inferencer.infer_entity_types() == {}


class TestChainSerialization:
    def test_roundtrip(self):
        chain = APIChain([
            ChainNode("graph_summary"),
            ChainNode("rank_pagerank", {"top": 3}),
            ChainNode("generate_report", {"title": "T"}, depends_on=(0,)),
        ])
        doc = chain.to_dict()
        back = APIChain.from_dict(json.loads(json.dumps(doc)))
        assert back == chain

    def test_roundtrip_validates(self, registry):
        chain = APIChain.from_names(["count_nodes", "count_edges"])
        back = APIChain.from_dict(chain.to_dict())
        back.validate(registry)

    def test_malformed_rejected(self):
        with pytest.raises(ChainError):
            APIChain.from_dict({"nodes": [{"params": {}}]})
        with pytest.raises(ChainError):
            APIChain.from_dict({})


class TestIdfRetrieval:
    def test_idf_mode_still_retrieves(self):
        registry = default_registry()
        retriever = APIRetriever(registry, use_idf=True)
        names = retriever.retrieve_names("predict molecule toxicity", k=3)
        assert "predict_toxicity" in names

    def test_idf_changes_rankings_somewhere(self):
        registry = default_registry()
        plain = APIRetriever(registry, use_idf=False)
        weighted = APIRetriever(registry, use_idf=True)
        queries = ("summarize the graph", "clean the knowledge graph",
                   "count the triangles", "find similar molecules")
        differs = any(
            plain.retrieve_names(q, k=5) != weighted.retrieve_names(q, k=5)
            for q in queries)
        assert differs
