"""Tests for centrality measures, cross-validated against networkx."""

import networkx as nx
import pytest

from repro.algorithms import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    pagerank,
)
from repro.errors import GraphError
from repro.graphs import (
    DiGraph,
    Graph,
    complete_graph,
    er_graph,
    path_graph,
    star_graph,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(g.nodes())
    G.add_edges_from(g.edges())
    return G


class TestDegreeCentrality:
    def test_complete_graph_all_one(self):
        dc = degree_centrality(complete_graph(5))
        assert all(abs(v - 1.0) < 1e-12 for v in dc.values())

    def test_star_center(self):
        dc = degree_centrality(star_graph(4))
        assert dc[0] == 1.0
        assert dc[1] == pytest.approx(0.25)

    def test_tiny_graph_zero(self):
        g = Graph()
        g.add_node(1)
        assert degree_centrality(g) == {1: 0.0}


class TestCloseness:
    def test_matches_networkx(self):
        for seed in range(5):
            g = er_graph(25, 0.15, seed=seed)
            ours = closeness_centrality(g)
            theirs = nx.closeness_centrality(to_nx(g), wf_improved=True)
            for node in ours:
                assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_isolated_zero(self):
        g = Graph()
        g.add_node("x")
        g.add_edge(1, 2)
        assert closeness_centrality(g)["x"] == 0.0


class TestBetweenness:
    def test_path_middle_highest(self):
        bc = betweenness_centrality(path_graph(5))
        assert bc[2] > bc[1] > bc[0]

    def test_matches_networkx(self):
        for seed in range(5):
            g = er_graph(20, 0.15, seed=seed)
            ours = betweenness_centrality(g)
            theirs = nx.betweenness_centrality(to_nx(g))
            for node in ours:
                assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_directed(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("b", "c")])
        bc = betweenness_centrality(d)
        assert bc["b"] > 0
        D = nx.DiGraph([("a", "b"), ("b", "c")])
        theirs = nx.betweenness_centrality(D)
        for node in bc:
            assert bc[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_unnormalized(self):
        bc = betweenness_centrality(path_graph(3), normalized=False)
        assert bc[1] == pytest.approx(1.0)


class TestPagerank:
    def test_sums_to_one(self):
        g = er_graph(30, 0.1, seed=3)
        assert sum(pagerank(g).values()) == pytest.approx(1.0)

    def test_matches_networkx(self):
        for seed in range(4):
            g = er_graph(25, 0.12, seed=seed)
            ours = pagerank(g)
            theirs = nx.pagerank(to_nx(g))
            for node in ours:
                assert ours[node] == pytest.approx(theirs[node], abs=1e-5)

    def test_star_center_wins(self):
        pr = pagerank(star_graph(6))
        assert pr[0] == max(pr.values())

    def test_dangling_nodes_directed(self):
        d = DiGraph()
        d.add_edges([("a", "b"), ("c", "b")])  # b is dangling
        pr = pagerank(d)
        assert sum(pr.values()) == pytest.approx(1.0)
        assert pr["b"] == max(pr.values())

    def test_bad_damping(self):
        with pytest.raises(GraphError):
            pagerank(path_graph(3), damping=1.5)

    def test_empty_graph(self):
        assert pagerank(Graph()) == {}
