"""Tests for k-core decomposition and motif counting."""

import networkx as nx
import pytest

from repro.algorithms import (
    core_number,
    count_motifs,
    find_cliques,
    k_core,
    motif_census,
    triangle_count,
)
from repro.errors import GraphError
from repro.graphs import (
    DiGraph,
    Graph,
    complete_graph,
    cycle_graph,
    er_graph,
    path_graph,
    star_graph,
)


def to_nx(g):
    G = nx.Graph()
    G.add_nodes_from(g.nodes())
    G.add_edges_from(g.edges())
    return G


class TestCores:
    def test_complete_graph_core(self):
        numbers = core_number(complete_graph(5))
        assert all(v == 4 for v in numbers.values())

    def test_path_core_one(self):
        numbers = core_number(path_graph(5))
        assert all(v == 1 for v in numbers.values())

    def test_matches_networkx(self):
        for seed in range(8):
            g = er_graph(30, 0.12, seed=seed)
            assert core_number(g) == nx.core_number(to_nx(g))

    def test_k_core_subgraph(self):
        g = complete_graph(4)
        g.add_edge(0, 99)  # pendant
        sub = k_core(g, 2)
        assert set(sub.nodes()) == {0, 1, 2, 3}

    def test_k_core_empty_when_k_too_big(self):
        assert len(k_core(path_graph(4), 5)) == 0

    def test_negative_k_raises(self):
        with pytest.raises(GraphError):
            k_core(path_graph(3), -1)

    def test_directed_rejected(self):
        d = DiGraph()
        d.add_edge(1, 2)
        with pytest.raises(GraphError):
            core_number(d)


class TestMotifs:
    def test_triangle_count(self):
        assert triangle_count(complete_graph(5)) == 10
        assert triangle_count(cycle_graph(5)) == 0

    def test_count_motifs_size3(self):
        assert count_motifs(complete_graph(3), 3) == {"triangle": 1}
        assert count_motifs(path_graph(3), 3) == {"path_3": 1}

    def test_count_motifs_size4(self):
        assert count_motifs(complete_graph(4), 4) == {"clique_4": 1}
        assert count_motifs(cycle_graph(4), 4) == {"cycle_4": 1}
        assert count_motifs(star_graph(3), 4) == {"star_4": 1}
        assert count_motifs(path_graph(4), 4) == {"path_4": 1}

    def test_count_motifs_diamond_tadpole(self):
        diamond = complete_graph(4)
        diamond.remove_edge(0, 1)
        assert count_motifs(diamond, 4) == {"diamond": 1}
        tadpole = complete_graph(3)
        tadpole.add_edge(2, 3)
        assert count_motifs(tadpole, 4) == {"tadpole": 1}

    def test_bad_size_raises(self):
        with pytest.raises(GraphError):
            count_motifs(path_graph(3), 5)

    def test_census_has_max_clique(self):
        census = motif_census(complete_graph(4))
        assert census["max_clique"] == 4

    def test_cliques_match_networkx(self):
        for seed in range(5):
            g = er_graph(20, 0.25, seed=seed)
            ours = {frozenset(c) for c in find_cliques(g)}
            theirs = {frozenset(c) for c in nx.find_cliques(to_nx(g))}
            assert ours == theirs

    def test_clique_limit(self):
        g = complete_graph(3)
        g.add_edge(10, 11)
        assert len(list(find_cliques(g, max_cliques=1))) == 1
