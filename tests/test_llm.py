"""Tests for the language-model substrate: intent, chain model, decoding."""

import random

import numpy as np
import pytest

from repro.chem import parse_smiles
from repro.errors import ModelError
from repro.graphs import knowledge_graph, social_network
from repro.llm import (
    ChainLanguageModel,
    GraphTypePredictor,
    IntentClassifier,
    PRESETS,
    TrainingExample,
    beam_decode,
    build_model,
    greedy_decode,
    predict_graph_type,
    sample_decode,
)
from repro.llm.chain_model import EOS, GenerationState

APIS = ["api_a", "api_b", "api_c", "api_d"]


@pytest.fixture()
def model():
    return ChainLanguageModel(api_names=APIS, seed=0)


def state(text="do the thing", retrieved=(), prefix=(), allowed=()):
    return GenerationState(prompt_text=text, retrieved=tuple(retrieved),
                           prefix=tuple(prefix), allowed=tuple(allowed))


class TestGraphTypePredictor:
    def test_social(self):
        g = social_network(30, 3, seed=1)
        assert predict_graph_type(g) == "social"

    def test_molecule(self):
        g = parse_smiles("CC(=O)Oc1ccccc1C(=O)O").to_graph()
        assert predict_graph_type(g) == "molecule"

    def test_knowledge(self):
        assert predict_graph_type(knowledge_graph(20, 50)) == "knowledge"

    def test_generic_fallback(self):
        from repro.graphs import Graph
        g = Graph()
        g.add_nodes(range(3))
        assert predict_graph_type(g) == "generic"

    def test_prediction_has_evidence(self):
        prediction = GraphTypePredictor().predict(
            social_network(20, 2, seed=0))
        assert prediction.evidence
        assert prediction.scores["social"] > 0

    def test_structure_only_molecule(self):
        # atom graphs without kind attr still classified by elements
        g = parse_smiles("CCO").to_graph()
        for node in g.nodes():
            del g.node_attrs(node)["kind"]
        assert predict_graph_type(g) == "molecule"


class TestIntentClassifier:
    @pytest.mark.parametrize("text,intent", [
        ("write a brief report for G", "understand"),
        ("what molecules are similar to G", "compare"),
        ("clean G", "clean"),
        ("fix the incorrect facts", "clean"),
        ("count the triangles", "compute"),
        ("hello there", "understand"),  # default
    ])
    def test_examples(self, text, intent):
        assert IntentClassifier().predict(text) == intent


class TestChainModel:
    def test_vocab(self, model):
        assert model.vocab_size == 5
        assert model.token_name(model.eos_id) == EOS
        assert model.token_id("api_a") == 0
        with pytest.raises(ModelError):
            model.token_id("nope")

    def test_empty_vocab_rejected(self):
        with pytest.raises(ModelError):
            ChainLanguageModel(api_names=[])

    def test_distribution_sums_to_one(self, model):
        probs = model.next_distribution(state())
        assert probs.sum() == pytest.approx(1.0)
        assert probs.shape == (5,)

    def test_retrieval_restricts_candidates(self, model):
        probs = model.next_distribution(state(retrieved=["api_a"]))
        assert probs[model.token_id("api_b")] == 0.0
        assert probs[model.token_id("api_a")] > 0.0
        assert probs[model.eos_id] > 0.0

    def test_allowed_overrides_retrieved(self, model):
        s = state(retrieved=["api_a"], allowed=["api_b", "api_c"])
        probs = model.next_distribution(s)
        assert probs[model.token_id("api_a")] == 0.0
        assert probs[model.token_id("api_b")] > 0.0

    def test_prefix_masked(self, model):
        probs = model.next_distribution(state(prefix=["api_a"]))
        assert probs[model.token_id("api_a")] == 0.0

    def test_bad_temperature(self, model):
        with pytest.raises(ModelError):
            model.next_distribution(state(), temperature=0.0)

    def test_training_reduces_loss(self, model):
        s = state("count things")
        first = model.train_step(s, "api_b")
        for __ in range(30):
            last = model.train_step(s, "api_b")
        assert last < first
        probs = model.next_distribution(s)
        assert int(np.argmax(probs)) == model.token_id("api_b")

    def test_training_discriminates_prompts(self, model):
        for __ in range(40):
            model.train_step(state("count the nodes"), "api_a")
            model.train_step(state("find communities"), "api_b")
        assert greedy_decode(model, state("count the nodes"))[0] == "api_a"
        assert greedy_decode(model, state("find communities"))[0] == "api_b"

    def test_chain_log_prob_increases_with_training(self, model):
        example = TrainingExample("do x then y",
                                  target_chains=(("api_a", "api_b"),))
        s = example.state()
        before = model.chain_log_prob(s, ["api_a", "api_b"])
        for __ in range(25):
            model.train_chain(example)
        after = model.chain_log_prob(s, ["api_a", "api_b"])
        assert after > before

    def test_weighted_step_validation(self, model):
        with pytest.raises(ModelError):
            model.train_weighted_step(state(), {"api_a": 0.0})

    def test_graph_tokens_affect_features(self, model):
        s1 = state()
        s2 = GenerationState(prompt_text=s1.prompt_text,
                             graph_tokens=(("<n:C>", 5),))
        assert model.featurize(s1) != model.featurize(s2)


class TestDecoding:
    @pytest.fixture()
    def trained(self):
        model = ChainLanguageModel(api_names=APIS, seed=1)
        example = TrainingExample("run the pipeline",
                                  target_chains=(("api_a", "api_b",
                                                  "api_c"),))
        for __ in range(60):
            model.train_chain(example)
        return model

    def test_greedy_recovers_chain(self, trained):
        out = greedy_decode(trained, state("run the pipeline"))
        assert out == ["api_a", "api_b", "api_c"]

    def test_greedy_max_length(self, trained):
        out = greedy_decode(trained, state("run the pipeline"),
                            max_length=2)
        assert len(out) <= 2

    def test_greedy_bad_length(self, trained):
        with pytest.raises(ModelError):
            greedy_decode(trained, state(), max_length=0)

    def test_beam_recovers_chain(self, trained):
        out = beam_decode(trained, state("run the pipeline"), beam_width=3)
        assert out == ["api_a", "api_b", "api_c"]

    def test_beam_bad_width(self, trained):
        with pytest.raises(ModelError):
            beam_decode(trained, state(), beam_width=0)

    def test_sample_deterministic_rng(self, trained):
        s = state("run the pipeline")
        a = sample_decode(trained, s, rng=random.Random(3))
        b = sample_decode(trained, s, rng=random.Random(3))
        assert a == b

    def test_sample_respects_max_length(self, trained):
        out = sample_decode(trained, state(), max_length=2,
                            rng=random.Random(0))
        assert len(out) <= 2


class TestPresets:
    def test_all_presets_buildable(self):
        for name in PRESETS:
            model = build_model(name, APIS)
            assert model.vocab_size == 5

    def test_unknown_preset(self):
        with pytest.raises(ModelError):
            build_model("gpt-sim", APIS)

    def test_presets_differ(self):
        assert PRESETS["chatglm-sim"].learning_rate != \
            PRESETS["moss-sim"].learning_rate
