"""Behavioral tests for internals that the happy paths exercise only
indirectly: report rendering, executor summaries, HNSW shrinking, the
proximity-graph connectivity repair, and TF-IDF weighting details."""

import numpy as np
import pytest

from repro.ann import HNSWIndex, TauMGIndex
from repro.apis.executor import _summarize
from repro.core.reports import _format, render_answer
from repro.embedding import TfidfModel, Vocabulary


class TestReportFormatting:
    def test_format_float_precision(self):
        assert _format(0.123456789) == "0.1235"

    def test_format_dict_and_list(self):
        assert _format({"a": 1}) == "{a=1}"
        text = _format(list(range(10)))
        assert "... (4 more)" in text

    def test_format_truncates(self):
        text = _format("x" * 1000)
        assert len(text) <= 400
        assert text.endswith("...")

    def test_render_answer_failure_lines(self):
        from repro.apis.executor import ChainExecutionRecord, StepRecord
        from repro.apis.chain import APIChain
        record = ChainExecutionRecord(chain=APIChain.from_names(["x"]))
        record.steps.append(StepRecord(
            index=0, api_name="x", result=None, seconds=0.0,
            ok=False, error="kaput"))
        assert "x: failed (kaput)" in render_answer(record)

    def test_render_answer_empty(self):
        from repro.apis.executor import ChainExecutionRecord
        from repro.apis.chain import APIChain
        record = ChainExecutionRecord(chain=APIChain())
        assert render_answer(record) == "(no results)"

    def test_summarize_caps_length(self):
        assert len(_summarize({"k": "v" * 200})) <= 70


class TestHnswInternals:
    def test_degree_caps_respected(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(400, 8))
        index = HNSWIndex(m=6).build(data)
        for layer_no, layer in enumerate(index.layers):
            cap = index.m0 if layer_no == 0 else index.m
            for node, neighbors in layer.items():
                assert len(neighbors) <= cap, (layer_no, node)

    def test_layer_sizes_shrink(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(600, 8))
        index = HNSWIndex(seed=2).build(data)
        sizes = [len(layer) for layer in index.layers]
        assert sizes[0] == 600
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestConnectivityRepair:
    def test_clustered_data_stays_reachable(self):
        # two far-apart gaussian blobs: naive occlusion graphs can
        # disconnect them; the repair must reconnect everything
        rng = np.random.default_rng(3)
        blob_a = rng.normal(loc=0.0, size=(150, 8))
        blob_b = rng.normal(loc=60.0, size=(150, 8))
        data = np.vstack([blob_a, blob_b])
        index = TauMGIndex(tau=0.05, candidate_pool=16).build(data)
        reachable = index._reachable_from_entry(len(data))
        assert len(reachable) == len(data)
        # queries near either blob find their true neighbors
        hit_a = index.search(blob_a[0], 1)[0]
        assert hit_a.distance < 1e-9
        hit_b = index.search(blob_b[0], 1)[0]
        assert hit_b.distance < 1e-9


class TestTfidfDetails:
    def test_idf_decreases_with_frequency(self):
        model = TfidfModel.fit(["alpha beta", "alpha gamma",
                                "alpha delta"])
        assert model.idf("alpha") < model.idf("beta")

    def test_unseen_token_gets_max_idf(self):
        model = TfidfModel.fit(["alpha beta"])
        assert model.idf("zeta") >= model.idf("alpha")

    def test_vocabulary_token_order_stable(self):
        vocab = Vocabulary.from_corpus(["zeta alpha", "beta"])
        tokens = vocab.tokens()
        assert [vocab.index(token) for token in tokens] == \
            list(range(len(tokens)))
