"""The PR's satellite surfaces: async compaction, cache warming,
cross-process trace/metrics merging, and the plumbing they ride on
(breaker trip/reset, the MicroBatcher predicate override, the trace
CLI's multi-input merge).
"""

from __future__ import annotations

import threading

import pytest

from repro import ChatGraph, ChatGraphServer, ServeConfig
from repro.cli import trace_main
from repro.errors import StoreError
from repro.graphs import social_network
from repro.obs import (
    Histogram,
    MetricsRegistry,
    load_trace,
    merge_metrics_dumps,
    merge_traces,
    read_trace,
)
from repro.serve import MicroBatcher
from repro.serve.breaker import BreakerRegistry
from repro.store import CompactTicket, GraphCatalog


# ----------------------------------------------------------------------
# GraphCatalog.compact_async
# ----------------------------------------------------------------------
def test_compact_async_runs_on_maintenance_thread(tmp_path):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("g1")
    handle.ingest(social_network(12, 2, seed=0))
    events = []
    threads = []

    def listener(name, epochs):
        events.append((name, list(epochs)))
        threads.append(threading.current_thread().name)

    catalog.add_compact_listener(listener)
    ticket = catalog.compact_async("g1")
    assert isinstance(ticket, CompactTicket)
    epoch = ticket.wait(timeout=30.0)
    assert epoch >= 1 and ticket.done()
    assert events == [("g1", events[0][1])]
    # listeners fire on the maintenance daemon, never a serving thread
    assert threads == ["catalog-maintenance"]
    assert ticket.wait(timeout=0.0) == epoch  # idempotent after done
    catalog.close()


def test_compact_async_jobs_run_in_order(tmp_path):
    catalog = GraphCatalog(tmp_path)
    for name in ("a", "b"):
        handle = catalog.create(name)
        handle.ingest(social_network(10, 2, seed=1))
    first = catalog.compact_async("a")
    second = catalog.compact_async("b")
    assert second.wait(timeout=30.0) >= 1
    assert first.done()  # FIFO: a finished before b resolved
    catalog.close()


def test_compact_async_unknown_name_fails_fast(tmp_path):
    catalog = GraphCatalog(tmp_path)
    with pytest.raises(StoreError, match="no graph named"):
        catalog.compact_async("missing")
    catalog.close()


# ----------------------------------------------------------------------
# ServeConfig.warm_caches
# ----------------------------------------------------------------------
def test_warm_caches_counts_entries(tmp_path, chatgraph):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("warm-me")
    handle.ingest(social_network(16, 2, seed=2))
    config = ServeConfig(workers=1, queue_depth=8, warm_caches=True)
    server = ChatGraphServer(chatgraph, config, catalog=catalog)
    with server:
        stats = server.stats()
        warmed = stats["counters"].get("cache_warmed_entries", 0)
        assert warmed > 0
        caches = stats["caches"]
        assert caches["sequences"]["size"] >= 1
        # warmed entries are inserts, not hits: the hit/miss books
        # start clean for real traffic
        response = server.ask("how many nodes are there",
                              graph_name="warm-me")
        assert response.ok
    catalog.close()


def test_warm_caches_off_by_default(chatgraph):
    with ChatGraphServer(chatgraph,
                         ServeConfig(workers=1, queue_depth=8)) as server:
        assert "cache_warmed_entries" not in server.stats()["counters"]


# ----------------------------------------------------------------------
# merge_traces / trace CLI --input --input
# ----------------------------------------------------------------------
def _span(span_id, parent_id=None, name="request", index=0,
          kind="request"):
    return {"span_id": span_id, "parent_id": parent_id, "name": name,
            "index": index, "kind": kind, "attrs": {}}


def test_merge_traces_unions_by_span_id():
    coordinator = [_span("r1"), _span("r2")]
    shard = [_span("r1"), _span("s1", parent_id="r1", name="stage")]
    merged = merge_traces(coordinator, shard)
    assert [d["span_id"] for d in merged] == ["r1", "s1", "r2"]
    # duplicates collapse: r1 appears once
    assert sum(1 for d in merged if d["span_id"] == "r1") == 1


def test_trace_cli_merges_multiple_inputs(tmp_path, capsys):
    import json

    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    merged_path = tmp_path / "merged.jsonl"
    a.write_text("\n".join(json.dumps(d) for d in
                           [_span("r1"), _span("c1", "r1", "stage")])
                 + "\n")
    b.write_text("\n".join(json.dumps(d) for d in
                           [_span("r1"), _span("c2", "r1", "stage",
                                               index=1)]) + "\n")
    code = trace_main(["--input", str(a), "--input", str(b),
                       "--check", "--canonical",
                       "--out", str(merged_path)])
    assert code == 0
    merged = read_trace(merged_path)
    assert [d["span_id"] for d in merged] == ["r1", "c1", "c2"]
    out = capsys.readouterr()
    assert "trace check: OK" in out.out


def test_trace_cli_single_input_unchanged(tmp_path, capsys):
    import json

    log = tmp_path / "one.jsonl"
    log.write_text(json.dumps(_span("r1")) + "\n")
    assert trace_main(["--input", str(log), "--check"]) == 0
    assert "trace check: OK" in capsys.readouterr().out


def test_load_trace_rejects_bad_lines():
    with pytest.raises(ValueError, match="bad span log line"):
        load_trace('{"span_id": "a"}\nnot json\n')


# ----------------------------------------------------------------------
# metrics merging
# ----------------------------------------------------------------------
def test_histogram_dump_merge_is_lossless():
    one, two, ref = Histogram(), Histogram(), Histogram()
    # dyadic values: partial sums are exact, so the merged mean must
    # equal the reference mean bit for bit
    for value in (0.0625, 0.25, 0.5):
        one.observe(value)
        ref.observe(value)
    for value in (0.125, 1.0, 2.0):
        two.observe(value)
        ref.observe(value)
    merged = Histogram.merged_summary([one.dump(), two.dump()])
    assert merged == ref.summary()
    empty = Histogram().dump()
    assert empty["min"] is None  # JSON-safe empty form
    assert Histogram.merged_summary([empty])["count"] == 0


def test_merge_metrics_dumps_sums_counters_and_gauges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.incr("requests", 3)
    b.incr("requests", 4)
    b.incr("only_b")
    a.gauge("queue").set(2.0)
    b.gauge("queue").set(5.0)
    a.observe("latency", 0.01)
    b.observe("latency", 0.2)
    merged = merge_metrics_dumps([a.dump(), b.dump()])
    assert merged["counters"] == {"only_b": 1, "requests": 7}
    assert merged["gauges"] == {"queue": 7.0}
    assert merged["histograms"]["latency"]["count"] == 2


# ----------------------------------------------------------------------
# plumbing: breaker trip/reset, MicroBatcher predicate override
# ----------------------------------------------------------------------
def test_breaker_registry_trip_and_reset_one():
    registry = BreakerRegistry(failure_threshold=3)
    assert registry.trip("shard:0") is True
    assert registry.trip("shard:0") is False  # already open
    assert list(registry.open_names()) == ["shard:0"]
    assert registry.snapshot()["shard:0"]["state"] == "open"
    registry.reset_one("shard:0")
    assert list(registry.open_names()) == []


def test_microbatcher_predicate_override():
    accept_all = MicroBatcher(4, 0.0, batchable_fn=lambda item: True)
    assert accept_all.batchable(object()) is True
    # the class-level static predicate is untouched by instance overrides
    default = MicroBatcher(4, 0.0)
    assert default.batchable is MicroBatcher.batchable
