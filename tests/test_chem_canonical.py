"""Tests for canonical SMILES and aromaticity perception."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import (
    BUILTIN_LIBRARY,
    MoleculeDatabase,
    canonical_ranks,
    canonical_smiles,
    parse_smiles,
    perceive_aromaticity,
    random_molecule,
)
from repro.chem.canonical import renumber
from repro.errors import SmilesError


class TestCanonicalRanks:
    def test_ranks_are_permutation(self):
        mol = parse_smiles("CC(=O)Oc1ccccc1C(=O)O")
        ranks = canonical_ranks(mol)
        assert sorted(ranks) == list(range(mol.n_atoms))

    def test_empty_molecule(self):
        from repro.chem import Molecule
        assert canonical_ranks(Molecule()) == []

    def test_symmetric_atoms_get_distinct_ranks(self):
        # benzene: all atoms equivalent; tie-breaking must still yield
        # a total order
        ranks = canonical_ranks(parse_smiles("c1ccccc1"))
        assert sorted(ranks) == list(range(6))

    def test_renumber_bad_ranks(self):
        mol = parse_smiles("CC")
        with pytest.raises(SmilesError):
            renumber(mol, [0])


class TestCanonicalSmiles:
    @pytest.mark.parametrize("a,b", [
        ("CCO", "OCC"),
        ("CC(C)C", "C(C)(C)C"),
        ("c1ccccc1O", "Oc1ccccc1"),
        ("CC(=O)O", "OC(C)=O"),
        ("CCN", "NCC"),
    ])
    def test_textual_variants_identical(self, a, b):
        assert canonical_smiles(parse_smiles(a)) == \
            canonical_smiles(parse_smiles(b))

    def test_different_molecules_differ(self):
        assert canonical_smiles(parse_smiles("CCO")) != \
            canonical_smiles(parse_smiles("CCN"))
        assert canonical_smiles(parse_smiles("CCC")) != \
            canonical_smiles(parse_smiles("CC"))

    @pytest.mark.parametrize("name", sorted(BUILTIN_LIBRARY)[:20])
    def test_order_invariance_builtin(self, name):
        mol = parse_smiles(BUILTIN_LIBRARY[name])
        rng = random.Random(42)
        perm = list(range(mol.n_atoms))
        rng.shuffle(perm)
        assert canonical_smiles(renumber(mol, perm)) == \
            canonical_smiles(mol)

    @given(st.integers(3, 14), st.integers(0, 2), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_order_invariance_random(self, n_atoms, n_rings, seed):
        mol = random_molecule(n_atoms, n_rings, seed=seed)
        rng = random.Random(seed)
        perm = list(range(mol.n_atoms))
        rng.shuffle(perm)
        assert canonical_smiles(renumber(mol, perm)) == \
            canonical_smiles(mol)

    def test_canonical_roundtrips(self):
        for smiles in ("CC(=O)Oc1ccccc1C(=O)O", "CCO", "c1ccccc1"):
            canon = canonical_smiles(parse_smiles(smiles))
            assert canonical_smiles(parse_smiles(canon)) == canon


class TestAromaticityPerception:
    def test_kekule_benzene(self):
        kekule = perceive_aromaticity(parse_smiles("C1=CC=CC=C1"))
        assert all(atom.aromatic for atom in kekule.atoms)
        assert canonical_smiles(kekule) == \
            canonical_smiles(parse_smiles("c1ccccc1"))

    def test_kekule_pyridine(self):
        kekule = perceive_aromaticity(parse_smiles("C1=CC=NC=C1"))
        assert canonical_smiles(kekule) == \
            canonical_smiles(parse_smiles("c1ccncc1"))

    def test_kekule_furan(self):
        kekule = perceive_aromaticity(parse_smiles("C1=CC=CO1"))
        assert canonical_smiles(kekule) == \
            canonical_smiles(parse_smiles("c1ccoc1"))

    def test_cyclohexane_not_aromatic(self):
        out = perceive_aromaticity(parse_smiles("C1CCCCC1"))
        assert not any(atom.aromatic for atom in out.atoms)

    def test_cyclohexene_not_aromatic(self):
        out = perceive_aromaticity(parse_smiles("C1=CCCCC1"))
        assert not any(atom.aromatic for atom in out.atoms)

    def test_already_aromatic_preserved(self):
        out = perceive_aromaticity(parse_smiles("c1ccccc1"))
        assert all(atom.aromatic for atom in out.atoms)

    def test_acyclic_untouched(self):
        out = perceive_aromaticity(parse_smiles("CC=CC"))
        assert not any(atom.aromatic for atom in out.atoms)
        assert out.n_bonds == 3


class TestDatabaseLookup:
    def test_lookup_by_variant_smiles(self, molecule_db):
        assert molecule_db.lookup(parse_smiles("OCC")) == "ethanol"
        assert molecule_db.lookup(parse_smiles("Oc1ccccc1")) == "phenol"

    def test_lookup_kekule_form(self, molecule_db):
        assert molecule_db.lookup(parse_smiles("C1=CC=CC=C1")) == "benzene"

    def test_lookup_miss(self, molecule_db):
        assert molecule_db.lookup(
            parse_smiles("FC(F)(F)C(F)(F)F")) is None

    def test_cache_invalidates_on_add(self):
        db = MoleculeDatabase()
        db.add("ethanol", "CCO")
        assert db.lookup(parse_smiles("OCC")) == "ethanol"
        db.add("propanol", "CCCO")
        assert db.lookup(parse_smiles("OCCC")) == "propanol"
