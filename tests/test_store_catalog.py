"""GraphCatalog: epochs, views, durability, and the parity gate.

The central acceptance check of the store: for a seeded 1000-edit
workload with periodic snapshots, ``snapshot + tail replay`` (what a
reopened handle does) is byte-identical to replaying the full edit
history from genesis.
"""

import random

import pytest

from repro.errors import StoreError
from repro.graphs.graph import Graph
from repro.obs import MetricsRegistry, Tracer
from repro.store import GraphCatalog, graph_bytes


def seeded_workload(handle, n_edits=1000, seed=0):
    """Apply ``n_edits`` random valid edits through ``handle``."""
    rng = random.Random(seed)
    nodes = []
    edges = []
    applied = 0
    while applied < n_edits:
        roll = rng.random()
        if roll < 0.35 or len(nodes) < 2:
            node = f"n{applied}"
            handle.add_node(node, kind=rng.choice(["a", "b", "c"]),
                            rank=rng.randrange(100))
            nodes.append(node)
        elif roll < 0.70:
            u, v = rng.sample(nodes, 2)
            handle.add_edge(u, v, w=round(rng.random(), 6))
            if (u, v) not in edges and (v, u) not in edges:
                edges.append((u, v))
        elif roll < 0.80 and edges:
            u, v = edges.pop(rng.randrange(len(edges)))
            handle.remove_edge(u, v)
        elif roll < 0.90 and len(nodes) > 2:
            node = nodes.pop(rng.randrange(len(nodes)))
            handle.remove_node(node)
            edges = [(u, v) for u, v in edges
                     if u != node and v != node]
        else:
            handle.set_node_attr(rng.choice(nodes), "rank",
                                 rng.randrange(100))
        applied += 1
    return applied


# ----------------------------------------------------------------------
# the parity gate
# ----------------------------------------------------------------------
def test_snapshot_plus_replay_is_bit_identical_for_1k_edits(tmp_path):
    catalog = GraphCatalog(tmp_path, snapshot_every=128)
    handle = catalog.create("gate")
    seeded_workload(handle, n_edits=1000, seed=7)
    assert handle.epoch > 2  # the workload really rolled epochs
    live = graph_bytes(handle.graph)

    # path 1: full-log replay from genesis (epoch-0 empty snapshot)
    assert graph_bytes(handle.replay_from_genesis()) == live

    # path 2: a cold open = latest snapshot + tail replay
    reopened = GraphCatalog(tmp_path).open("gate")
    assert graph_bytes(reopened.graph) == live
    assert reopened.epoch == handle.epoch
    assert reopened.version == handle.version


def test_recovery_after_torn_tail_keeps_the_prefix(tmp_path):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("torn")
    seeded_workload(handle, n_edits=40, seed=1)
    prefix_version = handle.version
    handle.add_node("tail-node", kind="x", rank=0)
    handle.close()

    # simulate a crash mid-append: chop 3 bytes off the live log
    from repro.store import layout
    log_file = layout.log_path(tmp_path, "torn", 0)
    blob = log_file.read_bytes()
    log_file.write_bytes(blob[:-3])

    reopened = GraphCatalog(tmp_path).open("torn")
    assert reopened.recovered_drop_bytes > 0
    assert reopened.version == prefix_version
    assert not reopened.graph.has_node("tail-node")
    # the recovered store keeps working
    reopened.add_node("tail-node", kind="x", rank=0)
    assert reopened.graph.has_node("tail-node")


# ----------------------------------------------------------------------
# catalog operations
# ----------------------------------------------------------------------
def test_create_open_names_exists_drop(tmp_path):
    catalog = GraphCatalog(tmp_path)
    catalog.create("alpha")
    catalog.create("beta", directed=True)
    assert catalog.names() == ["alpha", "beta"]
    assert catalog.exists("alpha") and not catalog.exists("gamma")
    assert catalog.open("beta").directed
    with pytest.raises(StoreError):
        catalog.create("alpha")
    with pytest.raises(StoreError):
        catalog.open("gamma")
    catalog.drop("alpha")
    assert catalog.names() == ["beta"]
    with pytest.raises(StoreError):
        catalog.drop("alpha")


def test_invalid_graph_names_are_rejected(tmp_path):
    catalog = GraphCatalog(tmp_path)
    for bad in ("", ".hidden", "a/b", "a b", "-lead", "x" * 200):
        with pytest.raises(StoreError):
            catalog.create(bad)


def test_ingest_round_trips_an_existing_graph(tmp_path, social_graph):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("social")
    count = handle.ingest(social_graph)
    assert count == (social_graph.number_of_nodes()
                     + social_graph.number_of_edges())
    assert handle.graph == social_graph
    # durable: visible through a cold open
    assert GraphCatalog(tmp_path).open("social").graph == social_graph
    with pytest.raises(StoreError):
        handle.ingest(social_graph.to_directed())  # directedness clash


def test_views_are_immutable_epoch_pinned_copies(tmp_path):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("v")
    handle.add_node("a", rank=1)
    view = catalog.view("v")
    assert (view.name, view.epoch, view.version) == ("v", 0, 1)
    handle.add_node("b")
    handle.set_node_attr("a", "rank", 99)
    assert not view.graph.has_node("b")
    assert view.graph.node_attrs("a") == {"rank": 1}
    # mutating the view copy never reaches the store
    view.graph.add_node("rogue")
    assert not handle.graph.has_node("rogue")


def test_auto_snapshot_rolls_epochs(tmp_path):
    catalog = GraphCatalog(tmp_path, snapshot_every=5)
    handle = catalog.create("roll")
    for i in range(12):
        handle.add_node(f"n{i}")
    assert handle.epoch == 2
    from repro.store import layout
    assert layout.list_epochs(tmp_path, "roll") == [0, 1, 2]


def test_compact_prunes_history_and_notifies(tmp_path):
    catalog = GraphCatalog(tmp_path, snapshot_every=4)
    events = []
    catalog.add_compact_listener(
        lambda name, live: events.append((name, tuple(live))))
    handle = catalog.create("c")
    for i in range(10):
        handle.add_node(f"n{i}")
    old_epoch = handle.epoch
    new_epoch = handle.compact()
    assert new_epoch == old_epoch + 1
    from repro.store import layout
    assert layout.list_epochs(tmp_path, "c") == [new_epoch]
    assert events == [("c", (new_epoch,))]
    # post-compaction state still byte-matches a replay of what remains
    assert graph_bytes(handle.replay_from_genesis()) == \
        graph_bytes(handle.graph)
    catalog.remove_compact_listener(events)  # unknown listener: no-op


def test_edit_validation_keeps_bad_edits_out_of_the_log(tmp_path):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("strict")
    handle.add_node("a")
    with pytest.raises(StoreError):
        handle.add_node("b", bad=object())
    with pytest.raises(Exception):
        handle.remove_node("missing")
    # the failed edits left no trace: log replays to the same state
    assert graph_bytes(handle.replay_from_genesis()) == \
        graph_bytes(handle.graph)
    assert handle.version == 1


# ----------------------------------------------------------------------
# node index + obs wiring
# ----------------------------------------------------------------------
def test_node_index_follows_edits_and_compaction(tmp_path):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("idx")
    for i in range(8):
        handle.add_node(f"n{i}", rank=i)
    index = handle.node_index()
    assert index.size == 8
    handle.add_node("fresh", rank=99)
    handle.remove_node("n3")
    handle.set_node_attr("n5", "rank", -1)
    stats = index.stats()
    assert stats["nodes"] == 8
    assert stats["incremental_inserts"] == 2  # fresh + n5 reinsert
    assert stats["incremental_deletes"] == 2  # n3 + n5 reinsert
    hits = [node for node, __ in index.search_text("rank 99", k=3)]
    assert "n3" not in hits
    handle.compact()
    assert index.stats()["tombstones"] == 0
    assert index.size == 8
    assert [n for n, __ in index.search_like("fresh", k=2)]


def test_store_counters_and_spans_flow_through_obs(tmp_path):
    metrics = MetricsRegistry()
    tracer = Tracer(seed=0)
    catalog = GraphCatalog(tmp_path, snapshot_every=3,
                           metrics=metrics, tracer=tracer)
    handle = catalog.create("obs")
    for i in range(7):
        handle.add_node(f"n{i}")
    handle.node_index()
    handle.add_node("late")
    handle.compact()
    counters = metrics.snapshot()["counters"]
    assert counters["store_log_appends"] == 8
    assert counters["store_snapshot_writes"] >= 2
    assert counters["store_incremental_inserts"] == 1
    assert counters["store_compactions"] == 1
    kinds = {span.name for span in tracer.finished_spans()
             if span.kind == "store"}
    assert kinds == {"store:apply", "store:snapshot", "store:compact"}


def test_stats_snapshot_shape(tmp_path):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("s")
    handle.add_edge("a", "b")
    stats = catalog.stats()["s"]
    assert stats["nodes"] == 2 and stats["edges"] == 1
    assert stats["epoch"] == 0 and stats["version"] == 1
    assert stats["log_records"] == 1 and stats["log_bytes"] > 0


def test_snapshot_every_must_be_non_negative(tmp_path):
    with pytest.raises(StoreError):
        GraphCatalog(tmp_path, snapshot_every=-1)


def test_directed_graphs_survive_the_store(tmp_path):
    catalog = GraphCatalog(tmp_path)
    handle = catalog.create("d", directed=True)
    handle.add_edge("a", "b", w=1)
    handle.add_edge("b", "a", w=2)
    reopened = GraphCatalog(tmp_path).open("d")
    assert reopened.graph.directed
    assert reopened.graph.edge_attrs("a", "b") == {"w": 1}
    assert reopened.graph.edge_attrs("b", "a") == {"w": 2}
