"""Clock discipline: timing paths must not depend on wall-clock time.

``time.time()`` jumps (NTP sync, DST, manual clock changes), so every
duration in the codebase must be measured with ``time.perf_counter`` /
``time.monotonic`` and every deadline with an injectable monotonic
clock.  The static audit pins that rule; the patched-clock regression
proves a hostile wall clock cannot corrupt timings, stats, or traces.
"""

import re
import time
from pathlib import Path

import pytest

from repro.obs import Tracer
from repro.serve.stats import ServerStats

SRC = Path(__file__).parent.parent / "src" / "repro"


class TestStaticAudit:
    def test_no_wall_clock_calls_in_src(self):
        """No ``time.time()`` anywhere in the library sources."""
        pattern = re.compile(r"\btime\.time\s*\(")
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), 1):
                if pattern.search(line):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}: "
                                     f"{line.strip()}")
        assert not offenders, (
            "time.time() found in timing-sensitive sources; use "
            "time.perf_counter/time.monotonic instead:\n"
            + "\n".join(offenders))

    def test_monotonic_clocks_are_used(self):
        """The timing substrate actually references monotonic clocks."""
        text = "\n".join(path.read_text(encoding="utf-8")
                         for path in sorted(SRC.rglob("*.py")))
        assert "time.perf_counter" in text
        assert "time.monotonic" in text

    def test_loadgen_generators_never_touch_the_clock(self):
        """Schedule generation is pure virtual time — no ``time`` at all.

        Arrival processes, personas, schedules, and SLO evaluation
        define *when* things happen in virtual seconds; if any of them
        read a real clock, fixed-seed schedules could not be
        byte-identical.  The runner/chaos/scenario modules may use
        monotonic clocks (they execute schedules in real time too),
        which the time.time() audit above already polices.
        """
        pure = ("loadgen/arrivals.py", "loadgen/personas.py",
                "loadgen/schedule.py", "loadgen/slo.py")
        pattern = re.compile(r"^\s*import time\b|^\s*from time\b|"
                             r"\btime\.\w+", re.MULTILINE)
        offenders = []
        for relative in pure:
            text = (SRC / relative).read_text(encoding="utf-8")
            for match in pattern.finditer(text):
                lineno = text.count("\n", 0, match.start()) + 1
                line = text.splitlines()[lineno - 1].strip()
                if line.startswith("#") or ":mod:" in line:
                    continue  # docs may name the banned module
                offenders.append(f"{relative}:{lineno}: {line}")
        assert not offenders, (
            "loadgen generator modules must stay free of the time "
            "module (virtual time only):\n" + "\n".join(offenders))


class HostileClock:
    """A wall clock that jumps backwards and forwards on every read."""

    def __init__(self):
        self.jumps = [1e9, 5.0, -3600.0, 86400.0, -1.0, 0.0]
        self.now = 1.7e9
        self.reads = 0

    def __call__(self):
        self.reads += 1
        self.now += self.jumps[self.reads % len(self.jumps)]
        return self.now


class TestPatchedClockRegression:
    def test_wall_clock_jumps_do_not_corrupt_timings(
            self, monkeypatch, chatgraph):
        """time.time() can misbehave freely: nothing consumes it."""
        from repro.graphs.generators import social_network
        hostile = HostileClock()
        monkeypatch.setattr(time, "time", hostile)
        response = chatgraph.ask("count the nodes",
                                 graph=social_network(20, 2, seed=3))
        assert response.record is not None and response.record.ok
        assert 0.0 <= response.seconds < 60.0
        for stage, seconds in response.pipeline.timings.items():
            assert 0.0 <= seconds < 60.0, (stage, seconds)
        for step in response.record.steps:
            assert 0.0 <= step.seconds < 60.0

    def test_tracer_timings_ignore_wall_clock(self, monkeypatch):
        hostile = HostileClock()
        monkeypatch.setattr(time, "time", hostile)
        tracer = Tracer(seed=0)
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(10000))
        for span in tracer.finished_spans():
            assert 0.0 <= span.wall_seconds < 60.0
            assert span.cpu_seconds is not None and span.cpu_seconds >= 0.0

    def test_server_stats_ignore_wall_clock(self, monkeypatch):
        hostile = HostileClock()
        monkeypatch.setattr(time, "time", hostile)
        stats = ServerStats()
        start = time.perf_counter()
        sum(range(20000))
        stats.observe("stage", time.perf_counter() - start)
        histogram = stats.histogram("stage")
        assert histogram is not None
        assert 0.0 <= histogram.min <= histogram.max < 60.0

    def test_breaker_cooldown_uses_injectable_monotonic_clock(
            self, monkeypatch):
        """A backwards wall-clock jump cannot reopen/hold a breaker."""
        from repro.serve.breaker import BreakerState, CircuitBreaker
        hostile = HostileClock()
        monkeypatch.setattr(time, "time", hostile)
        fake_monotonic = [0.0]
        breaker = CircuitBreaker(failure_threshold=1,
                                 failure_rate_threshold=1.0,
                                 window_size=2, cooldown_seconds=5.0,
                                 clock=lambda: fake_monotonic[0])
        assert breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        fake_monotonic[0] += 5.0
        assert breaker.state is BreakerState.HALF_OPEN

    def test_deterministic_trace_despite_hostile_clock(
            self, monkeypatch, chatgraph):
        """Span identity is seed-derived, so even a hostile wall clock
        leaves the canonical export unchanged."""
        from repro.config import ObsConfig, ServeConfig
        from repro.graphs.generators import social_network
        from repro.obs import spans_to_jsonl
        from repro.serve import ChatGraphServer

        def run():
            config = ServeConfig(workers=1, seed=0,
                                 obs=ObsConfig(enable_tracing=True))
            with ChatGraphServer(chatgraph, config) as server:
                assert server.ask("count the nodes",
                                  graph=social_network(20, 2, seed=3)).ok
                return spans_to_jsonl(server.tracer.finished_spans(),
                                      canonical=True)

        clean = run()
        monkeypatch.setattr(time, "time", HostileClock())
        hostile = run()
        assert clean == hostile


def test_pytest_clock_sanity():
    """perf_counter and monotonic advance; guards the fixtures above."""
    a, b = time.perf_counter(), time.perf_counter()
    assert b >= a
    c, d = time.monotonic(), time.monotonic()
    assert d >= c
