"""Property and unit tests for the traffic simulator (repro.loadgen).

The load generator's core contract is determinism: under a fixed seed
the schedule — arrival offsets, persona assignment, every user's turn
stream — must be *byte-identical* across runs, because the ``bench-slo``
gate fingerprints the canonical JSONL.  Hypothesis drives that contract
across seeds and rates; the distribution tests pin that each arrival
process actually has the shape its name claims.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apis.registry import default_registry
from repro.errors import ChatGraphError, ConfigError, FaultInjectionError
from repro.loadgen import (
    DEFAULT_PERSONAS,
    ConstantRate,
    DiurnalSinusoid,
    PersonaSpec,
    PoissonBursts,
    SLOGate,
    SLOSpec,
    StepSpike,
    VirtualClock,
    WindowedChaos,
    bench_workload,
    build_schedule,
    evaluate_slo,
)
from repro.loadgen.personas import pick_persona, user_requests
from repro.testing.workloads import PROMPTS, bench_graphs, demo_graph_pool

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(scope="module")
def pool():
    return demo_graph_pool()


# ---------------------------------------------------------------------------
# arrival processes: validation
# ---------------------------------------------------------------------------
class TestArrivalValidation:
    def test_constant_rate_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            ConstantRate(rate=0.0)

    def test_poisson_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            PoissonBursts(rate=-1.0)

    def test_diurnal_rejects_amplitude_one(self):
        # amplitude 1.0 would zero out the trough rate
        with pytest.raises(ConfigError):
            DiurnalSinusoid(base_rate=1.0, amplitude=1.0)

    def test_diurnal_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            DiurnalSinusoid(base_rate=1.0, period_seconds=0.0)

    def test_step_spike_requires_spike_above_base(self):
        with pytest.raises(ConfigError):
            StepSpike(base_rate=2.0, spike_rate=2.0,
                      spike_start=10.0, spike_end=20.0)

    def test_step_spike_requires_ordered_window(self):
        with pytest.raises(ConfigError):
            StepSpike(base_rate=1.0, spike_rate=4.0,
                      spike_start=20.0, spike_end=20.0)


# ---------------------------------------------------------------------------
# arrival processes: determinism and shape
# ---------------------------------------------------------------------------
class TestArrivalProperties:
    @given(seed=SEEDS,
           rate=st.floats(min_value=0.2, max_value=3.0),
           duration=st.floats(min_value=5.0, max_value=60.0))
    @settings(max_examples=30, deadline=None)
    def test_poisson_deterministic_sorted_bounded(self, seed, rate,
                                                  duration):
        process = PoissonBursts(rate=rate)
        first = process.times(duration, random.Random(seed))
        second = process.times(duration, random.Random(seed))
        assert first == second
        assert first == sorted(first)
        assert all(0.0 <= t < duration for t in first)

    @given(seed=SEEDS,
           base=st.floats(min_value=0.3, max_value=2.0),
           amplitude=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_diurnal_deterministic_sorted_bounded(self, seed, base,
                                                  amplitude):
        process = DiurnalSinusoid(base_rate=base, amplitude=amplitude,
                                  period_seconds=40.0)
        first = process.times(60.0, random.Random(seed))
        second = process.times(60.0, random.Random(seed))
        assert first == second
        assert first == sorted(first)
        assert all(0.0 <= t < 60.0 for t in first)

    @given(rate=st.floats(min_value=0.1, max_value=10.0),
           duration=st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_constant_rate_exact_grid(self, rate, duration):
        process = ConstantRate(rate=rate)
        times = process.times(duration, random.Random(0))
        assert len(times) == int(math.floor(duration * rate))
        for index, t in enumerate(times):
            assert t == index / rate

    @given(seed_a=SEEDS, seed_b=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_step_spike_ignores_rng(self, seed_a, seed_b):
        process = StepSpike(base_rate=0.5, spike_rate=4.0,
                            spike_start=10.0, spike_end=20.0)
        assert (process.times(60.0, random.Random(seed_a))
                == process.times(60.0, random.Random(seed_b)))

    def test_step_spike_window_density(self):
        process = StepSpike(base_rate=0.5, spike_rate=4.0,
                            spike_start=10.0, spike_end=20.0)
        times = process.times(60.0, random.Random(0))
        in_window = [t for t in times if 10.0 <= t < 20.0]
        outside = [t for t in times if t < 10.0]
        # exactly spike_rate inside the window, base_rate before it
        assert len(in_window) == pytest.approx(10.0 * 4.0, abs=1)
        assert len(outside) == pytest.approx(10.0 * 0.5, abs=1)
        assert process.rate_at(15.0) == 4.0
        assert process.rate_at(25.0) == 0.5

    def test_poisson_interarrival_mean(self):
        rate = 5.0
        times = PoissonBursts(rate=rate).times(2000.0, random.Random(7))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1.0 / rate, rel=0.1)

    def test_diurnal_peak_denser_than_trough(self):
        # one full period: peak quarter around t=P/4, trough at 3P/4
        period = 400.0
        process = DiurnalSinusoid(base_rate=1.0, amplitude=0.8,
                                  period_seconds=period)
        times = process.times(period, random.Random(3))
        peak = [t for t in times if period * 0.125 <= t < period * 0.375]
        trough = [t for t in times
                  if period * 0.625 <= t < period * 0.875]
        assert len(peak) > 2 * len(trough)
        assert process.rate_at(period / 4) == pytest.approx(1.8)
        assert process.rate_at(3 * period / 4) == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# schedules: byte-identical under a seed
# ---------------------------------------------------------------------------
class TestScheduleDeterminism:
    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_byte_identical(self, seed, pool):
        arrival = ConstantRate(rate=1.0)
        first = build_schedule(arrival, 30.0, seed=seed, pool=pool)
        second = build_schedule(arrival, 30.0, seed=seed, pool=pool)
        assert first.to_jsonl() == second.to_jsonl()
        assert first.sha256() == second.sha256()

    def test_different_seeds_diverge(self, pool):
        arrival = PoissonBursts(rate=1.0)
        first = build_schedule(arrival, 60.0, seed=0, pool=pool)
        second = build_schedule(arrival, 60.0, seed=1, pool=pool)
        assert first.sha256() != second.sha256()

    def test_jsonl_is_canonical_and_time_sorted(self, pool):
        schedule = build_schedule(ConstantRate(rate=1.0), 30.0,
                                  seed=0, pool=pool)
        lines = schedule.to_jsonl().splitlines()
        assert len(lines) == len(schedule)
        records = [json.loads(line) for line in lines]
        ats = [record["at"] for record in records]
        assert ats == sorted(ats)
        for record in records:
            assert set(record) == {"at", "persona", "user", "seq", "op",
                                   "text", "client", "session", "graph"}

    def test_catalog_names_reach_schedule(self, pool):
        schedule = build_schedule(
            PoissonBursts(rate=2.0), 120.0, seed=0, pool=pool,
            catalog_names=("demo-social-m",))
        named = [item for item in schedule
                 if item.graph_key == "name:demo-social-m"]
        assert named, "ingestor catalog_share should emit named traffic"
        for item in named:
            assert item.request.graph is None
            assert item.request.graph_name == "demo-social-m"

    def test_persona_mix_converges_to_weights(self, pool):
        schedule = build_schedule(ConstantRate(rate=5.0), 200.0,
                                  seed=0, pool=pool)
        users: dict[str, set[str]] = {}
        for item in schedule:
            users.setdefault(item.persona, set()).add(item.user)
        total = sum(len(ids) for ids in users.values())
        weights = {spec.name: spec.weight for spec in DEFAULT_PERSONAS}
        for name, weight in weights.items():
            share = len(users.get(name, ())) / total
            assert share == pytest.approx(weight, abs=0.05)


# ---------------------------------------------------------------------------
# personas
# ---------------------------------------------------------------------------
class TestPersonas:
    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            PersonaSpec(name="bad", weight=0.0)
        with pytest.raises(ConfigError):
            PersonaSpec(name="bad", weight=1.0, op="delete")
        with pytest.raises(ConfigError):
            PersonaSpec(name="bad", weight=1.0, turns=(3, 2))
        with pytest.raises(ConfigError):
            PersonaSpec(name="bad", weight=1.0, session=True,
                        op="propose")
        with pytest.raises(ConfigError):
            PersonaSpec(name="bad", weight=1.0, catalog_share=1.5)

    def test_pick_persona_empty_population(self):
        with pytest.raises(ConfigError):
            pick_persona((), random.Random(0))

    def test_session_user_reattaches_graph_every_turn(self, pool):
        spec = next(s for s in DEFAULT_PERSONAS if s.name == "multi_turn")
        turns = list(user_requests(spec, "u-0", 0.0, random.Random(5),
                                   pool))
        assert len(turns) >= spec.turns[0]
        keys = {turn.graph_key for turn in turns}
        assert len(keys) == 1  # the whole dialog binds one graph
        for turn in turns:
            assert turn.request.session_id == "u-0"
            assert turn.request.graph is pool[turn.graph_key]

    def test_burst_spacing(self, pool):
        spec = PersonaSpec(name="bursty", weight=1.0, turns=(8, 8),
                           think_mean_seconds=10.0, burst_size=4,
                           burst_gap_seconds=0.05)
        turns = list(user_requests(spec, "u-1", 100.0, random.Random(2),
                                   pool))
        ats = [turn.at for turn in turns]
        assert ats[0] == 100.0
        # within a burst: exact gap; between bursts: a real think pause
        for index in (1, 2, 3, 5, 6, 7):
            assert ats[index] - ats[index - 1] == pytest.approx(0.05)
        assert ats[4] - ats[3] > 0.05

    def test_user_stream_deterministic(self, pool):
        spec = DEFAULT_PERSONAS[3]
        first = [(t.at, t.seq, t.graph_key, t.request.text)
                 for t in user_requests(spec, "u", 0.0,
                                        random.Random(9), pool)]
        second = [(t.at, t.seq, t.graph_key, t.request.text)
                  for t in user_requests(spec, "u", 0.0,
                                         random.Random(9), pool)]
        assert first == second


# ---------------------------------------------------------------------------
# bench dedupe: the serving benchmark rides the same generator
# ---------------------------------------------------------------------------
class TestBenchWorkload:
    def test_matches_historic_builder_shape(self):
        requests = bench_workload(12, n_graphs=4)
        graphs = bench_graphs(4)
        assert len(requests) == 12
        for index, request in enumerate(requests):
            assert request.op == "propose"
            assert request.text == PROMPTS[index % len(PROMPTS)]
            assert request.client_id == f"client-{index % 4}"
            expected = graphs[index % len(graphs)]
            assert (request.graph.number_of_nodes()
                    == expected.number_of_nodes())
            assert (request.graph.number_of_edges()
                    == expected.number_of_edges())

    def test_serve_bench_delegates_here(self):
        from repro.serve.bench import build_workload
        ours = bench_workload(8)
        theirs = build_workload(8)
        assert [(r.op, r.text, r.client_id) for r in ours] \
            == [(r.op, r.text, r.client_id) for r in theirs]


# ---------------------------------------------------------------------------
# SLO gates
# ---------------------------------------------------------------------------
def _agg(submitted=10, ok=10, errors=0, degraded=0, rl=0, bp=0,
         p50=0.01, p95=0.02, p99=0.03):
    responses = ok + errors
    rejected = rl + bp
    return {
        "submitted": submitted, "ok": ok, "errors": errors,
        "degraded": degraded, "rejected_rate_limit": rl,
        "rejected_backpressure": bp, "rejected": rejected,
        "error_rate": errors / max(1, responses),
        "degraded_rate": degraded / max(1, responses),
        "rejection_rate": rejected / max(1, submitted),
        "latency": {"count": responses, "mean": p50, "p50": p50,
                    "p95": p95, "p99": p99},
    }


def _report(windows, personas=None, cache=(0.8,), open_at_end=(),
            breaker_opened=0):
    return {
        "overall": _agg(),
        "personas": personas or {"one_shot": _agg()},
        "windows": windows,
        "cache_hit_trajectory": list(cache),
        "breaker_timeline": [{"window": 0, "t": 0.0,
                              "open": list(open_at_end),
                              "breaker_opened": breaker_opened,
                              "queue_size": 0}],
        "counters": {"breaker_opened": breaker_opened},
    }


class TestSLO:
    def test_gate_validation(self):
        with pytest.raises(ConfigError):
            SLOGate(metric="p42_latency", max_value=1.0)
        with pytest.raises(ConfigError):
            SLOGate(metric="error_rate")  # no bounds
        with pytest.raises(ConfigError):
            SLOGate(metric="cache_hit_rate", min_value=0.1,
                    window_budget=0.5)  # no window trajectory
        with pytest.raises(ConfigError):
            SLOGate(metric="error_rate", max_value=0.1,
                    window_budget=1.5)
        with pytest.raises(ConfigError):
            SLOSpec(name="empty", gates=())

    def test_final_mode_bounds(self):
        report = _report(windows=[], breaker_opened=2)
        spec = SLOSpec(name="t", gates=(
            SLOGate(metric="error_rate", max_value=0.0),
            SLOGate(metric="breaker_opened", max_value=0.0),
        ))
        verdict = evaluate_slo(report, spec)
        assert not verdict["passed"]
        by_metric = {row["metric"]: row for row in verdict["gates"]}
        assert by_metric["error_rate"]["passed"]
        assert not by_metric["breaker_opened"]["passed"]
        assert by_metric["breaker_opened"]["value"] == 2.0

    def test_persona_scope_and_unknown_persona(self):
        report = _report(windows=[],
                         personas={"one_shot": _agg(errors=5, ok=5)})
        gate = SLOGate(metric="error_rate", persona="one_shot",
                       max_value=0.1)
        verdict = evaluate_slo(report, SLOSpec(name="t", gates=(gate,)))
        assert not verdict["passed"]
        missing = SLOGate(metric="error_rate", persona="ghost",
                          max_value=0.1)
        with pytest.raises(ConfigError):
            evaluate_slo(report, SLOSpec(name="t", gates=(missing,)))

    def test_window_budget_skips_empty_windows(self):
        windows = [
            {**_agg(errors=10, ok=0), "personas": {}},   # violating
            {**_agg(), "personas": {}},                  # clean
            {**_agg(submitted=0, ok=0), "personas": {}},  # empty
            {**_agg(), "personas": {}},                  # clean
        ]
        report = _report(windows=windows)
        gate = SLOGate(metric="error_rate", max_value=0.1,
                       window_budget=0.5)
        verdict = evaluate_slo(report, SLOSpec(name="t", gates=(gate,)))
        row = verdict["gates"][0]
        assert row["windows"] == 3  # the empty window never counts
        assert row["violations"] == 1
        assert row["passed"]
        tight = SLOGate(metric="error_rate", max_value=0.1,
                        window_budget=0.2)
        verdict = evaluate_slo(report,
                               SLOSpec(name="t", gates=(tight,)))
        assert not verdict["passed"]

    def test_breakers_recovered_reads_timeline_end(self):
        gate = SLOGate(metric="breakers_recovered", min_value=1.0)
        spec = SLOSpec(name="t", gates=(gate,))
        healthy = _report(windows=[], open_at_end=())
        stuck = _report(windows=[], open_at_end=("api_degree",))
        assert evaluate_slo(healthy, spec)["passed"]
        assert not evaluate_slo(stuck, spec)["passed"]

    def test_cache_hit_rate_is_trajectory_final(self):
        gate = SLOGate(metric="cache_hit_rate", min_value=0.5)
        spec = SLOSpec(name="t", gates=(gate,))
        warm = _report(windows=[], cache=(0.1, 0.4, 0.9))
        cold = _report(windows=[], cache=(0.9, 0.4, 0.1))
        assert evaluate_slo(warm, spec)["passed"]
        assert not evaluate_slo(cold, spec)["passed"]


# ---------------------------------------------------------------------------
# virtual clock
# ---------------------------------------------------------------------------
class TestVirtualClock:
    def test_never_runs_backwards(self):
        clock = VirtualClock()
        clock.advance(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        assert clock.advance_to(2.0) == 5.0  # no-op backwards
        assert clock.advance_to(7.5) == 7.5
        assert clock() == 7.5

    def test_start_offset(self):
        assert VirtualClock(start=100.0)() == 100.0


# ---------------------------------------------------------------------------
# windowed chaos
# ---------------------------------------------------------------------------
class TestWindowedChaos:
    def test_validation(self):
        with pytest.raises(ChatGraphError):
            WindowedChaos(start=10.0, end=10.0)
        with pytest.raises(ChatGraphError):
            WindowedChaos(start=0.0, end=1.0, failure_rate=1.5)
        with pytest.raises(ChatGraphError):
            WindowedChaos(start=0.0, end=1.0, delay_seconds=-0.1)

    def test_unknown_api_names_rejected(self):
        chaos = WindowedChaos(start=0.0, end=1.0,
                              api_names=("no_such_api",))
        with pytest.raises(ChatGraphError):
            chaos.wrap_registry(default_registry())

    def test_faults_only_inside_window(self):
        chaos = WindowedChaos(start=10.0, end=20.0, failure_rate=1.0)
        clock = VirtualClock()
        chaos.use_clock(clock)
        spec = next(iter(default_registry()))
        wrapped = chaos.wrap_spec(
            replace(spec, func=lambda context, **kwargs: "ok"))

        assert not chaos.active()
        assert wrapped.func(None) == "ok"  # before the window
        clock.advance_to(15.0)
        assert chaos.active()
        with pytest.raises(FaultInjectionError):
            wrapped.func(None)
        clock.advance_to(20.0)  # window end is exclusive
        assert not chaos.active()
        assert wrapped.func(None) == "ok"
        assert chaos.injected_failures == 1
        assert chaos.stats()["injected_failures"] == {spec.name: 1}
        chaos.reset()
        assert chaos.injected_failures == 0

    def test_unbound_clock_is_passthrough(self):
        chaos = WindowedChaos(start=0.0, end=1e9, failure_rate=1.0)
        spec = next(iter(default_registry()))
        wrapped = chaos.wrap_spec(
            replace(spec, func=lambda context, **kwargs: "ok"))
        assert wrapped.func(None) == "ok"
        assert chaos.injected_failures == 0
