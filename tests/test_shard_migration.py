"""Shard-aware session migration: the planner and the live fleet.

Two layers:

* **planner properties** (hypothesis) — :func:`repro.runtime.migration.
  plan_migration` is a pure function of (old placements, new ring,
  live set), so its invariants are checked exhaustively: every placed
  key appears exactly once across moves/unchanged/stranded, every move
  targets the key's first *live* shard in new-ring preference order,
  removing an unrelated shard never moves keys between survivors, and
  adding a shard only ever moves keys *onto* the new shard.
* **live fleet** (slow) — a real 3-process reshape: pinned sessions
  keep answering on their ring-preferred shard after ``add_shard`` and
  ``remove_shard``, with a background submitter proving no request is
  lost across either reshape.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.migration import plan_migration
from repro.shard.ring import HashRing

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_KEYS = st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12)

_SHARD_SETS = st.sets(st.integers(min_value=0, max_value=12),
                      min_size=1, max_size=6)


@st.composite
def _worlds(draw):
    """(placements, old_ring, new_ring) with placements on the old ring."""
    old_shards = sorted(draw(_SHARD_SETS))
    new_shards = sorted(draw(_SHARD_SETS))
    old_ring = HashRing(old_shards)
    new_ring = HashRing(new_shards)
    keys = draw(st.lists(_KEYS, min_size=0, max_size=24,
                         unique=True))
    placements = {key: old_ring.lookup(key) for key in keys}
    return placements, old_ring, new_ring


_SETTINGS = settings(max_examples=80, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# planner properties
# ----------------------------------------------------------------------
class TestPlanProperties:
    @given(_worlds())
    @_SETTINGS
    def test_every_key_exactly_once(self, world):
        placements, old_ring, new_ring = world
        plan = plan_migration(old_ring, new_ring, placements)
        moved = [move.key for move in plan.moves]
        seen = moved + list(plan.unchanged) + list(plan.stranded)
        assert sorted(seen) == sorted(placements)
        assert len(seen) == len(set(seen))

    @given(_worlds())
    @_SETTINGS
    def test_moves_target_first_live_preference(self, world):
        placements, old_ring, new_ring = world
        plan = plan_migration(old_ring, new_ring, placements)
        for move in plan.moves:
            assert move.to_shard == next(
                iter(new_ring.preference(move.key)))
            assert move.to_shard != move.from_shard
            assert move.from_shard == placements[move.key]
        for key in plan.unchanged:
            assert placements[key] == next(
                iter(new_ring.preference(key)))

    @given(_worlds(), st.sets(st.integers(min_value=0, max_value=12),
                              max_size=3))
    @_SETTINGS
    def test_dead_targets_are_skipped(self, world, dead):
        """With some shards dead, targets come from the live set only."""
        placements, old_ring, new_ring = world
        live = [s for s in new_ring.shards if s not in dead]
        plan = plan_migration(old_ring, new_ring, placements, live=live)
        for move in plan.moves:
            assert move.to_shard in live
        if not live:
            assert not plan.moves
            # nowhere to go: every misplaced key is stranded
            assert sorted(plan.unchanged) + sorted(plan.stranded) or \
                not placements

    @given(st.lists(_KEYS, min_size=1, max_size=24, unique=True),
           st.sets(st.integers(min_value=0, max_value=8), min_size=2,
                   max_size=6))
    @_SETTINGS
    def test_remove_moves_only_off_the_leaver(self, keys, shards):
        """Shrinking by one shard only relocates the leaver's keys."""
        old_ring = HashRing(sorted(shards))
        leaving = min(shards)
        new_ring = HashRing(sorted(shards - {leaving}))
        placements = {key: old_ring.lookup(key) for key in keys}
        plan = plan_migration(old_ring, new_ring, placements)
        for move in plan.moves:
            assert move.from_shard == leaving

    @given(st.lists(_KEYS, min_size=1, max_size=24, unique=True),
           st.sets(st.integers(min_value=0, max_value=8), min_size=1,
                   max_size=6))
    @_SETTINGS
    def test_add_moves_only_onto_the_joiner(self, keys, shards):
        """Growing by one shard only relocates keys onto the joiner.

        The consistent-hash monotonicity property, observed through
        the planner: survivors never shuffle keys among themselves.
        """
        old_ring = HashRing(sorted(shards))
        joining = max(shards) + 1
        new_ring = HashRing(sorted(shards | {joining}))
        placements = {key: old_ring.lookup(key) for key in keys}
        plan = plan_migration(old_ring, new_ring, placements)
        for move in plan.moves:
            assert move.to_shard == joining

    @given(_worlds())
    @_SETTINGS
    def test_plan_is_deterministic(self, world):
        placements, old_ring, new_ring = world
        first = plan_migration(old_ring, new_ring, placements)
        second = plan_migration(old_ring, new_ring, placements)
        assert first == second


# ----------------------------------------------------------------------
# live fleet
# ----------------------------------------------------------------------
class TestLiveMigration:
    def test_sessions_follow_ring_across_add_and_remove(self):
        from repro.config import ServeConfig
        from repro.shard import ShardModelSpec, ShardedChatGraphServer

        config = ServeConfig(shards=2, workers=1, queue_depth=128)
        server = ShardedChatGraphServer(
            ShardModelSpec(corpus_size=200), config)
        session_ids = [f"user-{i}" for i in range(8)]

        stop = threading.Event()
        background: list = []

        def pump() -> None:
            """Keep sessionless traffic flowing through both reshapes."""
            i = 0
            while not stop.is_set():
                try:
                    pending = server.submit(_request(f"background {i}"))
                except Exception:  # noqa: BLE001 - shedding is fine
                    continue
                background.append(pending)
                i += 1
                stop.wait(0.01)

        def _request(text):
            from repro.serve.engine import ServeRequest
            return ServeRequest(op="ask", text=text,
                                client_id=f"bg-{len(background) % 4}")

        def assert_on_preferred_shards() -> None:
            for session_id in session_ids:
                response = server.ask("how many nodes are there?",
                                      session_id=session_id)
                assert response.ok, response.error
                expected = next(iter(server.ring.preference(
                    server.routing_key(_session_probe(session_id)))))
                assert response.worker.startswith(
                    f"shard-{expected}/"), (
                    f"{session_id} served by {response.worker}, ring "
                    f"prefers shard {expected}")

        def _session_probe(session_id):
            from repro.serve.engine import ServeRequest
            return ServeRequest(op="ask", text="probe",
                                session_id=session_id)

        with server:
            for session_id in session_ids:
                response = server.ask("how many edges are there?",
                                      session_id=session_id)
                assert response.ok, response.error
            pumper = threading.Thread(target=pump, daemon=True)
            pumper.start()
            try:
                report = server.add_shard()
                assert report["ring"] == [0, 1, 2]
                assert report["stranded"] == 0
                assert_on_preferred_shards()

                report = server.remove_shard(0)
                assert report["ring"] == [1, 2]
                assert report["stranded"] == 0
                assert_on_preferred_shards()
            finally:
                stop.set()
                pumper.join(timeout=10.0)

            # zero lost requests: every submitted background request
            # resolves (ok or a clean shed — never a hang, never lost)
            lost = 0
            failed = []
            for pending in background:
                response = pending.result(timeout=60.0)
                if response is None:
                    lost += 1
                elif not response.ok:
                    failed.append(response)
            assert lost == 0
            assert not failed, (
                f"{len(failed)} background requests errored during "
                f"migration; first: {failed[0].error}")

            stats = server.stats()
            assert stats["shards"]["count"] == 2
            assert stats["counters"]["shard_migrations"] == 2
            assert stats["counters"]["sessions_migrated"] >= 1
