"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (pip falls back to `setup.py develop`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="ChatGraph: chat with your graphs (ICDE 2024) - reproduction",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
)
