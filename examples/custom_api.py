"""Extending ChatGraph with your own analysis API.

The paper positions ChatGraph as an extensible LLM-API framework:
"third-party data analysis APIs can be integrated".  This example adds a
custom *k-truss* API to the catalog, teaches the model two phrasings for
it, and asks ChatGraph a question that routes to the new API.

Run:  python examples/custom_api.py
"""

from repro import ChatGraph
from repro.apis import APISpec, Category, default_registry
from repro.finetune import CorpusSpec, build_corpus
from repro.graphs import social_network
from repro.llm import TrainingExample


def k_truss_stats(context, k: int = 3):
    """Largest subgraph where every edge sits in >= k-2 triangles."""
    graph = context.graph.copy()
    changed = True
    while changed:
        changed = False
        neighbor_sets = {node: set(graph.neighbors(node)) - {node}
                         for node in graph.nodes()}
        doomed = [
            (u, v) for u, v in graph.edges()
            if len(neighbor_sets[u] & neighbor_sets[v]) < k - 2]
        for u, v in doomed:
            graph.remove_edge(u, v)
            changed = True
        for node in [n for n in graph.nodes() if graph.degree(n) == 0]:
            graph.remove_node(node)
    return {"k": k, "truss_nodes": graph.number_of_nodes(),
            "truss_edges": graph.number_of_edges()}


def main() -> None:
    # 1. register the custom API alongside the built-in catalog
    registry = default_registry()
    registry.register(APISpec(
        name="k_truss",
        description="compute the k truss the cohesive subgraph where "
                    "every edge participates in many triangles",
        category=Category.SOCIAL,
        func=k_truss_stats,
        params={"k": 3},
    ))
    print(f"catalog now has {len(registry)} APIs (k_truss added)")

    # 2. build a ChatGraph over the extended registry and finetune on
    #    the standard corpus plus examples for the new API
    chatgraph = ChatGraph(registry=registry)
    train, __ = build_corpus(registry, CorpusSpec(n_examples=400, seed=0),
                             retriever=chatgraph.retriever)
    for phrasing in ("find the k truss of the network",
                     "what is the most cohesive triangle rich subgraph",
                     "compute the truss decomposition"):
        train.extend([TrainingExample(
            question=phrasing,
            target_chains=(("k_truss",),),
            retrieved=chatgraph.retriever.retrieve_names(phrasing, k=8),
            allowed=tuple(s.name for s in registry.by_category(
                Category.SOCIAL, Category.GENERIC, Category.REPORT)),
        )] * 8)
    chatgraph.finetune(train, objective="token")

    # 3. chat: the question routes to the new API
    graph = social_network(n=50, n_communities=3, p_in=0.35, seed=4)
    response = chatgraph.ask("find the k truss of the network",
                             graph=graph)
    print(f"chain:  {response.chain.render()}")
    print(f"answer: {response.answer}")


if __name__ == "__main__":
    main()
