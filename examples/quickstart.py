"""Quickstart: chat with a graph in five lines.

Builds a pretrained ChatGraph (the simulated backbone finetunes on the
synthetic corpus in under a second), uploads a social network, and asks
for a report — the paper's headline interaction (Fig. 1/Fig. 4).

Run:  python examples/quickstart.py
"""

from repro import ChatGraph
from repro.graphs import social_network


def main() -> None:
    chatgraph = ChatGraph.pretrained(seed=0)
    graph = social_network(n=50, n_communities=3, seed=7)

    response = chatgraph.ask("Write a brief report for G", graph=graph)

    print("prompt:   Write a brief report for G")
    print(f"graph:    {graph!r}")
    print(f"chain:    {response.chain.render()}")
    print(f"latency:  {response.seconds * 1e3:.1f} ms")
    print()
    print(response.answer)


if __name__ == "__main__":
    main()
