"""Scenario 4 (paper Fig. 7): chat-based API chain monitoring.

The generated chain may not be exactly what the user wants: here the
user reviews the proposal, removes one step and appends another, then
watches live progress events while the edited chain executes.

Run:  python examples/monitor_api_chain.py
"""

from repro import ChatGraph, ChatSession
from repro.core import ChainMonitor
from repro.graphs import social_network


def main() -> None:
    chatgraph = ChatGraph.pretrained(seed=0)
    session = ChatSession(chatgraph)
    session.upload_graph(social_network(n=45, n_communities=3, seed=5))

    proposal = session.propose("Write a brief report for G")
    print(f"proposed chain: {proposal.chain.render()}\n")

    # the user edits the chain before confirming (Fig. 7)
    print("user: remove step 1, append a k-core analysis")
    session.edit_chain(remove=1)
    session.edit_chain(append="kcore_decomposition")
    print(f"edited chain:   {session.pending_chain.render()}\n")

    # live monitoring during execution
    monitor = ChainMonitor()
    progress_frames: list[str] = []

    def live(event) -> None:
        monitor(event)
        if event.kind in ("step_started", "step_finished",
                          "chain_finished"):
            progress_frames.append(monitor.render_progress(width=24))

    chatgraph.executor.add_listener(live)
    try:
        response = session.confirm()
    finally:
        chatgraph.executor.remove_listener(live)

    print("progress frames:")
    for frame in progress_frames:
        print(f"  {frame}")
    print()
    print("event log:")
    for event in monitor.events:
        print(f"  {event.render()}")
    print()
    print(f"chain ok: {response.record.ok}; answer starts with: "
          f"{response.answer.splitlines()[0]!r}")


if __name__ == "__main__":
    main()
