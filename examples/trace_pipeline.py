"""End-to-end observability: trace, profile, and report a served run.

A tracing ChatGraphServer serves a few requests; afterwards we render
the span tree as a flame-style summary (request -> pipeline stage ->
API step -> retry attempt, with wall/CPU timings), export the
canonical byte-stable span log, and print the metrics report with
per-stage p50/p95/p99 latencies, cache hit rates, and the executor's
event counters.

Run:  python examples/trace_pipeline.py
"""

from pathlib import Path

from repro import ChatGraph, ChatGraphServer, ServeConfig
from repro.config import ObsConfig
from repro.graphs import knowledge_graph, social_network
from repro.obs import (
    check_trace,
    render_flame,
    render_metrics_markdown,
    spans_to_jsonl,
    write_trace,
)


def main() -> None:
    print("finetuning the simulated backbone...")
    chatgraph = ChatGraph.pretrained(corpus_size=300, seed=0)

    config = ServeConfig(
        workers=2, seed=0,
        obs=ObsConfig(enable_tracing=True, profile_cpu=True))
    questions = (
        ("write a brief report for G", social_network(30, 3, seed=7)),
        ("clean up the knowledge graph", knowledge_graph(25, 80, seed=7)),
        ("how many nodes does the graph have",
         social_network(30, 3, seed=7)),
    )

    with ChatGraphServer(chatgraph, config) as server:
        for question, graph in questions:
            response = server.ask(question, graph=graph)
            status = "ok" if response.ok else f"FAILED: {response.error}"
            print(f"  [{status}] {question}")
        spans = server.tracer.finished_spans()
        snapshot = server.metrics_snapshot()

    # -- the trace as a flame-style summary ----------------------------
    print()
    print(render_flame(spans))

    # -- structural soundness + canonical (byte-stable) export ---------
    problems = check_trace([span.to_dict() for span in spans])
    print(f"\ntrace integrity: "
          f"{'OK' if not problems else problems}")
    out = Path("trace_canonical.jsonl")
    write_trace(out, spans, canonical=True)
    print(f"canonical span log ({len(spans)} spans) -> {out}")
    # the canonical form drops timings and orders structurally, so a
    # rerun with the same seed produces byte-identical output:
    assert out.read_text() == spans_to_jsonl(spans, canonical=True)

    # -- the metrics report --------------------------------------------
    print()
    print(render_metrics_markdown(snapshot, title="Served-run metrics"))


if __name__ == "__main__":
    main()
