"""Scenario 1 (paper Fig. 4): chat-based graph understanding.

A chat session over a social network: the suggested questions of panel 2
drive the conversation, and ChatGraph routes each question to
social-specific APIs (communities, influencers, connectivity).

Run:  python examples/understand_social_network.py
"""

from repro import ChatGraph, ChatSession
from repro.graphs import social_network


def main() -> None:
    chatgraph = ChatGraph.pretrained(seed=0)
    session = ChatSession(chatgraph)

    graph = social_network(n=60, n_communities=4, p_in=0.3, p_out=0.015,
                           seed=3)
    session.upload_graph(graph)

    print("suggested questions (panel 2):")
    for question in session.suggestions():
        print(f"  - {question}")
    print()

    for question in ("Write a brief report for G",
                     "Who are the most influential members?",
                     "Find the bridges and cut members of the network"):
        response = session.send(question)
        print(f">>> {question}")
        print(f"    chain: {response.chain.render()}")
        first_lines = "\n".join(response.answer.splitlines()[:12])
        print(first_lines)
        print()

    print("--- full dialog transcript (panel 1) ---")
    for line in session.transcript().splitlines()[:10]:
        print(line)
    print("...")


if __name__ == "__main__":
    main()
