"""Scenario 2 (paper Fig. 5): chat-based graph comparison.

A drug designer uploads a molecule and asks what known molecules are
similar; ChatGraph invokes the similarity-search API against the
molecule database and reports the top-2 hits, exactly as Fig. 5 shows.

Run:  python examples/compare_molecules.py
"""

from repro import ChatGraph
from repro.chem import parse_smiles, write_smiles
from repro.core import run_graph_comparison


QUERIES = {
    # p-cresol: expect the phenol family
    "p-cresol": "Cc1ccc(O)cc1",
    # ethylbenzene: expect toluene / styrene
    "ethylbenzene": "CCc1ccccc1",
    # methylxanthine scaffold: expect caffeine / theobromine
    "methylxanthine": "Cn1cnc2c1c(=O)[nH]c(=O)n2C",
}


def main() -> None:
    chatgraph = ChatGraph.pretrained(seed=0)
    print(f"molecule database: {len(chatgraph.database)} compounds\n")

    for name, smiles in QUERIES.items():
        molecule = parse_smiles(smiles, name=name)
        result = run_graph_comparison(chatgraph, molecule)
        print(f">>> What molecules are similar to {name} ({smiles})?")
        print(f"    chain: {result.response.chain.render()}")
        for hit in result.details["top_hits"]:
            db_mol = chatgraph.database.get(hit["name"])
            print(f"    {hit['name']:<14} score={hit['score']:<8} "
                  f"{write_smiles(db_mol)}")
        print()


if __name__ == "__main__":
    main()
