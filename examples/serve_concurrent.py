"""Serving many sessions concurrently with repro.serve.

Eight clients chat at once against one shared ChatGraph: each gets its
own session (dialog history + uploaded graph), requests flow through
the bounded admission queue to a pool of worker threads, and the
content-addressed caches turn repeated retrieval/sequentialization
into lookups.  At the end the server's stats snapshot shows per-stage
latency and cache hit rates, and a deliberate overload demonstrates
backpressure.

Run:  python examples/serve_concurrent.py
"""

import threading

from repro import ChatGraph, ChatGraphServer, ServeConfig, ServeRequest
from repro.errors import BackpressureError
from repro.graphs import knowledge_graph, social_network


def main() -> None:
    print("finetuning the simulated backbone...")
    chatgraph = ChatGraph.pretrained(seed=0)
    server = ChatGraphServer(chatgraph, ServeConfig(
        workers=4, queue_depth=32,
        rate_limit_capacity=50, rate_limit_refill_per_second=25.0))

    questions = ("write a brief report for G",
                 "find the communities of this network",
                 "how many nodes does the graph have")

    with server:
        # -- eight concurrent sessions ---------------------------------
        def chat(index: int) -> None:
            session_id = f"client-{index}"
            graph = (social_network(30 + index, 3, seed=index)
                     if index % 2 == 0 else
                     knowledge_graph(24 + index, 80, seed=index))
            for question in questions:
                response = server.ask(question, graph=graph,
                                      session_id=session_id,
                                      client_id=session_id)
                first_line = response.value.answer.splitlines()[0]
                print(f"  [{session_id} via {response.worker}] "
                      f"{question!r} -> {first_line}")

        threads = [threading.Thread(target=chat, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # -- backpressure under deliberate overload --------------------
        tiny = ChatGraphServer(chatgraph, ServeConfig(
            workers=1, queue_depth=2, backend_latency_seconds=0.2))
        rejected = 0
        with tiny:
            for __ in range(10):
                try:
                    tiny.submit(ServeRequest(op="propose",
                                             text="summarize G"))
                except BackpressureError as exc:
                    rejected += 1
                    hint = exc.retry_after
        print(f"\noverload: {rejected}/10 requests rejected with "
              f"backpressure (last retry_after hint: {hint:.3f}s)")

        # -- the metrics snapshot --------------------------------------
        stats = server.stats()
        print(f"\nsessions: {stats['sessions']['active']} active")
        print(f"counters: {stats['counters']}")
        for stage in ("queued", "retrieval", "generate", "execute"):
            if stage in stats["latency"]:
                s = stats["latency"][stage]
                print(f"  {stage:>13}: n={s['count']:<3} "
                      f"p50={s['p50'] * 1000:7.2f}ms "
                      f"p95={s['p95'] * 1000:7.2f}ms")
        for name, cache in stats["caches"].items():
            print(f"  cache {name:>10}: hit_rate={cache['hit_rate']:.2f} "
                  f"({cache['hits']} hits / {cache['misses']} misses)")


if __name__ == "__main__":
    main()
