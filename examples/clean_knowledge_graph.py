"""Scenario 3 (paper Fig. 6): chat-based graph cleaning.

A knowledge graph is corrupted with type-violating facts; "Clean G"
makes ChatGraph invoke the knowledge-inference APIs to flag the wrong
and missing facts, ask the user for confirmation, apply the edits, and
export the cleaned graph to a file.

Run:  python examples/clean_knowledge_graph.py
"""

import json
from pathlib import Path

from repro import ChatGraph
from repro.apis import APIChain, ChainNode
from repro.graphs import knowledge_graph
from repro.kb import TripleStore, corrupt_store


def main() -> None:
    chatgraph = ChatGraph.pretrained(seed=0)

    # build a clean KG, then inject 8% type-violating noise
    kg = knowledge_graph(n_entities=50, n_facts=250, seed=13)
    store = TripleStore.from_graph(kg)
    noisy, injected, __ = corrupt_store(store, corruption_rate=0.08,
                                        removal_rate=0.0, seed=2)
    print(f"knowledge graph: {len(store)} facts, "
          f"{len(injected)} corrupted\n")

    # the confirmation hook of Fig. 6: log each question, approve all
    asked: list[str] = []

    def confirm(question: str, payload) -> bool:
        asked.append(question)
        return True

    # propose, then switch on per-edit confirmation before executing
    proposal = chatgraph.propose("Clean G", noisy.to_graph())
    print(f"proposed chain: {proposal.chain.render()}\n")
    confirmed = APIChain([
        ChainNode(node.api_name, {"confirm_each": True})
        if node.api_name == "remove_flagged_edges" else node
        for node in proposal.chain
    ])
    record, __ = chatgraph.execute(proposal, chain=confirmed,
                                   confirm=confirm)

    results = record.results_by_name()
    flagged = results["detect_incorrect_edges"]
    removed = results["remove_flagged_edges"]
    print(f"facts flagged incorrect: {len(flagged)}")
    print(f"user confirmations asked: {len(asked)}")
    if asked:
        print(f"  e.g. {asked[0]}")
    print(f"facts removed: {removed['n_removed']}")
    truly_bad = {(t.head, t.tail) for t in injected}
    removed_pairs = set(map(tuple, removed["removed"]))
    print(f"injected noise repaired: "
          f"{len(removed_pairs & truly_bad)}/{len(injected)}")

    out_path = Path("cleaned_graph.json")
    out_path.write_text(json.dumps(results["export_graph"], indent=1))
    print(f"\nG is cleaned and outputted to file: {out_path} "
          f"({out_path.stat().st_size} bytes)")
    out_path.unlink()  # tidy up after the demo


if __name__ == "__main__":
    main()
