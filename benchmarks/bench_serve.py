"""E13 — the repro.serve runtime: throughput scaling and cache wins.

Replays a fixed mixed workload (understanding / community / cleaning
prompts over social + knowledge demo graphs) against
:class:`~repro.serve.engine.ChatGraphServer` and reports:

* worker scaling — throughput and p50/p95 service latency at 1/4/8
  workers with a 10ms emulated LLM-backend round trip (the real
  deployment regime: the backbone call is I/O-bound);
* cache ablation — cold vs warm content-addressed caches at one
  worker with no emulated latency, isolating the retrieval /
  embedding / sequentialize savings;
* serial-vs-concurrent equivalence — the fixed-seed workload yields
  bit-identical proposals either way.

Set ``REPRO_BENCH_QUICK=1`` for a CI-sized run.
"""

from __future__ import annotations

import os

from repro.loadgen import bench_workload as build_workload
from repro.serve.bench import run_one, run_serve_benchmark

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N_REQUESTS = 16 if QUICK else 64
WORKER_COUNTS = (1, 4) if QUICK else (1, 4, 8)


def test_serve_scaling_and_caches(chatgraph, report_table):
    report = run_serve_benchmark(chatgraph, n_requests=N_REQUESTS,
                                 worker_counts=WORKER_COUNTS,
                                 backend_latency_seconds=0.01)
    report_table("E13-serve-throughput", *report["lines"])

    scaling = report["scaling"]
    base = scaling[0].throughput
    best = max(result.throughput for result in scaling[1:])
    # multi-worker must beat single-worker clearly (ISSUE 1 acceptance:
    # >= 2x; the emulated-backend pause makes requests I/O-bound, so
    # this holds even on a single-core runner)
    assert best >= 2.0 * base, (
        f"multi-worker throughput {best:.1f} req/s is not 2x the "
        f"single-worker {base:.1f} req/s")

    cold, warm = report["caches"]
    assert warm.p50_seconds < cold.p50_seconds, (
        "warm-cache p50 should be below cold-cache p50")
    assert warm.cache_hit_rate > 0.4


def test_serve_concurrent_matches_serial(chatgraph, report_table):
    workload = build_workload(N_REQUESTS, n_graphs=4)
    serial, __ = run_one(chatgraph, workload, workers=1, caches=True,
                         backend_latency_seconds=0.0)
    concurrent, __ = run_one(chatgraph, workload, workers=8, caches=True,
                             backend_latency_seconds=0.0)
    report_table(
        "E13-serve-determinism",
        f"workload n={N_REQUESTS}: serial {serial.throughput:.1f} req/s, "
        f"8 workers {concurrent.throughput:.1f} req/s",
        "proposals are verified bit-identical serial vs concurrent "
        "(chains, retrieval, intents) by tests/test_serve.py")


def test_serve_single_request_latency(chatgraph, benchmark):
    """Microbenchmark: one warm propose through the full server path."""
    from repro import ChatGraphServer, ServeConfig

    workload = build_workload(1)
    server = ChatGraphServer(chatgraph, ServeConfig(workers=1))
    with server:
        server.request(workload[0])        # warm the caches
        benchmark(lambda: server.request(workload[0]))
