"""Shared benchmark fixtures and the experiment-table reporter.

Each benchmark registers the table/figure series it reproduces via the
``report_table`` fixture; tables are printed in the terminal summary and
written to ``benchmarks/results/<experiment>.txt`` so the numbers survive
the run (EXPERIMENTS.md points at them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import ChatGraph

RESULTS_DIR = Path(__file__).parent / "results"

_TABLES: dict[str, list[str]] = {}


@pytest.fixture(scope="session")
def report_table():
    """Register output lines under an experiment id (e.g. ``E6-ann``)."""

    def add(experiment: str, *lines: str) -> None:
        _TABLES.setdefault(experiment, []).extend(lines)

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_sep("=", "experiment tables")
    for experiment in sorted(_TABLES):
        lines = _TABLES[experiment]
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {experiment} ---")
        for line in lines:
            terminalreporter.write_line(line)
        out_file = RESULTS_DIR / f"{experiment}.txt"
        out_file.write_text("\n".join(lines) + "\n", encoding="utf-8")
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(tables saved under {RESULTS_DIR})")


@pytest.fixture(scope="session")
def chatgraph():
    """One pretrained ChatGraph shared by all scenario benchmarks."""
    return ChatGraph.pretrained(corpus_size=600, seed=0)
