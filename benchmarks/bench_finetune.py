"""E8 — Sec. II-C: API chain-oriented finetuning (Def. 1 loss ablation).

Compares the paper's node matching-based objective (+ search-based
prediction) against plain token-level cross-entropy on the same corpus
of questions with *equivalent* ground-truth chains.  Reported: exact
match, set match, mean matching loss, and the training curves.
"""

from __future__ import annotations

import pytest

from repro.apis import default_registry
from repro.config import FinetuneConfig
from repro.finetune import CorpusSpec, Finetuner, build_corpus
from repro.llm import build_model
from repro.retrieval import APIRetriever

CORPUS_SIZE = 300
EPOCHS = 4


@pytest.fixture(scope="module")
def corpus():
    registry = default_registry()
    retriever = APIRetriever(registry)
    train, test = build_corpus(registry,
                               CorpusSpec(n_examples=CORPUS_SIZE, seed=1),
                               retriever=retriever)
    return registry, train, test


def test_objective_comparison(corpus, report_table, benchmark):
    registry, train, test = corpus
    rows = [f"{'objective':<22} {'exact':>7} {'set':>6} {'loss':>7} "
            f"{'train s':>8}"]
    reports = {}
    for label, objective, rollouts in (
            ("token CE (baseline)", "token", 0),
            ("matching, r=0", "matching", 0),
            ("matching + rollouts", "matching", 2)):
        model = build_model("chatglm-sim", registry.names(), seed=0)
        tuner = Finetuner(model, FinetuneConfig(epochs=EPOCHS,
                                                rollouts=rollouts))
        report = tuner.train(train, test, objective=objective)
        reports[label] = report
        metrics = report.final_metrics
        rows.append(f"{label:<22} {metrics.exact_match:>7.3f} "
                    f"{metrics.set_match:>6.3f} "
                    f"{metrics.mean_matching_loss:>7.3f} "
                    f"{report.seconds:>8.2f}")
    report_table("E8-finetune-objectives", *rows)

    baseline = reports["token CE (baseline)"].final_metrics
    matching = reports["matching + rollouts"].final_metrics
    # the matching objective reaches the baseline's accuracy while
    # natively handling equivalent chains (see EXPERIMENTS.md notes)
    assert matching.exact_match >= baseline.exact_match - 0.1
    assert baseline.exact_match > 0.75

    model = build_model("chatglm-sim", registry.names(), seed=0)
    tuner = Finetuner(model, FinetuneConfig(epochs=1))
    small = train[:40]
    benchmark(lambda: tuner.train(small, objective="token"))


def test_training_curves(corpus, report_table, benchmark):
    """Per-epoch eval: both objectives improve monotonically-ish."""
    registry, train, test = corpus
    rows = [f"{'epoch':>6} {'token exact':>12} {'matching exact':>15}"]
    model_token = build_model("chatglm-sim", registry.names(), seed=0)
    model_match = build_model("chatglm-sim", registry.names(), seed=0)
    report_token = Finetuner(model_token, FinetuneConfig(
        epochs=EPOCHS)).train(train, test, objective="token")
    report_match = Finetuner(model_match, FinetuneConfig(
        epochs=EPOCHS, rollouts=2)).train(train, test,
                                          objective="matching")
    for epoch in range(EPOCHS):
        rows.append(
            f"{epoch + 1:>6} "
            f"{report_token.eval_history[epoch].exact_match:>12.3f} "
            f"{report_match.eval_history[epoch].exact_match:>15.3f}")
    report_table("E8-finetune-curves", *rows)
    assert report_token.eval_history[-1].exact_match >= \
        report_token.eval_history[0].exact_match
    assert report_match.eval_history[-1].exact_match >= \
        report_match.eval_history[0].exact_match

    from repro.finetune import evaluate_model
    benchmark(lambda: evaluate_model(model_token, test[:20]))


def test_alpha_ablation(corpus, report_table, benchmark):
    """Def. 1's alpha balances GED vs the one-to-one regularizer."""
    from repro.finetune import node_matching_loss
    generated = ["a", "b", "c", "d"]
    truth = ["a", "b"]
    rows = [f"{'alpha':>6} {'loss':>7}"]
    previous = -1.0
    for alpha in (0.0, 0.5, 1.0, 2.0, 4.0):
        loss = node_matching_loss(generated, truth, alpha=alpha)
        rows.append(f"{alpha:>6.1f} {loss:>7.2f}")
        assert loss >= previous  # monotone in alpha
        previous = loss
    report_table("E8-finetune-alpha", *rows)

    benchmark(lambda: node_matching_loss(generated, truth, alpha=1.0))
