"""E11 — Figs. 2-3: session semantics and configuration coverage.

Every parameter group the configuration screen exposes (Fig. 3) is
toggled and shown to change observable behaviour; the session round-trip
(Fig. 2's three panels) is exercised and timed.
"""

from __future__ import annotations

import pytest

from repro import ChatGraph, ChatGraphConfig, ChatSession
from repro.config import (
    FinetuneConfig,
    LLMConfig,
    RetrievalConfig,
    SequencerConfig,
)
from repro.graphs import social_network
from repro.sequencer import GraphSequentializer


def test_config_parameter_effects(chatgraph, report_table, benchmark):
    graph = social_network(40, 4, seed=6)
    rows = []

    # retrieval.top_k_apis
    k2 = chatgraph.retriever.retrieve_names("find communities", k=2)
    k8 = chatgraph.retriever.retrieve_names("find communities", k=8)
    rows.append(f"retrieval.top_k_apis: k=2 -> {len(k2)} hits, "
                f"k=8 -> {len(k8)} hits")
    assert len(k2) == 2 and len(k8) == 8

    # retrieval.tau (index shape)
    from repro.ann import TauMGIndex
    import numpy as np
    data = np.random.default_rng(0).normal(size=(400, 16))
    edges = {tau: TauMGIndex(tau=tau).build(data).n_edges()
             for tau in (0.0, 0.1)}
    rows.append(f"retrieval.tau: edges tau=0.0 -> {edges[0.0]}, "
                f"tau=0.1 -> {edges[0.1]}")
    assert edges[0.1] >= edges[0.0]

    # sequencer.path_length and multi_level
    short = GraphSequentializer(
        SequencerConfig(path_length=1)).sequentialize(graph)
    deep = GraphSequentializer(
        SequencerConfig(path_length=3)).sequentialize(graph)
    rows.append(f"sequencer.path_length: l=1 -> "
                f"{short.cover_stats.max_path_length}-hop paths, l=3 -> "
                f"{deep.cover_stats.max_path_length}-hop paths")
    assert deep.cover_stats.max_path_length > \
        short.cover_stats.max_path_length

    # finetune.alpha
    from repro.finetune import node_matching_loss
    low = node_matching_loss(["a", "b", "c"], ["a"], alpha=0.0)
    high = node_matching_loss(["a", "b", "c"], ["a"], alpha=2.0)
    rows.append(f"finetune.alpha: loss alpha=0 -> {low}, alpha=2 -> {high}")
    assert high > low

    # llm.max_chain_length
    config = ChatGraphConfig(llm=LLMConfig(max_chain_length=1))
    capped = ChatGraph.pretrained(config=config, corpus_size=120, seed=4)
    result = capped.propose("write a brief report for G", graph)
    rows.append(f"llm.max_chain_length=1: proposed {len(result.chain)} "
                f"step(s) (fallback={result.used_fallback})")

    # llm.model preset
    for preset in ("chatglm-sim", "moss-sim", "vicuna-sim"):
        cg = ChatGraph(config=ChatGraphConfig(llm=LLMConfig(model=preset)))
        assert cg.model is not None
    rows.append("llm.model: all three presets instantiate")

    report_table("E11-config-coverage", *rows)
    benchmark(lambda: ChatGraphConfig.from_dict(
        chatgraph.config.to_dict()))


def test_session_round_trip(chatgraph, report_table, benchmark):
    """Fig. 2's panels: dialog, suggestions, upload + ask."""
    graph = social_network(30, 3, seed=12)

    def round_trip():
        session = ChatSession(chatgraph)
        session.upload_graph(graph)
        suggestions = session.suggestions()
        response = session.send(suggestions[0])
        return session, response

    session, response = round_trip()
    report_table(
        "E11-session-roundtrip",
        f"suggested questions: {len(session.suggestions())}",
        f"dialog turns after one exchange: {len(session.history)}",
        f"answer length: {len(response.answer)} chars",
        f"chain executed: {response.chain.render()}",
    )
    assert response.record.ok
    assert len(session.history) >= 3

    benchmark(round_trip)
