"""E6 — tau-MG vs PG baselines (paper Sec. II-D claims).

Reproduces the shape of the tau-MG claims: at matched recall the tau-MG
needs the fewest distance computations among proximity graphs, and its
greedy-routing hop count grows sublinearly in n (the paper bounds it by
O(n^(1/m) (ln n)^2)).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import (
    BruteForceIndex,
    HNSWIndex,
    MRNGIndex,
    TauMGIndex,
    VPTreeIndex,
    evaluate_index,
)
from repro.ann.evaluation import ground_truth

DIM = 32
N_QUERIES = 30


def make_data(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, DIM)), rng.normal(size=(N_QUERIES, DIM))


@pytest.fixture(scope="module")
def corpus():
    data, queries = make_data(3000)
    truth = ground_truth(data, queries, 10)
    indexes = {
        "brute-force": BruteForceIndex().build(data),
        "VP-tree": VPTreeIndex().build(data),
        "MRNG": MRNGIndex(ef_search=32).build(data),
        "tau-MG": TauMGIndex(tau=0.05, ef_search=32).build(data),
        "HNSW": HNSWIndex(ef_search=32).build(data),
    }
    return data, queries, truth, indexes


def test_recall_vs_work(corpus, report_table, benchmark):
    """Recall@10 and distance computations per query, per index."""
    data, queries, truth, indexes = corpus
    rows = [f"{'index':<14} {'recall@10':>9} {'dists/query':>12} "
            f"{'ms/query':>9}"]
    results = {}
    for name, index in indexes.items():
        result = evaluate_index(index, data, queries, k=10, name=name,
                                truth=truth)
        results[name] = result
        rows.append(f"{name:<14} {result.recall:9.3f} "
                    f"{result.mean_distance_computations:12.1f} "
                    f"{result.mean_query_seconds * 1e3:9.3f}")
    report_table("E6-ann-recall-vs-work", *rows)

    # shape checks: every PG beats brute force on work at recall > 0.85
    brute = results["brute-force"]
    for name in ("MRNG", "tau-MG", "HNSW"):
        assert results[name].recall > 0.85
        assert results[name].mean_distance_computations < \
            brute.mean_distance_computations / 2
    # epsilon guarantee of Def. 2 holds on nearly all queries
    assert results["tau-MG"].epsilon_satisfaction > 0.9
    # the metric-tree baseline is exact but barely prunes in d=32
    # (curse of dimensionality) — the reason PG indexes win at scale
    assert results["VP-tree"].recall == 1.0
    assert results["VP-tree"].mean_distance_computations > \
        results["tau-MG"].mean_distance_computations * 2

    tau_mg = indexes["tau-MG"]
    benchmark(lambda: tau_mg.search(queries[0], 10))


def test_hop_scaling(report_table, benchmark):
    """Greedy-routing hops vs n: sublinear growth (tau-MG claim)."""
    sizes = (500, 1000, 2000, 4000)
    rows = [f"{'n':>6} {'mean hops tau-MG':>17} {'mean hops MRNG':>15} "
            f"{'bound n^(1/2)ln(n)^2':>21}"]
    hop_means = []
    for n in sizes:
        data, queries = make_data(n, seed=n)
        tau_mg = TauMGIndex(tau=0.05).build(data)
        mrng = MRNGIndex().build(data)
        hops_tau = float(np.mean([tau_mg.routing_hops(q) for q in queries]))
        hops_mrng = float(np.mean([mrng.routing_hops(q) for q in queries]))
        bound = (n ** 0.5) * (np.log(n) ** 2)
        rows.append(f"{n:>6} {hops_tau:>17.2f} {hops_mrng:>15.2f} "
                    f"{bound:>21.0f}")
        hop_means.append(hops_tau)
    report_table("E6-ann-hop-scaling", *rows)

    # sublinear: hops grow much slower than n (8x data, < 4x hops)
    assert hop_means[-1] < hop_means[0] * 4 + 4

    data, queries = make_data(1000, seed=1)
    index = TauMGIndex(tau=0.05).build(data)
    benchmark(lambda: index.routing_hops(queries[0]))


def test_tau_ablation(corpus, report_table, benchmark):
    """tau sweep: tau=0 degenerates to MRNG; growing tau adds edges."""
    data, queries, truth, __ = corpus
    rows = [f"{'tau':>6} {'edges':>8} {'recall@10':>9} {'dists/query':>12}"]
    previous_edges = None
    for tau in (0.0, 0.02, 0.05, 0.1):
        index = TauMGIndex(tau=tau, ef_search=32).build(data)
        result = evaluate_index(index, data, queries, k=10, truth=truth)
        rows.append(f"{tau:>6.2f} {index.n_edges():>8} "
                    f"{result.recall:>9.3f} "
                    f"{result.mean_distance_computations:>12.1f}")
        if previous_edges is not None:
            assert index.n_edges() >= previous_edges  # Def. 3 monotone
        previous_edges = index.n_edges()
    report_table("E6-ann-tau-ablation", *rows)
    benchmark(lambda: TauMGIndex(tau=0.05).build(data[:400]))
