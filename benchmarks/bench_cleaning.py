"""E4 — Fig. 6 scenario 3: chat-based graph cleaning.

The paper's flow: knowledge-inference APIs detect incorrect and missing
edges, the user confirms, graph-edit APIs apply, and the graph is
exported.  We sweep injected noise rates and measure detection
precision/recall and end-to-end repair quality.
"""

from __future__ import annotations

import pytest

from repro.core import run_graph_cleaning
from repro.graphs import knowledge_graph
from repro.kb import KnowledgeInferencer, TripleStore, corrupt_store

NOISE_RATES = (0.02, 0.05, 0.10)


def test_detection_quality_vs_noise(report_table, benchmark):
    rows = [f"{'noise':>6} {'flagged':>8} {'precision':>10} "
            f"{'recall':>7} {'f1':>6}"]
    kg = knowledge_graph(n_entities=60, n_facts=300, seed=21)
    store = TripleStore.from_graph(kg)
    for rate in NOISE_RATES:
        noisy, injected, __ = corrupt_store(store, rate, 0.0, seed=3)
        inferencer = KnowledgeInferencer.fit(noisy)
        flagged = {f.triple for f in inferencer.detect_incorrect_edges()}
        tp = len(flagged & injected)
        precision = tp / len(flagged) if flagged else 1.0
        recall = tp / len(injected) if injected else 1.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        rows.append(f"{rate:>6.2f} {len(flagged):>8} {precision:>10.3f} "
                    f"{recall:>7.3f} {f1:>6.3f}")
        assert recall > 0.9
        assert precision > 0.8
    report_table("E4-cleaning-detection", *rows)

    noisy, __, __ = corrupt_store(store, 0.05, 0.0, seed=3)
    benchmark(lambda: KnowledgeInferencer.fit(noisy)
              .detect_incorrect_edges())


def test_missing_edge_recovery(report_table, benchmark):
    """Removed facts recoverable through mined path rules.

    A dense KG (redundant relations) gives the miner high-confidence
    2-hop rules, so removed facts come back as rule-implied predictions.
    """
    kg = knowledge_graph(n_entities=40, n_facts=400, seed=22)
    store = TripleStore.from_graph(kg)
    noisy, __, removed = corrupt_store(store, 0.0, 0.08, seed=4)
    inferencer = KnowledgeInferencer.fit(noisy)
    predicted = {f.triple for f in inferencer.predict_missing_edges(
        min_confidence=0.5, limit=None)}
    recovered = predicted & removed
    precision = len(recovered) / len(predicted) if predicted else 0.0
    rows = [
        f"facts removed: {len(removed)}",
        f"facts predicted missing: {len(predicted)}",
        f"removed facts recovered: {len(recovered)}",
        f"prediction precision: {precision:.3f}",
        f"recovery rate: "
        f"{len(recovered) / len(removed) if removed else 1.0:.3f}",
    ]
    report_table("E4-cleaning-recovery", *rows)
    assert recovered
    assert precision > 0.5

    benchmark(lambda: inferencer.predict_missing_edges(min_confidence=0.5))


def test_scenario_end_to_end(chatgraph, report_table, benchmark):
    """The full Fig. 6 flow: clean G repairs the injected corruption."""
    kg = knowledge_graph(n_entities=50, n_facts=250, seed=23)
    store = TripleStore.from_graph(kg)
    rows = [f"{'noise':>6} {'injected':>9} {'removed':>8} "
            f"{'added':>6} {'exported':>9}"]
    for rate in NOISE_RATES:
        noisy, injected, __ = corrupt_store(store, rate, 0.0, seed=5)
        result = run_graph_cleaning(chatgraph, noisy.to_graph())
        details = result.details
        rows.append(f"{rate:>6.2f} {len(injected):>9} "
                    f"{details['n_removed']:>8} {details['n_added']:>6} "
                    f"{'y' if details['exported'] else 'N':>9}")
        assert details["n_removed"] >= len(injected)
        assert details["exported"]
    report_table("E4-cleaning-scenario", *rows)

    noisy, __, __ = corrupt_store(store, 0.05, 0.0, seed=5)
    graph = noisy.to_graph()
    benchmark(lambda: run_graph_cleaning(chatgraph, graph))
