"""E3 — Fig. 5 scenario 2: chat-based graph comparison.

The paper shows similarity search returning the top-2 similar molecules
from a database.  We sweep database size, compare the WL pre-filter
against exact-GED ranking (top-k agreement), and time a query.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.algorithms import graph_edit_distance
from repro.chem import MoleculeDatabase, random_molecule
from repro.core import run_graph_comparison

DB_SIZES = (100, 500, 2000)


def make_db(size: int, seed: int = 0) -> MoleculeDatabase:
    db = MoleculeDatabase.builtin()
    rng = random.Random(seed)
    for i in range(size - len(db)):
        db.add_molecule(random_molecule(
            n_atoms=rng.randint(6, 24), n_rings=rng.randint(0, 2),
            seed=rng.random(), name=f"gen_{i}"))
    return db


def best_exact_cost(db: MoleculeDatabase, query, k: int) -> float:
    """Mean GED cost of the true k closest database molecules."""
    query_graph = query.to_graph()
    costs = sorted(
        graph_edit_distance(query_graph, db.get(name).to_graph()).cost
        for name in db.names())
    return sum(costs[:k]) / k


def hit_cost(db: MoleculeDatabase, query, names: list[str]) -> float:
    """Mean GED cost of the returned hits."""
    query_graph = query.to_graph()
    costs = [graph_edit_distance(query_graph,
                                 db.get(name).to_graph()).cost
             for name in names]
    return sum(costs) / len(costs)


def test_topk_quality_vs_db_size(report_table, benchmark):
    """Quality = mean GED of returned top-2 relative to the exact top-2.

    GED values tie heavily across a large random library, so identity
    agreement is uninformative; the cost ratio (1.0 = as close as the
    optimum) is the meaningful quality measure.
    """
    rows = [f"{'db size':>8} {'cost-ratio(wl)':>15} {'cost-ratio(ged)':>16} "
            f"{'ms/query(wl)':>13} {'ms/query(ged)':>14}"]
    rng = random.Random(7)
    queries = [random_molecule(rng.randint(6, 18), rng.randint(0, 2),
                               seed=100 + i, name=f"q{i}")
               for i in range(10)]
    small_db = None
    ratios_by_size = {}
    for size in DB_SIZES:
        db = make_db(size)
        if small_db is None:
            small_db = db
        ratio_wl = ratio_ged = 0.0
        t_wl = t_ged = 0.0
        for query in queries:
            optimum = max(best_exact_cost(db, query, 2), 1.0)
            start = time.perf_counter()
            wl_hits = [h.name for h in db.similarity_search(
                query, k=2, method="wl")]
            t_wl += time.perf_counter() - start
            start = time.perf_counter()
            ged_hits = [h.name for h in db.similarity_search(
                query, k=2, method="ged", shortlist=25)]
            t_ged += time.perf_counter() - start
            ratio_wl += hit_cost(db, query, wl_hits) / optimum
            ratio_ged += hit_cost(db, query, ged_hits) / optimum
        n = len(queries)
        ratios_by_size[size] = (ratio_wl / n, ratio_ged / n)
        rows.append(f"{size:>8} {ratio_wl / n:>15.3f} "
                    f"{ratio_ged / n:>16.3f} "
                    f"{t_wl / n * 1e3:>13.2f} {t_ged / n * 1e3:>14.2f}")
    report_table("E3-comparison-quality", *rows)
    for size, (wl_ratio, ged_ratio) in ratios_by_size.items():
        # GED reranking substantially improves over the WL prefilter,
        # and the returned hits stay within a few edits of optimal
        assert ged_ratio <= wl_ratio * 0.7
        assert ged_ratio < 4.0

    query = queries[0]
    benchmark(lambda: small_db.similarity_search(query, k=2, method="wl"))


def test_scenario_end_to_end(chatgraph, report_table, benchmark):
    """The full Fig. 5 flow: known analogs are returned as top hits."""
    from repro.chem import parse_smiles
    cases = {
        "cresol (phenol analog)": ("Cc1ccccc1O", {"phenol",
                                                  "cyclohexanol",
                                                  "toluene"}),
        "theobromine-like": ("Cn1cnc2c1c(=O)[nH]c(=O)n2C",
                             {"theobromine", "caffeine"}),
        "propanol": ("CCCO", {"butane", "ethanol", "isobutane",
                              "acetone", "propane"}),
    }
    rows = [f"{'query':<26} {'top-2 hits':<40} {'ok':>3}"]
    all_ok = True
    for label, (smiles, expected) in cases.items():
        mol = parse_smiles(smiles, name=label)
        result = run_graph_comparison(chatgraph, mol)
        hits = [h["name"] for h in result.details["top_hits"]]
        ok = bool(set(hits) & expected)
        all_ok = all_ok and ok
        rows.append(f"{label:<26} {', '.join(hits):<40} "
                    f"{'y' if ok else 'N':>3}")
    report_table("E3-comparison-scenario", *rows)
    assert all_ok

    mol = parse_smiles("Cc1ccccc1O", name="cresol")
    benchmark(lambda: run_graph_comparison(chatgraph, mol))
