"""E2-ablation — community detectors behind the understanding scenario.

The report chain's ``detect_communities`` API exposes three methods
(label propagation, greedy modularity, spectral).  This ablation sweeps
planted-partition difficulty and reports recovered modularity and
runtime for each, plus agreement with the planted ground truth.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms import (
    greedy_modularity_communities,
    label_propagation,
    modularity,
    spectral_communities,
)
from repro.graphs import social_network

MIXINGS = (0.01, 0.03, 0.06)  # p_out; higher = harder
N = 60
K = 3


def planted_agreement(graph, communities) -> float:
    """Pairwise same-community agreement with the planted partition."""
    planted = {node: graph.get_node_attr(node, "community")
               for node in graph.nodes()}
    detected = {}
    for cid, community in enumerate(communities):
        for node in community:
            detected[node] = cid
    nodes = list(graph.nodes())
    agree = total = 0
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            total += 1
            if (planted[u] == planted[v]) == (detected[u] == detected[v]):
                agree += 1
    return agree / total if total else 1.0


def test_method_sweep(report_table, benchmark):
    methods = {
        "label_prop": lambda g: label_propagation(g, seed=0),
        "greedy_mod": greedy_modularity_communities,
        "spectral": lambda g: spectral_communities(g, k=K),
    }
    rows = [f"{'p_out':>6} {'method':<12} {'Q':>7} {'agreement':>10} "
            f"{'ms':>8}"]
    quality: dict[str, list[float]] = {name: [] for name in methods}
    for p_out in MIXINGS:
        graph = social_network(N, K, p_in=0.35, p_out=p_out, seed=17)
        for name, method in methods.items():
            start = time.perf_counter()
            communities = method(graph)
            elapsed = time.perf_counter() - start
            q = modularity(graph, communities)
            agreement = planted_agreement(graph, communities)
            quality[name].append(agreement)
            rows.append(f"{p_out:>6.2f} {name:<12} {q:>7.3f} "
                        f"{agreement:>10.3f} {elapsed * 1e3:>8.2f}")
    report_table("E2-community-ablation", *rows)
    # at the easiest mixing every method recovers the planted structure
    for name, series in quality.items():
        assert series[0] > 0.85, (name, series)

    graph = social_network(N, K, p_in=0.35, p_out=0.01, seed=17)
    benchmark(lambda: label_propagation(graph, seed=0))
