"""E9 — Sec. II-C: search-based prediction (random-rollout ablation).

The paper scores each candidate next API by r random rollouts against
the ground-truth chains.  We fix a deliberately under-trained model and
sweep r: chain accuracy should rise with more rollouts (at growing
decode cost), and r=0 (greedy-anchored) is the weakest searcher.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.apis import default_registry
from repro.config import FinetuneConfig
from repro.finetune import (
    CorpusSpec,
    Finetuner,
    build_corpus,
    evaluate_model,
    rollout_decode,
)
from repro.llm import build_model
from repro.retrieval import APIRetriever

ROLLOUTS = (0, 1, 2, 4, 8)


@pytest.fixture(scope="module")
def undertrained():
    """A model after a fraction of an epoch: rollouts must help it."""
    registry = default_registry()
    retriever = APIRetriever(registry)
    train, test = build_corpus(registry, CorpusSpec(n_examples=240, seed=3),
                               retriever=retriever)
    model = build_model("chatglm-sim", registry.names(), seed=0)
    tuner = Finetuner(model, FinetuneConfig(epochs=1))
    tuner.train(train[:30], objective="token")  # deliberately tiny slice
    return model, test[:40]


def test_rollout_sweep(undertrained, report_table, benchmark):
    """The paper's pure scheme: candidates scored by r random rollouts
    only (no greedy anchor) — accuracy rises with r."""
    model, test = undertrained
    rows = [f"{'rollouts':>9} {'exact':>7} {'loss':>7} {'ms/decode':>10}"]
    exact_by_r = {}
    for r in ROLLOUTS:
        rng = random.Random(11)
        start = time.perf_counter()
        metrics = evaluate_model(
            model, test,
            decoder=lambda m, ex: rollout_decode(
                m, ex.state(), ex.target_chains, rollouts=r, rng=rng,
                greedy_anchor=False))
        elapsed = (time.perf_counter() - start) / len(test)
        exact_by_r[r] = metrics.exact_match
        rows.append(f"{r:>9} {metrics.exact_match:>7.3f} "
                    f"{metrics.mean_matching_loss:>7.3f} "
                    f"{elapsed * 1e3:>10.2f}")
    report_table("E9-rollout-sweep", *rows)

    greedy = evaluate_model(model, test)
    assert max(exact_by_r.values()) > greedy.exact_match
    assert exact_by_r[max(ROLLOUTS)] >= exact_by_r[0] - 0.05

    example = test[0]
    benchmark(lambda: rollout_decode(model, example.state(),
                                     example.target_chains, rollouts=4,
                                     rng=random.Random(0)))


def test_rollouts_vs_greedy_decode(undertrained, report_table, benchmark):
    """Search-based prediction recovers chains greedy decoding misses."""
    model, test = undertrained
    greedy = evaluate_model(model, test)
    rng = random.Random(5)
    guided = evaluate_model(
        model, test,
        decoder=lambda m, ex: rollout_decode(
            m, ex.state(), ex.target_chains, rollouts=4, rng=rng))
    report_table(
        "E9-rollout-vs-greedy",
        f"greedy decode exact match:        {greedy.exact_match:.3f}",
        f"search-based (r=4) exact match:   {guided.exact_match:.3f}",
        f"greedy mean matching loss:        "
        f"{greedy.mean_matching_loss:.3f}",
        f"search-based mean matching loss:  "
        f"{guided.mean_matching_loss:.3f}",
    )
    assert guided.exact_match > greedy.exact_match
    assert guided.mean_matching_loss < greedy.mean_matching_loss

    benchmark(lambda: evaluate_model(model, test[:10]))
