"""E10 — Sec. II-A: API retrieval is performance-critical.

Three measurements: (a) gold-API recall of top-k retrieval as k grows,
(b) ANN (tau-MG) agreement with exact retrieval, and (c) the ablation
the paper's claim rests on — chain accuracy with retrieval conditioning
vs with the retrieved-API features stripped.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apis import default_registry
from repro.config import FinetuneConfig
from repro.finetune import CorpusSpec, Finetuner, build_corpus, evaluate_model
from repro.finetune.dataset import TEMPLATES
from repro.llm import build_model
from repro.llm.intent import CATEGORY_ROUTING
from repro.retrieval import APIRetriever

K_SWEEP = (1, 2, 4, 8, 12, 16)


@pytest.fixture(scope="module")
def setup():
    registry = default_registry()
    retriever = APIRetriever(registry)
    return registry, retriever


def test_gold_recall_vs_k(setup, report_table, benchmark):
    registry, retriever = setup
    rows = [f"{'k':>4} {'gold-API recall':>16} {'full-chain recall':>18}"]
    recalls = []
    for k in K_SWEEP:
        got_apis = total_apis = 0
        full = total_questions = 0
        for template in TEMPLATES:
            gold = {n for c in template.chains for n in c}
            categories = CATEGORY_ROUTING.get(template.graph_kind,
                                              CATEGORY_ROUTING["generic"])
            for phrasing in template.phrasings:
                names = set(retriever.retrieve_names(
                    phrasing, k=k, categories=categories))
                got_apis += len(names & gold)
                total_apis += len(gold)
                full += int(gold <= names)
                total_questions += 1
        recalls.append(got_apis / total_apis)
        rows.append(f"{k:>4} {got_apis / total_apis:>16.3f} "
                    f"{full / total_questions:>18.3f}")
    report_table("E10-retrieval-recall-vs-k", *rows)
    assert recalls == sorted(recalls)  # recall is monotone in k
    assert recalls[-1] > 0.75

    benchmark(lambda: retriever.retrieve_names("find communities", k=8))


def test_ann_vs_exact_agreement(setup, report_table, benchmark):
    registry, retriever = setup
    questions = [phrasing for template in TEMPLATES
                 for phrasing in template.phrasings]
    agree = 0.0
    for question in questions:
        ann = set(retriever.retrieve_names(question, k=5))
        exact = {h.name for h in retriever.exact_retrieve(question, k=5)}
        agree += len(ann & exact) / 5
    report_table(
        "E10-retrieval-ann-agreement",
        f"questions: {len(questions)}",
        f"mean top-5 agreement (tau-MG vs exact): "
        f"{agree / len(questions):.3f}",
    )
    assert agree / len(questions) > 0.85

    benchmark(lambda: retriever.exact_retrieve("find communities", k=5))


def test_retrieval_conditioning_ablation(setup, report_table, benchmark):
    """Stripping retrieved-API features hurts chain accuracy."""
    registry, retriever = setup
    train, test = build_corpus(registry, CorpusSpec(n_examples=300, seed=2),
                               retriever=retriever)
    model = build_model("chatglm-sim", registry.names(), seed=0)
    Finetuner(model, FinetuneConfig(epochs=4)).train(train,
                                                     objective="token")
    with_retrieval = evaluate_model(model, test)
    stripped = [dataclasses.replace(example, retrieved=())
                for example in test]
    without_retrieval = evaluate_model(model, stripped)
    report_table(
        "E10-retrieval-ablation",
        f"exact match with retrieved-API conditioning:    "
        f"{with_retrieval.exact_match:.3f}",
        f"exact match without retrieved-API conditioning: "
        f"{without_retrieval.exact_match:.3f}",
        f"delta: "
        f"{with_retrieval.exact_match - without_retrieval.exact_match:+.3f}",
    )
    assert with_retrieval.exact_match > without_retrieval.exact_match

    benchmark(lambda: evaluate_model(model, test[:20]))
