"""E7 — Sec. II-B: graph sequentializer tractability and coverage.

Claims reproduced: the length-constrained path cover stays within the
O(|G| * 2^l) budget while covering the whole graph, and the motif
super-graph compresses multi-level structure.
"""

from __future__ import annotations

import pytest

from repro.config import SequencerConfig
from repro.graphs import ba_graph, er_graph, social_network
from repro.sequencer import (
    GraphSequentializer,
    build_supergraph,
    length_constrained_path_cover,
)

SIZES = (50, 200, 1000, 2000)


def test_path_counts_vs_bound(report_table, benchmark):
    """Cover size is linear in |G| at fixed l (the O(|G| * 2^l) claim).

    The paper's 2^l factor presumes bounded degree; we use constant-
    average-degree random graphs and report the per-node path factor,
    which must stay flat as n grows (linearity in |G|) and bounded by a
    small degree-dependent constant.
    """
    rows = [f"{'n':>6} {'l':>3} {'paths':>8} {'paths/n':>8} "
            f"{'node cov':>9} {'edge cov':>9}"]
    factors: dict[int, list[float]] = {1: [], 2: [], 3: []}
    for n in SIZES:
        graph = er_graph(n, 4.0 / n, seed=n)  # average degree ~4
        for l in (1, 2, 3):
            if n >= 1000 and l == 3:
                continue  # keep the sweep under a second per cell
            paths, stats = length_constrained_path_cover(graph, l)
            factor = stats.n_paths / n
            factors[l].append(factor)
            rows.append(f"{n:>6} {l:>3} {stats.n_paths:>8} "
                        f"{factor:>8.2f} {stats.node_coverage:>9.2f} "
                        f"{stats.edge_coverage:>9.2f}")
            assert stats.node_coverage == 1.0
            assert stats.edge_coverage == 1.0
    report_table("E7-sequencer-path-counts", *rows)
    # linear in |G|: the per-node factor stays flat (within 2x) per l
    for l, series in factors.items():
        assert max(series) <= 2 * min(series) + 1, (l, series)
    # and the factor is bounded by a small degree-dependent constant
    assert max(factors[2]) < 32  # well under d^l for d~4, l=2

    graph = er_graph(200, 0.02, seed=0)
    benchmark(lambda: length_constrained_path_cover(graph, 2))


def test_supergraph_compression(report_table, benchmark):
    """Motif coarsening compresses clustered (multi-level) graphs more."""
    rows = [f"{'graph':<24} {'nodes':>6} {'super':>6} {'ratio':>6}"]
    clustered = social_network(120, 6, p_in=0.5, p_out=0.01, seed=2)
    sparse = er_graph(120, 0.02, seed=2)
    ratios = {}
    for label, graph in (("clustered social", clustered),
                         ("sparse random", sparse)):
        sg = build_supergraph(graph)
        ratios[label] = sg.compression_ratio
        rows.append(f"{label:<24} {graph.number_of_nodes():>6} "
                    f"{sg.graph.number_of_nodes():>6} "
                    f"{sg.compression_ratio:>6.2f}")
    report_table("E7-sequencer-compression", *rows)
    assert ratios["clustered social"] > ratios["sparse random"]

    benchmark(lambda: build_supergraph(clustered))


def test_multi_level_ablation(report_table, benchmark):
    """Multi-level mode adds super-graph tokens the model conditions on."""
    graph = social_network(80, 4, p_in=0.4, p_out=0.02, seed=3)
    on = GraphSequentializer(
        SequencerConfig(multi_level=True)).sequentialize(graph)
    off = GraphSequentializer(
        SequencerConfig(multi_level=False)).sequentialize(graph)
    motif_tokens = sum(count for token, count in on.feature_counts.items()
                       if token.startswith("<m:"))
    report_table(
        "E7-sequencer-multilevel",
        f"base sequences: {len(on.sequences)}",
        f"super sequences (multi-level on): {len(on.super_sequences)}",
        f"super sequences (multi-level off): {len(off.super_sequences)}",
        f"motif tokens contributed: {motif_tokens}",
    )
    assert on.super_sequences and not off.super_sequences
    assert motif_tokens > 0

    sequencer = GraphSequentializer(SequencerConfig(multi_level=True))
    benchmark(lambda: sequencer.sequentialize(graph))
