"""E1 — Fig. 1 architecture: end-to-end flow and per-module latency.

Reproduces the system-level claim of Fig. 1: a prompt flows through
intent, type prediction, retrieval, sequentialization, generation and
execution, and each module contributes bounded latency.
"""

from __future__ import annotations

import pytest

from repro.graphs import social_network
from repro.llm.prompts import Prompt

PROMPTS = (
    "write a brief report for G",
    "detect the communities of this network",
    "how many nodes does the graph have",
)
SIZES = (30, 100, 300)


def test_per_module_latency(chatgraph, report_table, benchmark):
    rows = [f"{'prompt':<42} {'n':>4} {'intent':>8} {'type':>8} "
            f"{'retrieve':>9} {'sequence':>9} {'generate':>9} "
            f"{'execute':>9}  (ms)"]
    for text in PROMPTS:
        for n in SIZES:
            graph = social_network(n, max(2, n // 15), seed=n)
            result = chatgraph.pipeline.process(Prompt(text, graph))
            record, __ = chatgraph.execute(result)
            assert record.ok
            t = result.timings
            rows.append(
                f"{text:<42} {n:>4} {t['intent'] * 1e3:>8.2f} "
                f"{t['graph_type'] * 1e3:>8.2f} "
                f"{t['retrieval'] * 1e3:>9.2f} "
                f"{t['sequentialize'] * 1e3:>9.2f} "
                f"{t['generate'] * 1e3:>9.2f} "
                f"{record.total_seconds * 1e3:>9.2f}")
    report_table("E1-pipeline-latency", *rows)

    graph = social_network(100, 5, seed=1)
    benchmark(lambda: chatgraph.ask(PROMPTS[0], graph=graph))


def test_end_to_end_success_rate(chatgraph, report_table, benchmark):
    """Every prompt/size combination completes with an executable chain."""
    ok = 0
    total = 0
    fallbacks = 0
    for text in PROMPTS:
        for n in SIZES:
            graph = social_network(n, max(2, n // 15), seed=n + 7)
            response = chatgraph.ask(text, graph=graph)
            total += 1
            ok += int(response.record.ok)
            fallbacks += int(response.pipeline.used_fallback)
    report_table(
        "E1-pipeline-robustness",
        f"prompts x sizes: {total}",
        f"chains executed ok: {ok}/{total}",
        f"fallback chains used: {fallbacks}/{total}",
    )
    assert ok == total

    graph = social_network(30, 2, seed=3)
    benchmark(lambda: chatgraph.propose(PROMPTS[2], graph))
