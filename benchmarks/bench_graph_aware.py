"""E12 — Sec. II-B: the graph-aware LLM (graph conditioning ablation).

The paper's second module makes the LLM "comprehend graphs" by feeding
it sequentialized paths (and super-graph paths).  The clean test:
*ambiguous* prompts whose text is identical across graph kinds ("write a
brief report for G") with kind-specific gold chains and kind-independent
candidate sets — only the sequentializer's tokens can tell the model
whether G is a social network, a molecule or a knowledge graph.

Ablations: graph tokens on/off at inference, and single- vs multi-level
sequences at training time.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apis import default_registry
from repro.config import FinetuneConfig
from repro.finetune import CorpusSpec, Finetuner, build_corpus, evaluate_model
from repro.llm import build_model

CORPUS = 500
EPOCHS = 5


def ambiguous_split(registry, spec):
    """Corpus + its ambiguous-only test slice."""
    train, test = build_corpus(registry, spec)
    ambiguous = [example for example in test
                 if len(example.allowed) == len(registry.names())]
    return train, test, ambiguous


@pytest.fixture(scope="module")
def trained():
    registry = default_registry()
    spec = CorpusSpec(n_examples=CORPUS, seed=0, ambiguous_fraction=0.5)
    train, test, ambiguous = ambiguous_split(registry, spec)
    model = build_model("chatglm-sim", registry.names(), seed=0)
    Finetuner(model, FinetuneConfig(epochs=EPOCHS)).train(
        train, objective="token")
    return registry, model, test, ambiguous


def test_graph_tokens_disambiguate(trained, report_table, benchmark):
    registry, model, test, ambiguous = trained
    with_tokens = evaluate_model(model, ambiguous)
    stripped = [dataclasses.replace(example, graph_tokens=())
                for example in ambiguous]
    without_tokens = evaluate_model(model, stripped)
    report_table(
        "E12-graph-aware-ablation",
        f"ambiguous prompts (same text, different graph kinds): "
        f"{len(ambiguous)}",
        f"exact match WITH sequentialized-graph tokens:    "
        f"{with_tokens.exact_match:.3f}",
        f"exact match WITHOUT graph tokens (text only):    "
        f"{without_tokens.exact_match:.3f}",
        f"delta: "
        f"{with_tokens.exact_match - without_tokens.exact_match:+.3f}",
    )
    assert with_tokens.exact_match > 0.8
    assert with_tokens.exact_match > without_tokens.exact_match + 0.3

    benchmark(lambda: evaluate_model(model, ambiguous[:15]))


def test_unambiguous_prompts_unaffected(trained, report_table, benchmark):
    """Sanity: plain prompts stay accurate with and without tokens."""
    registry, model, test, ambiguous = trained
    plain = [example for example in test if example not in ambiguous]
    with_tokens = evaluate_model(model, plain)
    stripped = [dataclasses.replace(example, graph_tokens=())
                for example in plain]
    without_tokens = evaluate_model(model, stripped)
    report_table(
        "E12-graph-aware-plain",
        f"unambiguous prompts: {len(plain)}",
        f"exact match with tokens:    {with_tokens.exact_match:.3f}",
        f"exact match without tokens: {without_tokens.exact_match:.3f}",
    )
    # with half the corpus spent on ambiguous prompts, the ~29 plain
    # templates are data-starved; the sanity claim is *parity* — graph
    # tokens neither carry nor hurt text-determined chains
    assert abs(with_tokens.exact_match
               - without_tokens.exact_match) < 0.15
    assert with_tokens.exact_match > 0.5

    benchmark(lambda: evaluate_model(model, plain[:15]))


def test_multi_level_ablation(report_table, benchmark):
    """Training with super-graph tokens vs paths-only tokens."""
    registry = default_registry()
    results = {}
    for multi_level in (True, False):
        spec = CorpusSpec(n_examples=CORPUS, seed=0,
                          ambiguous_fraction=0.5,
                          multi_level=multi_level)
        train, __, ambiguous = ambiguous_split(registry, spec)
        model = build_model("chatglm-sim", registry.names(), seed=0)
        Finetuner(model, FinetuneConfig(epochs=EPOCHS)).train(
            train, objective="token")
        results[multi_level] = evaluate_model(model, ambiguous)
    report_table(
        "E12-graph-aware-multilevel",
        f"ambiguous exact match, multi-level sequences:  "
        f"{results[True].exact_match:.3f}",
        f"ambiguous exact match, paths-only sequences:   "
        f"{results[False].exact_match:.3f}",
    )
    # both configurations must beat the text-only floor decisively;
    # multi-level adds motif tokens that help on clustered graphs
    assert results[True].exact_match > 0.8
    assert results[False].exact_match > 0.6

    spec = CorpusSpec(n_examples=100, seed=1, ambiguous_fraction=0.5)
    benchmark(lambda: build_corpus(registry, spec))
