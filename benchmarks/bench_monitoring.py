"""E5 — Fig. 7 scenario 4: chain confirmation, editing and monitoring.

The paper's claim: users can confirm/edit the proposed chain before
execution and watch progress while it runs.  We measure event
completeness over chain lengths, edit round-trips, and the executor
overhead monitoring adds.
"""

from __future__ import annotations

import time

import pytest

from repro import ChatSession
from repro.apis import APIChain, ChainContext
from repro.core import ChainMonitor, run_chain_monitoring
from repro.graphs import social_network

CHAINS = {
    2: ["predict_graph_type", "graph_summary"],
    4: ["predict_graph_type", "graph_summary", "connectivity",
        "clustering"],
    6: ["predict_graph_type", "graph_summary", "connectivity",
        "clustering", "count_triangles", "rank_degree"],
    8: ["predict_graph_type", "graph_summary", "connectivity",
        "clustering", "count_triangles", "rank_degree",
        "kcore_decomposition", "degree_distribution"],
}


def test_event_completeness(chatgraph, report_table, benchmark):
    graph = social_network(40, 4, seed=8)
    rows = [f"{'chain len':>9} {'events':>7} {'started':>8} "
            f"{'finished':>9} {'progress':>9}"]
    for length, names in CHAINS.items():
        monitor = ChainMonitor()
        chatgraph.executor.add_listener(monitor)
        try:
            chatgraph.executor.execute(APIChain.from_names(names),
                                       ChainContext(graph=graph))
        finally:
            chatgraph.executor.remove_listener(monitor)
        kinds = [e.kind for e in monitor.events]
        rows.append(f"{length:>9} {len(kinds):>7} "
                    f"{kinds.count('step_started'):>8} "
                    f"{kinds.count('step_finished'):>9} "
                    f"{monitor.progress:>9.2f}")
        assert kinds.count("step_started") == length
        assert kinds.count("step_finished") == length
        assert monitor.progress == 1.0
    report_table("E5-monitoring-events", *rows)

    chain = APIChain.from_names(CHAINS[4])
    benchmark(lambda: chatgraph.executor.execute(
        chain, ChainContext(graph=graph)))


def test_monitoring_overhead(chatgraph, report_table, benchmark):
    """Events cost little relative to chain execution."""
    graph = social_network(60, 4, seed=9)
    chain = APIChain.from_names(CHAINS[6])

    def run(with_monitor: bool) -> float:
        monitor = ChainMonitor()
        if with_monitor:
            chatgraph.executor.add_listener(monitor)
        start = time.perf_counter()
        try:
            for __ in range(5):
                chatgraph.executor.execute(chain,
                                           ChainContext(graph=graph))
        finally:
            if with_monitor:
                chatgraph.executor.remove_listener(monitor)
        return (time.perf_counter() - start) / 5

    bare = run(False)
    monitored = run(True)
    overhead = (monitored - bare) / bare * 100
    report_table(
        "E5-monitoring-overhead",
        f"execution without monitor: {bare * 1e3:.2f} ms",
        f"execution with monitor:    {monitored * 1e3:.2f} ms",
        f"overhead: {overhead:+.1f}%",
    )
    assert monitored < bare * 2  # monitoring is cheap

    benchmark(lambda: run(True))


def test_edit_round_trip(chatgraph, report_table, benchmark):
    """Propose -> edit -> confirm keeps the chain executable (Fig. 7)."""
    graph = social_network(35, 3, seed=10)
    result = run_chain_monitoring(chatgraph, graph, edit_remove=1)
    proposed = result.details["proposed_chain"].split(" -> ")
    executed = result.details["executed_chain"].split(" -> ")
    report_table(
        "E5-monitoring-edit",
        f"proposed: {' -> '.join(proposed)}",
        f"executed after removing step 1: {' -> '.join(executed)}",
        f"events: {len(result.details['events'])}",
        f"final progress: {result.details['progress']:.2f}",
    )
    assert len(executed) == len(proposed) - 1
    assert result.details["progress"] == 1.0

    session = ChatSession(chatgraph)
    session.upload_graph(graph)

    def round_trip():
        session.propose("write a brief report for G")
        session.edit_chain(remove=1)
        return session.confirm()

    benchmark(round_trip)
