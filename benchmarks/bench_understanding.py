"""E2 — Fig. 4 scenario 1: chat-based graph understanding.

The paper's claim: ChatGraph predicts the graph type and routes to
type-specific APIs before generating a report.  We measure type-
prediction accuracy over a labeled graph population and check that the
executed chain invokes the type's APIs.
"""

from __future__ import annotations

import pytest

from repro.apis.registry import Category
from repro.chem import random_molecule
from repro.core import run_graph_understanding
from repro.graphs import knowledge_graph, social_network
from repro.llm.intent import predict_graph_type

N_PER_TYPE = 100


def population():
    graphs = []
    for seed in range(N_PER_TYPE):
        graphs.append(("social",
                       social_network(20 + seed % 30, 3, seed=seed)))
        graphs.append(("molecule",
                       random_molecule(8 + seed % 12, seed % 3,
                                       seed=seed).to_graph()))
        graphs.append(("knowledge",
                       knowledge_graph(15 + seed % 20, 40 + seed,
                                       seed=seed)))
    return graphs


def test_type_prediction_accuracy(report_table, benchmark):
    graphs = population()
    correct = {"social": 0, "molecule": 0, "knowledge": 0}
    for truth, graph in graphs:
        if predict_graph_type(graph) == truth:
            correct[truth] += 1
    rows = [f"{'graph type':<12} {'accuracy':>9}  (n={N_PER_TYPE} each)"]
    for kind, hits in correct.items():
        rows.append(f"{kind:<12} {hits / N_PER_TYPE:>9.3f}")
    total = sum(correct.values()) / (3 * N_PER_TYPE)
    rows.append(f"{'overall':<12} {total:>9.3f}")
    report_table("E2-understanding-type-accuracy", *rows)
    assert total > 0.95

    g = graphs[0][1]
    benchmark(lambda: predict_graph_type(g))


def test_type_routed_reports(chatgraph, report_table, benchmark):
    """Reports invoke type-specific APIs (Fig. 4's routing behaviour)."""
    cases = {
        "social": (social_network(40, 4, seed=1),
                   "write a brief report for G", Category.SOCIAL),
        "molecule": (random_molecule(14, 1, seed=5).to_graph(),
                     "write a report about this molecule",
                     Category.MOLECULE),
        "knowledge": (knowledge_graph(30, 100, seed=2),
                      "profile this knowledge graph", Category.KNOWLEDGE),
    }
    rows = [f"{'type':<10} {'chain':<76}"]
    for kind, (graph, text, category) in cases.items():
        result = run_graph_understanding(chatgraph, graph, text)
        assert result.response.record.ok
        assert result.details["graph_type"] == kind
        categories = {chatgraph.registry.get(name).category
                      for name in result.chain_names}
        assert category in categories, (kind, result.chain_names)
        assert "generate_report" in result.chain_names
        rows.append(f"{kind:<10} {' -> '.join(result.chain_names):<76}")
    report_table("E2-understanding-routing", *rows)

    graph = cases["social"][0]
    benchmark(lambda: run_graph_understanding(chatgraph, graph))
